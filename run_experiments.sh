#!/bin/bash
# Regenerate every paper table/figure; outputs under results/.
set -u
cd /root/repo
mkdir -p results
for b in devices table3 table4 table5 fig5 fig6; do
  echo "=== $b ==="
  cargo run -p beagle-bench --bin $b --release 2>/dev/null > results/$b.txt
done
echo "=== fig4 ==="
cargo run -p beagle-bench --bin fig4 --release 2>/dev/null > results/fig4.txt
echo "=== testsuite ==="
cargo run -p genomictest --bin testsuite --release 2>/dev/null > results/testsuite.txt
echo ALL_DONE
