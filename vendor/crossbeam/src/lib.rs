//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses exactly one crossbeam feature: the unbounded MPMC
//! channel (`crossbeam::channel::{unbounded, Sender, Receiver}`) that feeds
//! the persistent thread pool. This stub reproduces those semantics —
//! cloneable senders *and* receivers, FIFO delivery, and disconnection when
//! the last handle on the other side drops — over a `Mutex<VecDeque>` and a
//! `Condvar`. Throughput is lower than real crossbeam, but the pool hands
//! out coarse batch tasks, so channel overhead is not on the hot path.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error: message could not be delivered (all receivers dropped).
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without requiring T: Debug.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking pop, `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn multi_consumer_drains_all() {
            let (tx, rx) = unbounded::<usize>();
            let n = 100;
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0usize;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, n);
        }
    }
}
