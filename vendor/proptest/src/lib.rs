//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace test-suites use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! * strategies: numeric ranges, [`strategy::Just`], and
//!   [`collection::vec`] with fixed or ranged length,
//! * [`ProptestConfig::with_cases`].
//!
//! The runner draws each case from a deterministic xoshiro256++ stream
//! seeded from the test name and case index, so failures are reproducible
//! run-to-run without regression files. There is **no shrinking**: a failing
//! case reports the generated inputs verbatim and panics, which is enough
//! for a CI signal (upstream proptest would additionally minimize them).

/// Deterministic RNG used by the runner (xoshiro256++, SplitMix64-seeded).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (start as i128 + v) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(0, self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Box a strategy for use in a [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Vector length specification: fixed or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy yielding vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` — `len` may be a `usize` or a `usize` range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The per-property runner used by the [`proptest!`] expansion.
pub mod runner {
    use super::{ProptestConfig, TestRng};

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Run `body` for each case with a deterministic per-case RNG.
    pub fn run(config: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng, u32)) {
        let base = fnv1a(test_name);
        for case in 0..config.cases {
            let mut rng = TestRng::new(base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
            body(&mut rng, case);
        }
    }

    /// Drop guard that reports the case's inputs if the body panics.
    pub struct PanicReport {
        message: Option<String>,
    }

    impl PanicReport {
        /// Arm the guard with a description of the generated inputs.
        pub fn arm(test_name: &str, case: u32, inputs: String) -> Self {
            PanicReport {
                message: Some(format!(
                    "proptest {test_name}: case #{case} failed with inputs: {inputs}"
                )),
            }
        }

        /// The case passed; do not report.
        pub fn disarm(mut self) {
            self.message = None;
        }
    }

    impl Drop for PanicReport {
        fn drop(&mut self) {
            if let Some(msg) = self.message.take() {
                if std::thread::panicking() {
                    eprintln!("{msg}");
                }
            }
        }
    }
}

/// Everything a proptest file imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Property assertion; panics with a message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// The property-test declaration macro.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::runner::run(&__config, stringify!($name), |__rng, __case| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", $arg));
                    )+
                    s
                };
                let __report = $crate::runner::PanicReport::arm(stringify!($name), __case, __inputs);
                { $body }
                __report.disarm();
            });
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u32..4, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_picks_listed(x in prop_oneof![Just(4usize), Just(8)]) {
            prop_assert!(x == 4 || x == 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::runner::run(
                &ProptestConfig::with_cases(5),
                "deterministic_across_runs",
                |rng, _| out.push(rng.next_u64()),
            );
        }
        assert_eq!(first, second);
    }
}
