//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace patches `crates-io` to this vendored stub. It implements exactly
//! the slice of the rand 0.9 API the workspace uses: [`SeedableRng`],
//! [`RngCore`], [`Rng::random_range`] over integer and float ranges, and
//! [`rngs::SmallRng`] / [`rngs::StdRng`] (both xoshiro256++, seeded through
//! SplitMix64 like the upstream `seed_from_u64`).
//!
//! Determinism is the contract that matters here: all workspace tests derive
//! their data from fixed seeds, and every back-end sees the same stream for
//! the same seed. Statistical quality of xoshiro256++ is far beyond what the
//! test corpus needs.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can act as a sampling range for [`Rng::random_range`].
///
/// Blanket-implemented for `Range<T>` / `RangeInclusive<T>` over every
/// [`SampleUniform`] `T` — the single-impl structure matters: it lets type
/// inference unify the range's integer literal type with the result's usage
/// type (e.g. a slice index), exactly as upstream rand does.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double mantissa resolution.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
    fn sample_inclusive<R: RngCore>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (SplitMix64-expanded, like upstream).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family upstream `SmallRng` uses on 64-bit.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias generator for code written against `StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
