//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — with a simple
//! timer: a short warm-up, then a fixed iteration batch whose per-iteration
//! median is printed as plain text. No statistics, plots, or HTML reports;
//! good enough to compare kernel variants by eye and to keep `cargo test`
//! compiling the bench targets.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement/report configuration (most knobs are accepted and ignored).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

/// Units used to report throughput alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. FLOPs) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Time `routine`, recording the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        std::hint::black_box(routine());
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        self.last_median = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.criterion.sample_size = n.max(1);
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.criterion.sample_size as u64,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.last_median;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.2} Gelem/s)", n as f64 / per_iter.as_secs_f64() / 1e9)
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.2} GB/s)", n as f64 / per_iter.as_secs_f64() / 1e9)
            }
            _ => String::new(),
        };
        println!("{}/{id}: median {per_iter:?}/iter{rate}", self.name);
    }

    /// Benchmark a closure under a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        self.run_one(id, &mut f);
    }

    /// Benchmark a closure against an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run_one(&label, &mut |b| f(b, input));
    }

    /// End the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
    }
}

/// Opaque-value helper re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        let mut ran = 0u64;
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("id", 7), &7usize, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
