//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex`, `MutexGuard`, `RwLock` and `Condvar` with parking_lot's
//! API shape (no lock poisoning, `lock()` returns the guard directly),
//! implemented over `std::sync`. Poison errors from std are swallowed by
//! taking the inner guard, which matches parking_lot's semantics of simply
//! not having poisoning.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Block until notified; the guard is released while waiting and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses; returns `true` when the
    /// wait timed out (mirrors parking_lot's `wait_for` +
    /// `WaitTimeoutResult::timed_out`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_latch() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let n = 4;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let pair = Arc::clone(&pair);
                std::thread::spawn(move || {
                    let (m, cv) = &*pair;
                    *m.lock() += 1;
                    cv.notify_all();
                })
            })
            .collect();
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while *done < n {
            cv.wait(&mut done);
        }
        drop(done);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), n);
    }
}
