#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean workspace.
#
# Test matrix covered by `cargo test --workspace`:
#   unit + doc tests ........ every crate (queue/leveling/cache in core, CPU
#                             kernels + threading, perf model + faults in accel)
#   property tests .......... cpu kernels, core queue-cache invalidation
#                             (random interleavings, queued == uncached bits)
#   tests/cross_backend ..... implementations x {single,double} x scaling vs oracle
#   tests/differential ...... implementations x {eager, queued} bit-for-bit,
#                             eigen-cache repeat proposals, site-lnL read-back,
#                             and the failover fixtures in BOTH queue modes
#                             (COMPUTATION_SYNCH and COMPUTATION_ASYNCH)
#   tests/failover .......... fault matrix: device loss, transient kernel/copy
#                             faults, corruption, creation fallback, rescue
#   tests/multi_device ...... partitioned instances across device sets
#   tests/balance ........... adaptive load balancing differentials: backend x
#                             precision x scaling bit-exactness vs a single
#                             instance at every intermediate weighting,
#                             adaptive rebalance under an injected slowdown,
#                             eviction re-split, checkpoint/restore of a
#                             rebalanced instance
#   tests/incremental ....... epoch-based memoization differentials: MCMC-
#                             style sweeps, backend x precision x scaling x
#                             queue mode bit-identical to always-recompute,
#                             through mid-run failover and checkpoint/restore
#   tests/properties ........ proptest invariants (incl. balancer: range
#                             coverage, monotone shares, skew decrease;
#                             incremental: random interleavings never serve
#                             stale bits)
#   tests/obs* .............. observability: stats coverage, journal ordering
#                             across a queued failover run, instrumentation
#                             overhead guard, benchmark_resources determinism
#   tests/pool .............. instance-pool scheduler differentials: K pooled
#                             sessions bit-identical to serial pinned across
#                             backend x precision x queue mode, and through a
#                             mid-run worker eviction (device loss -> requeue
#                             -> rebuild, breaker opens)
#   tests/send_sync ......... compile-time Send + Sync audit of every backend,
#                             wrapper layer, and the pool's public types
#   tests/serve ............. likelihood-service differentials: TCP and Unix
#                             loopback bit-identical to in-process across
#                             backend x precision, mid-session eviction,
#                             drain with work in flight, admission-control
#                             rejections audited, per-request deadlines
#                             reaching the watchdog, wire-decoder fuzzing
#   tests/remote (mcmc) ..... MC3 over the wire bit-identical to local
#   tests/robustness ........ deadline watchdog cancelling hangs/stalls
#                             (bit-exact failover vs a fault-free survivor
#                             run), circuit breakers steering creation and
#                             benchmarking, durable checkpoint save/load/
#                             restore with corruption detection
# Plus a short seeded soak (scripts/soak.sh): randomized hang/stall/loss
# plans under a watchdog, periodic checkpoint round-trips, zero lost
# operations required.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
# The queue-mode differential matrix, the fault matrix, the SIMD kernel
# parity suite, and the observability suite, named explicitly so a
# regression in any is attributable at a glance.
cargo test -q --test differential
cargo test -q --test failover
cargo test -q --test robustness
cargo test -q -p beagle-cpu --test simd_parity
cargo test -q --test obs
cargo test -q --test obs_overhead
cargo test -q --test obs_env
cargo test -q --test balance
cargo test -q --test incremental
cargo test -q -p genomictest --test pool
cargo test -q -p beagle-server --test serve
cargo test -q -p beagle-mcmc --test remote
# Likelihood-service loopback smoke: start a server on an ephemeral port,
# round-trip sessions through a real socket, bit-compare against a local
# instance, then drain. Exercises the full WIRE-v1 stack end to end.
cargo run -q --release -p beagle-server --bin beagle-serve -- --self-test 3
cargo clippy --workspace -- -D warnings
# Formatting gate for first-party crates only: the vendored stand-ins under
# vendor/ keep their upstream-ish style and are deliberately excluded.
cargo fmt --check -p beagle -p beagle-core -p beagle-cpu -p beagle-accel \
    -p beagle-phylo -p beagle-bench -p beagle-mcmc -p genomictest -p beagle-server
# The zero-cost claim has a compile-time arm: the workspace (and the obs
# test suite, whose assertions gate on the runtime probe) must also build
# with the recorder compiled out.
cargo build -q --release --no-default-features --features obs-disabled
# Short robustness soak: seeded fault storm, zero lost operations.
bash scripts/soak.sh "${TIER1_SOAK_SECONDS:-10}"
