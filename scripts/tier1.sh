#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
