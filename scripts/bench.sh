#!/usr/bin/env bash
# Kernel microbenchmark sweep plus observability overhead check.
#
# Writes at the repo root:
#   BENCH_kernels.json  GFLOPS + ns/pattern for every kernel x state-count x
#                       precision x dispatch path available on this host
#   BENCH_obs.json      instrumentation overhead (stats on vs off, bit-exact)
#                       and the benchmark_resources ranking of every
#                       registered implementation
#   BENCH_balance.json  adaptive load balancing on a skewed two-GPU mix
#                       (one device fault-throttled 4x): per-batch makespans,
#                       steady-state improvement over a static equal split
#                       (asserted >= 2x), rebalance count, bit-exact lnL
#   BENCH_pool.json     instance-pool scheduler: 8 concurrent session
#                       streams over a 4-worker simulated-GPU fleet vs one
#                       shared-mutex instance (modeled throughput asserted
#                       >= 3x), wall tail latencies, scheduler counters
#   BENCH_incremental.json  epoch-based incremental computation on a single-
#                       branch MCMC sweep: full-refresh vs incremental
#                       wall time (asserted >= 5x), bit-identical lnL trace,
#                       memo skip counters
#   BENCH_serve.json    likelihood-service protocol overhead: 8 concurrent
#                       clients over loopback TCP vs the same sessions
#                       through the in-process pool (bit-identical asserted),
#                       mean/tail wall latencies, overhead % of the wire
#
#   BENCH_QUICK=1 scripts/bench.sh   # ~100x less work per cell (CI smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p beagle-bench \
    --bin kernels --bin obs --bin balance --bin pool --bin incremental-mcmc \
    --bin serve
./target/release/kernels BENCH_kernels.json
./target/release/obs BENCH_obs.json
./target/release/balance BENCH_balance.json
./target/release/pool BENCH_pool.json
./target/release/incremental-mcmc BENCH_incremental.json
./target/release/serve BENCH_serve.json
