#!/usr/bin/env bash
# Kernel microbenchmark sweep: builds the `kernels` bench binary in release
# mode and writes BENCH_kernels.json at the repo root (GFLOPS + ns/pattern
# for every kernel x state-count x precision x dispatch path available on
# this host).
#
#   BENCH_QUICK=1 scripts/bench.sh   # ~100x less work per cell (CI smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p beagle-bench --bin kernels
./target/release/kernels BENCH_kernels.json
