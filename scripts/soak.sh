#!/usr/bin/env bash
# Time-bounded robustness soak (see examples/soak.rs): seeded hang, stall,
# device-loss, and transient-launch plans against a watchdog-guarded
# partitioned instance, with periodic durable-checkpoint round-trips and the
# incremental memo layer toggled on/off mid-storm every iteration.
# Every iteration must match the oracle — the soak exits non-zero on any
# lost operation, divergent restore, or toggle-induced bit change.
#
# Usage: scripts/soak.sh [seconds] [base-seed]
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK_SECONDS="${1:-20}"
SOAK_SEED="${2:-45223}"

cargo run -q --release --example soak -- --seconds "$SOAK_SECONDS" --seed "$SOAK_SEED"
