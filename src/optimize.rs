//! Maximum-likelihood branch-length optimization.
//!
//! The client-side machinery a GARLI/PhyML-class ML program builds on top
//! of BEAGLE's derivative API: for each branch, re-root the computation at
//! that edge (so changing the length invalidates no partials), then run
//! safeguarded Newton–Raphson on `t` using
//! [`BeagleInstance::integrate_edge_derivatives`] — one transition-matrix
//! update plus one edge integration per iteration.

use beagle_core::{BeagleInstance, BufferId, Operation, Result, ScalingMode};
use beagle_phylo::{ReversibleModel, SitePatterns, SiteRates, Tree};

/// Options for [`optimize_branch_lengths`].
#[derive(Clone, Copy, Debug)]
pub struct OptimizeOptions {
    /// Full passes over all branches.
    pub rounds: usize,
    /// Newton iterations per branch.
    pub newton_iterations: usize,
    /// Smallest admissible branch length.
    pub min_branch: f64,
    /// Largest admissible branch length.
    pub max_branch: f64,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        Self {
            rounds: 2,
            newton_iterations: 8,
            min_branch: 1e-8,
            max_branch: 20.0,
        }
    }
}

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeReport {
    /// Log-likelihood before optimization.
    pub initial_log_likelihood: f64,
    /// Log-likelihood after the final pass.
    pub final_log_likelihood: f64,
    /// Log-likelihood after each pass.
    pub per_round: Vec<f64>,
}

/// Optimize every branch length of `tree` in place, using `instance` for
/// all likelihood work. Returns the achieved log-likelihoods.
///
/// The instance must be configured for this problem
/// (`InstanceConfig::for_tree`) and must support the derivative API (all
/// CPU and accelerator implementations in this workspace do).
pub fn optimize_branch_lengths(
    tree: &mut Tree,
    model: &ReversibleModel,
    rates: &SiteRates,
    patterns: &SitePatterns,
    instance: &mut dyn BeagleInstance,
    options: &OptimizeOptions,
) -> Result<OptimizeReport> {
    // Static data.
    let eig = model.eigen();
    instance.set_eigen_decomposition(
        0,
        eig.vectors.as_slice(),
        eig.inverse_vectors.as_slice(),
        &eig.values,
    )?;
    instance.set_state_frequencies(0, model.frequencies())?;
    instance.set_category_rates(&rates.rates)?;
    instance.set_category_weights(0, &rates.weights)?;
    instance.set_pattern_weights(patterns.weights())?;
    for tip in 0..tree.taxon_count() {
        instance.set_tip_states(tip, &patterns.tip_states(tip))?;
    }

    let initial = evaluate(tree, instance)?;
    let mut per_round = Vec::with_capacity(options.rounds);

    // The derivative matrices live in two scratch slots; edge probabilities
    // use the edge node's own slot. Scratch slots: reuse the root's matrix
    // slot (never used as a branch matrix) plus... there is exactly one
    // spare (the root). We therefore place D1 in the root slot and D2 in
    // the rest-root slot of the rerooted tree, whose branch is fixed at 0
    // and can be recomputed afterwards.
    for _ in 0..options.rounds {
        let branch_nodes: Vec<usize> = tree.branch_assignments().iter().map(|&(n, _)| n).collect();
        for &v in &branch_nodes {
            optimize_one_branch(tree, v, instance, options)?;
        }
        per_round.push(evaluate(tree, instance)?);
    }

    let final_lnl = *per_round.last().unwrap_or(&initial);
    Ok(OptimizeReport {
        initial_log_likelihood: initial,
        final_log_likelihood: final_lnl,
        per_round,
    })
}

/// Full evaluation of `tree` on an already-loaded instance.
fn evaluate(tree: &Tree, instance: &mut dyn BeagleInstance) -> Result<f64> {
    let (idx, len): (Vec<usize>, Vec<f64>) = tree.branch_assignments().iter().copied().unzip();
    instance.update_transition_matrices(0, &idx, &len)?;
    let ops: Vec<Operation> = tree
        .operation_schedule()
        .iter()
        .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
        .collect();
    instance.update_partials(&ops)?;
    instance.integrate_root(
        BufferId(tree.root()),
        BufferId(0),
        BufferId(0),
        ScalingMode::None,
    )
}

/// Safeguarded Newton on the branch above `v`, writing the optimum back.
#[doc(hidden)]
pub fn optimize_one_branch(
    tree: &mut Tree,
    v: usize,
    instance: &mut dyn BeagleInstance,
    options: &OptimizeOptions,
) -> Result<()> {
    // Re-root at the edge so only its matrix changes between iterations.
    let (rt, rest_root) = tree.reroot_above(v);
    let was_root_child = tree.node(v).parent == Some(tree.root());

    // Partials for the whole rerooted tree (rest side uses branch 0).
    let (idx, len): (Vec<usize>, Vec<f64>) = rt.branch_assignments().iter().copied().unzip();
    instance.update_transition_matrices(0, &idx, &len)?;
    let ops: Vec<Operation> = rt
        .operation_schedule()
        .iter()
        .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
        .collect();
    instance.update_partials(&ops)?;

    // Derivative scratch: the root's matrix slot and the rest-root's slot
    // (rest-root's real matrix is P(0) = I, restored by the next branch's
    // update_transition_matrices call).
    let d1_slot = rt.root();
    let d2_slot = rest_root;
    let mut t = rt.node(v).branch_length.max(options.min_branch);

    // Evaluate (lnL, d1, d2) at a candidate branch length: one matrix
    // update plus one edge integration — no partials are touched.
    let eval = |t: f64, instance: &mut dyn BeagleInstance| -> Result<(f64, f64, f64)> {
        instance.update_transition_derivatives(0, &[v], &[d1_slot], &[d2_slot], &[t])?;
        instance.integrate_edge_derivatives(
            BufferId(rest_root),
            BufferId(v),
            BufferId(v),
            BufferId(d1_slot),
            BufferId(d2_slot),
            BufferId(0),
            BufferId(0),
            ScalingMode::None,
        )
    };

    let (mut lnl, mut d1, mut d2) = eval(t, instance)?;
    for _ in 0..options.newton_iterations {
        if d1.abs() < 1e-9 {
            break; // stationary
        }
        // Newton step toward a maximum when locally concave; otherwise a
        // multiplicative gradient probe (branch lengths live on a log-ish
        // scale, so scale steps with t).
        let mut step = if d2 < 0.0 {
            -d1 / d2
        } else {
            d1.signum() * t.max(0.02)
        };
        // Backtracking line search: never accept a step that lowers lnL
        // (unguarded Newton can jump across an interior optimum onto the
        // min-branch cliff and get stuck there).
        let mut accepted = false;
        for _ in 0..12 {
            let cand = (t + step).clamp(options.min_branch, options.max_branch);
            if (cand - t).abs() < 1e-12 {
                break;
            }
            let (lnl_c, d1_c, d2_c) = eval(cand, instance)?;
            if lnl_c >= lnl - 1e-12 {
                t = cand;
                lnl = lnl_c;
                d1 = d1_c;
                d2 = d2_c;
                accepted = true;
                break;
            }
            step *= 0.25;
        }
        if !accepted {
            break; // no admissible improvement in this direction
        }
    }
    // Leave the instance's edge matrix consistent with the final t.
    let _ = eval(t, instance)?;

    // Write back: the optimized edge belongs to v; if v was a root child,
    // the whole unrooted edge now lives on v (sibling at 0), matching the
    // rerooted parameterization.
    tree.node_mut(v).branch_length = t;
    if was_root_child {
        let root = tree.root();
        let sibling = *tree
            .node(root)
            .children
            .iter()
            .find(|&&c| c != v)
            .expect("binary root");
        tree.node_mut(sibling).branch_length = 0.0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use beagle_phylo::likelihood::log_likelihood;
    use beagle_phylo::models::nucleotide::hky85;
    use beagle_phylo::simulate::simulate_alignment;

    fn setup(seed: u64) -> (Tree, ReversibleModel, SiteRates, SitePatterns) {
        let mut rng = rand_seeded(seed);
        let tree = Tree::random(8, 0.12, &mut rng);
        let model = hky85(2.5, &[0.3, 0.2, 0.25, 0.25]);
        let rates = SiteRates::constant();
        let aln = simulate_alignment(&tree, &model, &rates, 800, &mut rng);
        let patterns = SitePatterns::compress(&aln);
        (tree, model, rates, patterns)
    }

    #[test]
    fn optimization_increases_likelihood_from_perturbed_start() {
        let (true_tree, model, rates, patterns) = setup(404);
        // Perturb all branch lengths badly.
        let mut tree = true_tree.clone();
        for id in 0..tree.node_count() {
            if id != tree.root() {
                tree.node_mut(id).branch_length =
                    (tree.node(id).branch_length * 4.0 + 0.3).min(2.0);
            }
        }
        let start = log_likelihood(&tree, &model, &rates, &patterns);
        let truth = log_likelihood(&true_tree, &model, &rates, &patterns);

        let manager = crate::full_manager();
        let config = InstanceConfig::for_tree(8, patterns.pattern_count(), 4, 1);
        let mut inst = beagle_core::InstanceSpec::with_config(config)
            .prefer(Flags::PROCESSOR_CPU)
            .instantiate(&manager)
            .unwrap();
        let report = optimize_branch_lengths(
            &mut tree,
            &model,
            &rates,
            &patterns,
            inst.as_mut(),
            &OptimizeOptions {
                rounds: 6,
                ..OptimizeOptions::default()
            },
        )
        .unwrap();

        assert!((report.initial_log_likelihood - start).abs() < 1e-7);
        assert!(
            report.final_log_likelihood > start + 10.0,
            "optimization must improve: {start} → {}",
            report.final_log_likelihood
        );
        // Each pass is monotone non-decreasing.
        let mut prev = report.initial_log_likelihood;
        for &r in &report.per_round {
            assert!(r >= prev - 1e-6, "{r} < {prev}");
            prev = r;
        }
        // The ML tree should beat (or essentially match) the generating tree.
        assert!(
            report.final_log_likelihood >= truth - 1.0,
            "final {} vs truth {truth}",
            report.final_log_likelihood
        );
        // And the result agrees with the oracle on the optimized tree.
        let oracle = log_likelihood(&tree, &model, &rates, &patterns);
        assert!((report.final_log_likelihood - oracle).abs() < 1e-7);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let (tree, model, rates, patterns) = setup(405);
        let manager = crate::full_manager();
        let config = InstanceConfig::for_tree(8, patterns.pattern_count(), 4, 1);
        let mut inst = beagle_core::InstanceSpec::with_config(config)
            .prefer(Flags::PROCESSOR_CPU)
            .instantiate(&manager)
            .unwrap();
        // Load static data.
        let eig = model.eigen();
        inst.set_eigen_decomposition(
            0,
            eig.vectors.as_slice(),
            eig.inverse_vectors.as_slice(),
            &eig.values,
        )
        .unwrap();
        inst.set_state_frequencies(0, model.frequencies()).unwrap();
        inst.set_category_rates(&rates.rates).unwrap();
        inst.set_category_weights(0, &rates.weights).unwrap();
        inst.set_pattern_weights(patterns.weights()).unwrap();
        for tip in 0..8 {
            inst.set_tip_states(tip, &patterns.tip_states(tip)).unwrap();
        }

        // Pick a non-root branch, re-root there, and compare the analytic
        // derivatives against central finite differences of the full lnL.
        let v = 3usize;
        let (rt, rest_root) = tree.reroot_above(v);
        let lnl_at = |t: f64, inst: &mut dyn BeagleInstance| {
            let mut rt2 = rt.clone();
            rt2.node_mut(v).branch_length = t;
            let (idx, len): (Vec<usize>, Vec<f64>) =
                rt2.branch_assignments().iter().copied().unzip();
            inst.update_transition_matrices(0, &idx, &len).unwrap();
            let ops: Vec<Operation> = rt2
                .operation_schedule()
                .iter()
                .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
                .collect();
            inst.update_partials(&ops).unwrap();
            inst.integrate_root(
                BufferId(rt2.root()),
                BufferId(0),
                BufferId(0),
                ScalingMode::None,
            )
            .unwrap()
        };

        let t0 = rt.node(v).branch_length.max(0.05);
        let h = 1e-5;
        let lp = lnl_at(t0 + h, inst.as_mut());
        let lm = lnl_at(t0 - h, inst.as_mut());
        let l0 = lnl_at(t0, inst.as_mut());
        let fd1 = (lp - lm) / (2.0 * h);
        let fd2 = (lp - 2.0 * l0 + lm) / (h * h);

        // Analytic derivatives via the API (partials are current for t0
        // because lnl_at(t0) ran last).
        inst.update_transition_derivatives(0, &[v], &[rt.root()], &[rest_root], &[t0])
            .unwrap();
        let (lnl, d1, d2) = inst
            .integrate_edge_derivatives(
                BufferId(rest_root),
                BufferId(v),
                BufferId(v),
                BufferId(rt.root()),
                BufferId(rest_root),
                BufferId(0),
                BufferId(0),
                ScalingMode::None,
            )
            .unwrap();
        assert!((lnl - l0).abs() < 1e-7, "{lnl} vs {l0}");
        assert!(
            (d1 - fd1).abs() < 1e-3 * fd1.abs().max(1.0),
            "{d1} vs {fd1}"
        );
        assert!(
            (d2 - fd2).abs() < 1e-2 * fd2.abs().max(1.0),
            "{d2} vs {fd2}"
        );
    }
}
