//! # BEAGLE-RS
//!
//! A from-scratch Rust reproduction of the BEAGLE high-performance library
//! for statistical phylogenetics, as extended with heterogeneous hardware
//! support in Ayres & Cummings, *ICPP Workshops 2017*
//! (DOI 10.1109/ICPPW.2017.17).
//!
//! The library accelerates the computational bottleneck of maximum-
//! likelihood and Bayesian phylogenetic inference — Felsenstein's
//! partial-likelihoods recursion — behind a uniform API with many
//! interchangeable back-ends:
//!
//! * **CPU**: serial, vectorized ("SSE"), and three generations of
//!   C++-threads-style models (futures / thread-create / thread-pool);
//! * **Accelerators**: one shared kernel code base instantiated for both a
//!   (simulated) CUDA framework and a (simulated) OpenCL framework, with
//!   hardware-specific GPU and x86 kernel variants.
//!
//! ```
//! use beagle::prelude::*;
//!
//! // A tiny nucleotide problem: simulate data on a random tree...
//! let mut rng = rand_seeded(42);
//! let tree = Tree::random(6, 0.1, &mut rng);
//! let model = beagle::phylo::models::nucleotide::hky85(2.0, &[0.3, 0.2, 0.25, 0.25]);
//! let rates = SiteRates::discrete_gamma(0.5, 4);
//! let alignment = beagle::phylo::simulate::simulate_alignment(&tree, &model, &rates, 100, &mut rng);
//! let patterns = SitePatterns::compress(&alignment);
//!
//! // ...and evaluate its likelihood on the best available implementation.
//! // `InstanceSpec` is the front door for instance creation: a builder
//! // over (config, preferences, requirements, named implementation).
//! let manager = beagle::full_manager();
//! let config = InstanceConfig::for_tree(6, patterns.pattern_count(), 4, 4);
//! let mut instance = InstanceSpec::with_config(config)
//!     .prefer(Flags::PROCESSOR_CPU)
//!     .with_stats() // opt into kernel timers/counters + the event journal
//!     .instantiate(&manager)
//!     .unwrap();
//! let problem = beagle::harness::Problem { tree, model, rates, patterns };
//! problem.load(instance.as_mut());
//! let lnl = problem.evaluate(instance.as_mut(), false);
//! assert!(lnl.is_finite() && lnl < 0.0);
//! // Per-kernel-class statistics were recorded along the way.
//! if let Some(stats) = instance.statistics() {
//!     assert!(stats.total_calls() > 0);
//! }
//! ```
//!
//! Crate map (see `DESIGN.md` at the repository root):
//! * [`core`] — the BEAGLE API, buffers, flags, implementation manager
//! * [`cpu`] — CPU implementations and the thread pool
//! * [`accel`] — the CUDA/OpenCL accelerator model and device simulator
//! * [`phylo`] — trees, models, alignments, pattern compression, the oracle
//! * [`harness`] — `genomictest`-style problem generation and benchmarking
//! * [`mcmc`] — the MrBayes-lite MC³ application
//! * [`server`] — likelihood-as-a-service: the WIRE-v1 socket server
//!   (`beagle-serve`) and blocking client
//! * [`optimize`] — Newton–Raphson ML branch-length optimization on the
//!   derivative API (the GARLI/PhyML client pattern)

pub mod optimize;

pub use beagle_accel as accel;
pub use beagle_core as core;
pub use beagle_cpu as cpu;
pub use beagle_mcmc as mcmc;
pub use beagle_phylo as phylo;
pub use beagle_server as server;
pub use genomictest as harness;

pub use genomictest::{full_manager, full_manager_with_faults};

/// The convenient single import for applications.
pub mod prelude {
    pub use beagle_core::{
        BeagleInstance, BufferId, Flags, ImplementationManager, InstanceConfig, InstanceSpec,
        InstanceStats, Operation, ScalingMode,
    };
    pub use beagle_phylo::{Alignment, Alphabet, ReversibleModel, SitePatterns, SiteRates, Tree};

    /// A small-state seeded RNG for reproducible examples.
    pub fn rand_seeded(seed: u64) -> rand::rngs::SmallRng {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(seed)
    }
}
