//! Property-based tests for the shared-kernel accelerator model.

use beagle_accel::device::catalog;
use beagle_accel::dialect::{CudaDialect, OpenClDialect};
use beagle_accel::grid::{plan_gpu, plan_x86};
use beagle_accel::kernels::gpu::{partials_kernel, PartialsArgs};
use beagle_accel::kernels::x86;
use beagle_accel::kernels::Operand;
use beagle_accel::perf::PerfModel;
use proptest::prelude::*;

fn values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The CUDA and OpenCL instantiations of the shared kernel are bitwise
    /// identical for arbitrary inputs, pattern counts, and category counts.
    #[test]
    fn dialects_bitwise_identical(
        patterns in 1usize..150,
        cats in 1usize..4,
        seed in values(3700),
    ) {
        let s = 4;
        let len = cats * patterns * s;
        let c1 = &seed[..len];
        let c2 = &seed[len..2 * len];
        let m: Vec<f64> = seed[2 * len..2 * len + cats * s * s].to_vec();
        let spec = catalog::quadro_p5000();
        let plan = plan_gpu(&spec, s, 8);

        let run = |cuda: bool| {
            let mut dest = vec![0.0; len];
            let args = PartialsArgs {
                dest: &mut dest,
                c1: Operand::Partials(c1),
                c2: Operand::Partials(c2),
                m1: &m,
                m2: &m,
                states: s,
                patterns,
                categories: cats,
                plan,
                fma_enabled: true,
            };
            if cuda {
                partials_kernel::<CudaDialect, f64>(args);
            } else {
                partials_kernel::<OpenClDialect, f64>(args);
            }
            dest
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// The GPU and x86 kernel variants agree for arbitrary inputs and
    /// work-group sizes (the two hardware organizations compute one math).
    #[test]
    fn gpu_and_x86_variants_agree(
        patterns in 1usize..120,
        wg in 1usize..300,
        seed in values(2000),
    ) {
        let s = 4;
        let cats = 2;
        let len = cats * patterns * s;
        let c1 = &seed[..len];
        let c2 = &seed[len..2 * len];
        let m: Vec<f64> = seed[2 * len..2 * len + cats * s * s].to_vec();

        // GPU variant over the whole grid.
        let mut d_gpu = vec![0.0; len];
        partials_kernel::<CudaDialect, f64>(PartialsArgs {
            dest: &mut d_gpu,
            c1: Operand::Partials(c1),
            c2: Operand::Partials(c2),
            m1: &m,
            m2: &m,
            states: s,
            patterns,
            categories: cats,
            plan: plan_gpu(&catalog::radeon_r9_nano(), s, 8),
            fma_enabled: true,
        });

        // x86 variant in work-groups of `wg` patterns.
        let plan = plan_x86(wg);
        let groups = plan.group_count(patterns);
        let mut d_x86 = vec![0.0; len];
        for g in 0..groups {
            let p0 = g * wg;
            let p1 = ((g + 1) * wg).min(patterns);
            // Assemble per-category mutable blocks for this group.
            let mut blocks: Vec<&mut [f64]> = Vec::new();
            let mut rest = d_x86.as_mut_slice();
            let mut consumed = 0usize;
            for cat in 0..cats {
                let start = (cat * patterns + p0) * s - consumed;
                let (_skip, r) = rest.split_at_mut(start);
                let (blk, r2) = r.split_at_mut((p1 - p0) * s);
                blocks.push(blk);
                rest = r2;
                consumed = (cat * patterns + p1) * s;
            }
            x86::partials_group::<OpenClDialect, f64>(
                &mut blocks,
                Operand::Partials(c1),
                Operand::Partials(c2),
                &m,
                &m,
                s,
                patterns,
                p0,
                p1,
                true,
            );
        }
        for (a, b) in d_gpu.iter().zip(&d_x86) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Work-group plans are always feasible: at least one pattern per group,
    /// local memory never exceeded, padding bounded by one group.
    #[test]
    fn plans_always_feasible(states in 2usize..80, elem in prop_oneof![Just(4usize), Just(8)]) {
        for spec in catalog::all() {
            let plan = plan_gpu(&spec, states, elem);
            prop_assert!(plan.patterns_per_group >= 1);
            prop_assert_eq!(plan.items_per_group, plan.patterns_per_group * states);
            if plan.matrices_in_local {
                let used = 2 * states * states * elem + plan.patterns_per_group * 2 * states * elem;
                prop_assert!(used <= spec.local_mem_bytes() + 2 * states * elem,
                    "local memory overcommitted on {}", spec.name);
            }
            for patterns in [1usize, 7, 1000] {
                let padded = plan.padded_patterns(patterns);
                prop_assert!(padded >= patterns);
                prop_assert!(padded - patterns < plan.patterns_per_group);
            }
        }
    }

    /// Kernel time is monotone in flops and bytes, and never below the
    /// launch overhead.
    #[test]
    fn kernel_time_monotone(
        flops in 1e3f64..1e12,
        bytes in 1e3f64..1e11,
        items in 1e2f64..1e8,
    ) {
        let model = PerfModel::new(catalog::firepro_s9170());
        let base = beagle_accel::perf::KernelCost { flops, bytes, fma_fraction: 0.9, work_items: items };
        let more_flops = beagle_accel::perf::KernelCost { flops: flops * 2.0, ..base };
        let more_bytes = beagle_accel::perf::KernelCost { bytes: bytes * 2.0, ..base };
        let t0 = model.kernel_time(&base, 4, false, true, 18.0);
        prop_assert!(t0.as_secs_f64() >= 18.0e-6);
        prop_assert!(model.kernel_time(&more_flops, 4, false, true, 18.0) >= t0);
        prop_assert!(model.kernel_time(&more_bytes, 4, false, true, 18.0) >= t0);
        // FMA can only help.
        prop_assert!(model.kernel_time(&base, 4, false, false, 18.0) >= t0);
    }
}
