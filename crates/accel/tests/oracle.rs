//! Integration tests: every accelerator implementation (CUDA, OpenCL-GPU on
//! each simulated device, OpenCL-x86) must reproduce the pruning oracle's
//! log-likelihood, and the simulated clock must behave sensibly.

use beagle_accel::{
    catalog, register_accel_factories, CudaFactory, OpenClGpuFactory, OpenClX86Factory,
};
use beagle_core::manager::{ImplementationFactory, ImplementationManager};
use beagle_core::{
    BeagleInstance, BufferId, Flags, InstanceConfig, InstanceSpec, Operation, ScalingMode,
};
use beagle_phylo::likelihood::log_likelihood;
use beagle_phylo::models::{codon, nucleotide};
use beagle_phylo::simulate::simulate_alignment;
use beagle_phylo::{ReversibleModel, SitePatterns, SiteRates, Tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn drive(
    inst: &mut dyn BeagleInstance,
    tree: &Tree,
    model: &ReversibleModel,
    rates: &SiteRates,
    patterns: &SitePatterns,
    scaled: bool,
) -> f64 {
    let eig = model.eigen();
    inst.set_eigen_decomposition(
        0,
        eig.vectors.as_slice(),
        eig.inverse_vectors.as_slice(),
        &eig.values,
    )
    .unwrap();
    inst.set_state_frequencies(0, model.frequencies()).unwrap();
    inst.set_category_rates(&rates.rates).unwrap();
    inst.set_category_weights(0, &rates.weights).unwrap();
    inst.set_pattern_weights(patterns.weights()).unwrap();
    for tip in 0..tree.taxon_count() {
        inst.set_tip_states(tip, &patterns.tip_states(tip)).unwrap();
    }
    let (idx, len): (Vec<usize>, Vec<f64>) = tree.branch_assignments().iter().copied().unzip();
    inst.update_transition_matrices(0, &idx, &len).unwrap();
    let ops: Vec<Operation> = tree
        .operation_schedule()
        .iter()
        .map(|e| {
            let op = Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2);
            if scaled {
                op.with_scaling(e.destination)
            } else {
                op
            }
        })
        .collect();
    inst.update_partials(&ops).unwrap();
    let cum = if scaled {
        let c = inst.config().scale_buffer_count - 1;
        inst.reset_scale_factors(c).unwrap();
        let bufs: Vec<usize> = ops.iter().map(|o| o.destination).collect();
        inst.accumulate_scale_factors(&bufs, c).unwrap();
        ScalingMode::cumulative(c)
    } else {
        ScalingMode::None
    };
    inst.integrate_root(BufferId(tree.root()), BufferId(0), BufferId(0), cum)
        .unwrap()
}

struct Case {
    tree: Tree,
    model: ReversibleModel,
    rates: SiteRates,
    patterns: SitePatterns,
}

fn nuc_case(seed: u64, taxa: usize, sites: usize, cats: usize) -> Case {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tree = Tree::random(taxa, 0.12, &mut rng);
    let model = nucleotide::gtr(&[1.0, 2.0, 0.7, 1.3, 3.1, 1.0], &[0.3, 0.2, 0.3, 0.2]);
    let rates = if cats > 1 {
        SiteRates::discrete_gamma(0.4, cats)
    } else {
        SiteRates::constant()
    };
    let aln = simulate_alignment(&tree, &model, &rates, sites, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    Case {
        tree,
        model,
        rates,
        patterns,
    }
}

fn all_factories() -> Vec<Box<dyn ImplementationFactory>> {
    vec![
        Box::new(CudaFactory::new(catalog::quadro_p5000())),
        Box::new(OpenClGpuFactory::new(catalog::quadro_p5000())),
        Box::new(OpenClGpuFactory::new(catalog::radeon_r9_nano())),
        Box::new(OpenClGpuFactory::new(catalog::firepro_s9170())),
        Box::new(OpenClX86Factory::with_threads(4, 256)),
    ]
}

#[test]
fn all_accel_implementations_match_oracle_nucleotide() {
    let case = nuc_case(1, 10, 600, 4);
    let oracle = log_likelihood(&case.tree, &case.model, &case.rates, &case.patterns);
    let config = InstanceConfig::for_tree(10, case.patterns.pattern_count(), 4, 4);
    for f in all_factories() {
        for single in [false, true] {
            let prefs = if single {
                Flags::PRECISION_SINGLE
            } else {
                Flags::PRECISION_DOUBLE
            };
            let mut inst = f.create(&config, prefs, Flags::NONE).unwrap();
            let lnl = drive(
                inst.as_mut(),
                &case.tree,
                &case.model,
                &case.rates,
                &case.patterns,
                single,
            );
            let tol = if single {
                ((lnl - oracle) / oracle).abs() < 1e-4
            } else {
                (lnl - oracle).abs() < 1e-7
            };
            assert!(tol, "{} single={single}: {lnl} vs {oracle}", f.name());
        }
    }
}

#[test]
fn all_accel_implementations_match_oracle_codon() {
    let mut rng = SmallRng::seed_from_u64(2);
    let tree = Tree::random(6, 0.1, &mut rng);
    let model = codon::gy94(
        codon::CodonModelParams {
            kappa: 2.5,
            omega: 0.4,
        },
        &codon::f1x4_frequencies(&[0.3, 0.2, 0.25, 0.25]),
    );
    let rates = SiteRates::constant();
    let aln = simulate_alignment(&tree, &model, &rates, 120, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    let oracle = log_likelihood(&tree, &model, &rates, &patterns);
    let config = InstanceConfig::for_tree(6, patterns.pattern_count(), 61, 1);
    for f in all_factories() {
        let mut inst = f
            .create(&config, Flags::PRECISION_DOUBLE, Flags::NONE)
            .unwrap();
        let lnl = drive(inst.as_mut(), &tree, &model, &rates, &patterns, false);
        assert!(
            (lnl - oracle).abs() < 1e-6,
            "{}: {lnl} vs {oracle}",
            f.name()
        );
    }
}

#[test]
fn simulated_clock_advances_only_for_gpu_instances() {
    let case = nuc_case(3, 6, 300, 2);
    let config = InstanceConfig::for_tree(6, case.patterns.pattern_count(), 4, 2);

    let gpu = CudaFactory::new(catalog::quadro_p5000());
    let mut inst = gpu.create(&config, Flags::NONE, Flags::NONE).unwrap();
    assert_eq!(inst.simulated_time().unwrap().as_nanos(), 0);
    drive(
        inst.as_mut(),
        &case.tree,
        &case.model,
        &case.rates,
        &case.patterns,
        false,
    );
    let t1 = inst.simulated_time().unwrap();
    assert!(
        t1.as_nanos() > 0,
        "GPU work must advance the simulated clock"
    );
    inst.reset_simulated_time();
    assert_eq!(inst.simulated_time().unwrap().as_nanos(), 0);

    let x86 = OpenClX86Factory::with_threads(2, 256);
    let mut inst = x86.create(&config, Flags::NONE, Flags::NONE).unwrap();
    drive(
        inst.as_mut(),
        &case.tree,
        &case.model,
        &case.rates,
        &case.patterns,
        false,
    );
    assert!(
        inst.simulated_time().is_none(),
        "x86 device is wall-clock timed"
    );
}

#[test]
fn cuda_faster_than_opencl_on_same_nvidia_device_at_small_sizes() {
    // Fig. 4 nucleotide panel: CUDA and OpenCL on the P5000 separate at
    // small pattern counts (launch overhead), converge at large ones.
    let case = nuc_case(4, 8, 200, 4);
    let config = InstanceConfig::for_tree(8, case.patterns.pattern_count(), 4, 4);
    let time_with = |f: &dyn ImplementationFactory| {
        let mut inst = f
            .create(&config, Flags::PRECISION_SINGLE, Flags::NONE)
            .unwrap();
        drive(
            inst.as_mut(),
            &case.tree,
            &case.model,
            &case.rates,
            &case.patterns,
            true,
        );
        inst.simulated_time().unwrap()
    };
    let cuda = time_with(&CudaFactory::new(catalog::quadro_p5000()));
    let opencl = time_with(&OpenClGpuFactory::new(catalog::quadro_p5000()));
    assert!(
        cuda < opencl,
        "CUDA {cuda:?} must beat OpenCL {opencl:?} at small sizes"
    );
}

#[test]
fn work_group_size_does_not_change_results() {
    // Table V varies the x86 work-group size; results must be identical.
    let case = nuc_case(5, 9, 700, 2);
    let config = InstanceConfig::for_tree(9, case.patterns.pattern_count(), 4, 2);
    let mut reference = None;
    for wg in [64, 128, 256, 512, 1024] {
        let f = OpenClX86Factory::with_threads(3, wg);
        let mut inst = f.create(&config, Flags::NONE, Flags::NONE).unwrap();
        let lnl = drive(
            inst.as_mut(),
            &case.tree,
            &case.model,
            &case.rates,
            &case.patterns,
            false,
        );
        match reference {
            None => reference = Some(lnl),
            Some(r) => assert!((lnl - r).abs() < 1e-10, "wg={wg}: {lnl} vs {r}"),
        }
    }
}

#[test]
fn manager_registration_end_to_end() {
    let mut m = ImplementationManager::new();
    register_accel_factories(&mut m);
    let case = nuc_case(6, 5, 150, 1);
    let config = InstanceConfig::for_tree(5, case.patterns.pattern_count(), 4, 1);
    let mut inst = InstanceSpec::with_config(config)
        .prefer(Flags::PROCESSOR_GPU)
        .instantiate(&m)
        .unwrap();
    let oracle = log_likelihood(&case.tree, &case.model, &case.rates, &case.patterns);
    let lnl = drive(
        inst.as_mut(),
        &case.tree,
        &case.model,
        &case.rates,
        &case.patterns,
        false,
    );
    assert!((lnl - oracle).abs() < 1e-7);
}
