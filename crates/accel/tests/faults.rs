//! Fault-injection matrix: every fault kind × transient/permanent ×
//! back-end (simulated CUDA, simulated OpenCL-GPU, real OpenCL-x86) must
//! surface the right typed error, and injection must be deterministic
//! under a fixed seed.

use beagle_accel::{
    catalog, CudaFactory, FaultDirectory, FaultKind, FaultPlan, OpenClGpuFactory, OpenClX86Factory,
    Schedule,
};
use beagle_core::error::{BeagleError, DeviceErrorKind};
use beagle_core::manager::ImplementationFactory;
use beagle_core::{
    BeagleInstance, BufferId, Flags, InstanceConfig, Operation, Result, ScalingMode,
};
use beagle_phylo::models::nucleotide;
use beagle_phylo::simulate::simulate_alignment;
use beagle_phylo::{ReversibleModel, SitePatterns, SiteRates, Tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const TAXA: usize = 6;

struct Case {
    tree: Tree,
    model: ReversibleModel,
    rates: SiteRates,
    patterns: SitePatterns,
}

fn case() -> Case {
    let mut rng = SmallRng::seed_from_u64(5);
    let tree = Tree::random(TAXA, 0.12, &mut rng);
    let model = nucleotide::gtr(&[1.0, 2.0, 0.7, 1.3, 3.1, 1.0], &[0.3, 0.2, 0.3, 0.2]);
    let rates = SiteRates::discrete_gamma(0.5, 2);
    let aln = simulate_alignment(&tree, &model, &rates, 200, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    Case {
        tree,
        model,
        rates,
        patterns,
    }
}

fn config(case: &Case) -> InstanceConfig {
    InstanceConfig::for_tree(TAXA, case.patterns.pattern_count(), 4, 2)
}

/// The full genomictest-style pipeline, with every step fallible so an
/// injected fault surfaces instead of panicking.
fn try_drive(inst: &mut dyn BeagleInstance, case: &Case) -> Result<f64> {
    let eig = case.model.eigen();
    inst.set_eigen_decomposition(
        0,
        eig.vectors.as_slice(),
        eig.inverse_vectors.as_slice(),
        &eig.values,
    )?;
    inst.set_state_frequencies(0, case.model.frequencies())?;
    inst.set_category_rates(&case.rates.rates)?;
    inst.set_category_weights(0, &case.rates.weights)?;
    inst.set_pattern_weights(case.patterns.weights())?;
    for tip in 0..case.tree.taxon_count() {
        inst.set_tip_states(tip, &case.patterns.tip_states(tip))?;
    }
    let (idx, len): (Vec<usize>, Vec<f64>) = case.tree.branch_assignments().iter().copied().unzip();
    inst.update_transition_matrices(0, &idx, &len)?;
    let ops: Vec<Operation> = case
        .tree
        .operation_schedule()
        .iter()
        .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
        .collect();
    inst.update_partials(&ops)?;
    inst.integrate_root(
        BufferId(case.tree.root()),
        BufferId(0),
        BufferId(0),
        ScalingMode::None,
    )
}

/// One factory per back-end, all carrying `plan`.
fn faulty_backends(plan: &FaultPlan) -> Vec<(&'static str, Box<dyn ImplementationFactory>)> {
    vec![
        (
            "cuda",
            Box::new(CudaFactory::with_faults(
                catalog::quadro_p5000(),
                plan.clone(),
            )),
        ),
        (
            "opencl-gpu",
            Box::new(OpenClGpuFactory::with_faults(
                catalog::radeon_r9_nano(),
                plan.clone(),
            )),
        ),
        (
            "opencl-x86",
            Box::new(OpenClX86Factory::with_threads(2, 128).with_fault_plan(plan.clone())),
        ),
    ]
}

#[test]
fn allocation_fault_fails_instance_creation_on_every_backend() {
    let case = case();
    for transient in [false, true] {
        let plan =
            FaultPlan::new(1).with_fault(FaultKind::Allocation, transient, Schedule::AtCall(1));
        for (backend, f) in faulty_backends(&plan) {
            let err = f
                .create(&config(&case), Flags::PRECISION_DOUBLE, Flags::NONE)
                .err()
                .unwrap_or_else(|| panic!("{backend}: creation must fail"));
            assert!(
                matches!(
                    err,
                    BeagleError::Device {
                        kind: DeviceErrorKind::AllocationFailed,
                        transient: t,
                        ..
                    } if t == transient
                ),
                "{backend}: wrong error {err}"
            );
            assert_eq!(err.is_retryable(), transient, "{backend}");
        }
    }
}

#[test]
fn launch_fault_surfaces_typed_error_on_every_backend() {
    let case = case();
    for transient in [false, true] {
        // EveryN(1) fires at the first kernel launch (the transition-matrix
        // kernel); copies and allocations pass untouched.
        let plan =
            FaultPlan::new(1).with_fault(FaultKind::KernelLaunch, transient, Schedule::EveryN(1));
        for (backend, f) in faulty_backends(&plan) {
            let mut inst = f
                .create(&config(&case), Flags::PRECISION_DOUBLE, Flags::NONE)
                .unwrap_or_else(|e| panic!("{backend}: creation must pass: {e}"));
            let err = try_drive(inst.as_mut(), &case)
                .err()
                .unwrap_or_else(|| panic!("{backend}: drive must fail"));
            assert!(
                matches!(
                    err,
                    BeagleError::Device {
                        kind: DeviceErrorKind::LaunchFailed,
                        transient: t,
                        ..
                    } if t == transient
                ),
                "{backend}: wrong error {err}"
            );
        }
    }
}

#[test]
fn permanent_device_loss_latches_on_every_backend() {
    let case = case();
    // Call 15 is mid-drive: after creation, data upload, and the matrix
    // kernel, during update_partials.
    let plan = FaultPlan::new(1).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(15));
    for (backend, f) in faulty_backends(&plan) {
        let mut inst = f
            .create(&config(&case), Flags::PRECISION_DOUBLE, Flags::NONE)
            .unwrap();
        let err = try_drive(inst.as_mut(), &case)
            .err()
            .unwrap_or_else(|| panic!("{backend}: drive must fail"));
        assert!(
            matches!(
                err,
                BeagleError::Device {
                    kind: DeviceErrorKind::DeviceLost,
                    transient: false,
                    ..
                }
            ),
            "{backend}: wrong error {err}"
        );
        // The device stays dead: every further call fails too.
        let later = inst.set_category_rates(&case.rates.rates);
        assert!(
            matches!(
                later,
                Err(BeagleError::Device {
                    kind: DeviceErrorKind::DeviceLost,
                    ..
                })
            ),
            "{backend}: device loss must latch"
        );
    }
}

#[test]
fn transient_device_loss_is_survivable() {
    let case = case();
    let plan = FaultPlan::new(1).with_fault(FaultKind::DeviceLost, true, Schedule::AtCall(15));
    for (backend, f) in faulty_backends(&plan) {
        let mut inst = f
            .create(&config(&case), Flags::PRECISION_DOUBLE, Flags::NONE)
            .unwrap();
        let err = try_drive(inst.as_mut(), &case).err().unwrap();
        assert!(
            err.is_retryable(),
            "{backend}: transient loss must be retryable"
        );
        // The fault cleared; re-driving the same instance succeeds.
        let lnl = try_drive(inst.as_mut(), &case)
            .unwrap_or_else(|e| panic!("{backend}: retry must pass: {e}"));
        assert!(lnl.is_finite() && lnl < 0.0, "{backend}");
    }
}

#[test]
fn silent_corruption_is_detected_at_integration() {
    let case = case();
    // Call 14 is the first partials launch: the kernel "succeeds" but the
    // destination buffer is poisoned; the damage only surfaces when the
    // root integration reads it.
    let plan =
        FaultPlan::new(1).with_fault(FaultKind::SilentCorruption, false, Schedule::AtCall(14));
    for (backend, f) in faulty_backends(&plan) {
        let mut inst = f
            .create(&config(&case), Flags::PRECISION_DOUBLE, Flags::NONE)
            .unwrap();
        let err = try_drive(inst.as_mut(), &case)
            .err()
            .unwrap_or_else(|| panic!("{backend}: corruption must be detected"));
        assert!(
            matches!(
                err,
                BeagleError::Device {
                    kind: DeviceErrorKind::MemoryCorruption,
                    transient: false,
                    ..
                }
            ),
            "{backend}: wrong error {err}"
        );
    }
}

#[test]
fn probabilistic_injection_is_deterministic_under_fixed_seed() {
    let case = case();
    let plan =
        FaultPlan::new(99).with_fault(FaultKind::KernelLaunch, true, Schedule::Probability(0.15));
    for (backend, _) in faulty_backends(&plan) {
        let outcome = |plan: &FaultPlan| -> String {
            let f: Box<dyn ImplementationFactory> = match backend {
                "cuda" => Box::new(CudaFactory::with_faults(
                    catalog::quadro_p5000(),
                    plan.clone(),
                )),
                "opencl-gpu" => Box::new(OpenClGpuFactory::with_faults(
                    catalog::radeon_r9_nano(),
                    plan.clone(),
                )),
                _ => Box::new(OpenClX86Factory::with_threads(2, 128).with_fault_plan(plan.clone())),
            };
            let mut inst = match f.create(&config(&case), Flags::PRECISION_DOUBLE, Flags::NONE) {
                Ok(i) => i,
                Err(e) => return format!("create: {e}"),
            };
            match try_drive(inst.as_mut(), &case) {
                Ok(lnl) => format!("ok: {lnl:.12}"),
                Err(e) => format!("drive: {e}"),
            }
        };
        let a = outcome(&plan);
        let b = outcome(&plan);
        assert_eq!(
            a, b,
            "{backend}: same seed must give the same fault pattern"
        );
        // A different seed perturbs the probabilistic draw stream.
        let other = FaultPlan::new(100).with_fault(
            FaultKind::KernelLaunch,
            true,
            Schedule::Probability(0.15),
        );
        let c = outcome(&other);
        let d = outcome(&other);
        assert_eq!(c, d, "{backend}");
    }
}

#[test]
fn fault_directory_routes_plans_by_device_name() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(3).with_fault(FaultKind::Allocation, false, Schedule::AtCall(1)),
    );
    let mut m = beagle_core::ImplementationManager::new();
    beagle_accel::register_accel_factories_with_faults(&mut m, &faults);
    let case = case();
    // Requiring CUDA forces the faulted P5000; creation fails there but the
    // manager falls back to the next eligible factory when unconstrained.
    let err = beagle_core::InstanceSpec::with_config(config(&case))
        .require(Flags::FRAMEWORK_CUDA)
        .instantiate(&m);
    assert!(err.is_err(), "only the faulted device offers CUDA");
    let inst = beagle_core::InstanceSpec::with_config(config(&case))
        .instantiate(&m)
        .expect("fallback must find a healthy implementation");
    assert!(
        !inst.details().implementation_name.starts_with("CUDA"),
        "fallback must skip the dead CUDA device, got {}",
        inst.details().implementation_name
    );
}
