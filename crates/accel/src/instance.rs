//! The accelerator instance: one implementation, two frameworks, two
//! hardware-specific kernel variants.
//!
//! [`AccelInstance`] is generic over the framework [`Dialect`] (CUDA /
//! OpenCL) — the paper's "single internal interface… which, in turn, has an
//! implementation available for each framework" — and selects between the
//! GPU kernel variant (simulated device, roofline-timed) and the x86 kernel
//! variant (real execution on host threads, wall-clock timed) based on the
//! execution mode it was created with.

use std::sync::Arc;
use std::time::Duration;

use beagle_core::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use beagle_core::buffers::{ChildOperand, InstanceBuffers};
use beagle_core::error::{BeagleError, Result};
use beagle_core::obs::{self, EventKind, KernelClass, Recorder};
use beagle_core::ops::Operation;
use beagle_core::real::{widen_slice, Real};

use beagle_cpu::pool::ThreadPool;

use crate::device::{DeviceSpec, SimClock, PCIE_GBS};
use crate::dialect::Dialect;
use crate::fault::{FaultAction, FaultInjector, FaultSite};
use crate::grid::{plan_gpu, plan_x86, WorkGroupPlan};
use crate::kernels::gpu::{partials_kernel, rescale_kernel, PartialsArgs};
use crate::kernels::integrate::{integrate_edge_kernel, integrate_root_kernel, sum_sites_kernel};
use crate::kernels::x86;
use crate::kernels::Operand;
use crate::perf::PerfModel;

/// How kernels execute and how time is accounted.
pub enum ExecMode {
    /// Simulated GPU: functional host execution, modeled device time.
    SimulatedGpu,
    /// OpenCL-x86: genuine parallel execution on host threads, wall-clock
    /// timing. `work_group_patterns` is the Table V tuning knob.
    RealX86 {
        /// Worker pool ("compute units" after device fission).
        pool: Arc<ThreadPool>,
        /// Patterns per work-group (256 default).
        work_group_patterns: usize,
    },
}

/// A BEAGLE instance on a (simulated) accelerator.
pub struct AccelInstance<T: Real, D: Dialect> {
    bufs: InstanceBuffers<T>,
    spec: DeviceSpec,
    perf: PerfModel,
    clock: SimClock,
    mode: ExecMode,
    plan: WorkGroupPlan,
    fma_enabled: bool,
    details: InstanceDetails,
    fault: Option<FaultInjector>,
    /// Per-launch watchdog budget; `None` means the driver default
    /// ([`beagle_core::Deadline::DRIVER_DEFAULT`]). Set through
    /// [`BeagleInstance::set_deadline`].
    watchdog: Option<beagle_core::Deadline>,
    /// Kernel timers/counters + event journal; disabled unless the instance
    /// was created with [`beagle_core::Flags::INSTANCE_STATS`].
    recorder: Recorder,
    _dialect: std::marker::PhantomData<D>,
}

impl<T: Real, D: Dialect> AccelInstance<T, D> {
    /// Create an instance on `spec` with the given execution mode.
    pub fn new(
        config: InstanceConfig,
        spec: DeviceSpec,
        mode: ExecMode,
        details: InstanceDetails,
    ) -> Result<Self> {
        Self::with_fault_injector(config, spec, mode, details, None)
    }

    /// Create an instance with an optional fault injector attached: every
    /// allocation, transfer, and kernel launch then passes a fault
    /// checkpoint (see [`crate::fault`]).
    pub fn with_fault_injector(
        config: InstanceConfig,
        spec: DeviceSpec,
        mode: ExecMode,
        details: InstanceDetails,
        mut fault: Option<FaultInjector>,
    ) -> Result<Self> {
        // Creation compiles kernels and allocates all device buffers — the
        // first checkpoint a faulty device can fail at.
        if let Some(inj) = fault.as_mut() {
            if let FaultAction::Fail(e) = inj.on_call(FaultSite::Allocation) {
                return Err(e);
            }
        }
        let bufs = InstanceBuffers::<T>::new(config)?;
        // Device-memory capacity check: partials + matrices + scale buffers
        // must fit in global memory (the R9 Nano's 4 GB is a real limit the
        // paper's users hit).
        let elem = std::mem::size_of::<T>();
        let needed = config.partials_buffer_count * config.partials_len() * elem
            + config.matrix_buffer_count * config.matrix_len() * elem
            + config.scale_buffer_count * config.pattern_count * elem;
        let capacity = (spec.memory_gb * 1e9) as usize;
        if needed > capacity {
            return Err(BeagleError::ResourceExhausted {
                what: format!(
                    "device memory on {}: problem needs {needed} bytes, capacity {capacity}",
                    spec.name
                ),
            });
        }
        let plan = match &mode {
            ExecMode::SimulatedGpu => plan_gpu(&spec, config.state_count, elem),
            ExecMode::RealX86 {
                work_group_patterns,
                ..
            } => plan_x86(*work_group_patterns),
        };
        // The dialect says whether the *device* would fuse; for the
        // OpenCL-x86 mode the kernels genuinely execute on the host, so the
        // claim must also hold for the host CPU (and respect the
        // BEAGLE_FORCE_SCALAR override used for A/B comparisons).
        let fma_enabled = D::fma_enabled(&spec)
            && (!matches!(mode, ExecMode::RealX86 { .. })
                || beagle_cpu::simd::host_fma_available());
        Ok(Self {
            bufs,
            perf: PerfModel::new(spec.clone()),
            spec,
            clock: SimClock::default(),
            mode,
            plan,
            fma_enabled,
            details,
            fault,
            watchdog: None,
            recorder: Recorder::disabled(),
            _dialect: std::marker::PhantomData,
        })
    }

    /// Turn on kernel statistics and the event journal for this instance.
    /// Called by factories when the client asked for
    /// [`beagle_core::Flags::INSTANCE_STATS`].
    pub fn enable_statistics(&mut self) {
        self.recorder = Recorder::new(true);
        let device = self.spec.name;
        let mode = match &self.mode {
            ExecMode::SimulatedGpu => "gpu-simulated".to_string(),
            ExecMode::RealX86 {
                pool,
                work_group_patterns,
            } => {
                format!(
                    "x86 threads={} wg_patterns={work_group_patterns}",
                    pool.thread_count()
                )
            }
        };
        self.recorder.event(EventKind::DispatchSelected, || {
            format!("framework={} device={device} mode={mode}", D::NAME)
        });
    }

    /// Pass one fault checkpoint. `Ok(true)` means "proceed but corrupt the
    /// result" (silent-corruption faults return success codes).
    fn inject(&mut self, site: FaultSite) -> Result<bool> {
        let Some(inj) = self.fault.as_mut() else {
            return Ok(false);
        };
        match inj.on_call(site) {
            FaultAction::Proceed => Ok(false),
            FaultAction::Corrupt => {
                self.recorder.event(EventKind::FaultInjected, || {
                    format!("site={site:?} action=corrupt")
                });
                Ok(true)
            }
            FaultAction::Fail(e) => {
                self.recorder.event(EventKind::FaultInjected, || {
                    format!("site={site:?} action=fail error={e}")
                });
                Err(e)
            }
            FaultAction::Slow(factor) => {
                // Throughput skew: all modeled time from here on is charged
                // at the throttled rate. Only meaningful for simulated
                // devices — the wall clock of a real back-end cannot be
                // stretched retroactively.
                self.recorder.event(EventKind::FaultInjected, || {
                    format!("site={site:?} action=slowdown factor={factor}")
                });
                self.clock.set_scale(factor);
                Ok(false)
            }
            FaultAction::Stall(delay) => {
                let budget = self.watchdog.unwrap_or_default().budget();
                if delay >= budget {
                    // The call will not finish inside the budget: the
                    // watchdog cancels it at the deadline. The device spent
                    // the whole budget hung before the cancel.
                    if self.is_simulated() {
                        self.clock.advance(budget);
                    }
                    self.recorder.event(EventKind::WatchdogTimeout, || {
                        format!("site={site:?} stall={delay:?} budget={budget:?}")
                    });
                    let inj = self.fault.as_ref().expect("injector produced the stall");
                    Err(inj.timeout_error(site, budget))
                } else {
                    // Slow but under budget: the call completes late.
                    self.recorder.event(EventKind::FaultInjected, || {
                        format!("site={site:?} action=stall delay={delay:?}")
                    });
                    if self.is_simulated() {
                        self.clock.advance(delay);
                    } else {
                        std::thread::sleep(delay);
                    }
                    Ok(false)
                }
            }
        }
    }

    /// The error to surface when a NaN traces back to injected corruption
    /// rather than genuine numerics.
    fn corruption_err(&self) -> Option<BeagleError> {
        self.fault
            .as_ref()
            .filter(|inj| inj.corruption_detected())
            .map(|inj| inj.corruption_error())
    }

    /// Simulate flaky VRAM: overwrite a partials buffer with NaN.
    fn poison_partials(&mut self, buffer: usize) {
        if let Some(p) = self.bufs.partials[buffer].as_mut() {
            p.fill(T::from_f64(f64::NAN));
        }
    }

    /// The device this instance runs on.
    pub fn device(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The kernel launch geometry in use.
    pub fn plan(&self) -> &WorkGroupPlan {
        &self.plan
    }

    fn is_simulated(&self) -> bool {
        matches!(self.mode, ExecMode::SimulatedGpu)
    }

    fn charge_transfer(&mut self, bytes: usize) {
        if self.is_simulated() {
            self.clock
                .advance(Duration::from_secs_f64(bytes as f64 / (PCIE_GBS * 1e9)));
        }
    }

    fn operand<'a>(bufs: &'a InstanceBuffers<T>, buffer: usize) -> Operand<'a, T> {
        match bufs.child_operand(buffer) {
            ChildOperand::Partials(p) => Operand::Partials(p),
            ChildOperand::States(s) => Operand::States(s),
        }
    }

    /// One operation on the simulated GPU. The two overhead parameters are
    /// the host-side launch cost charged for the partials kernel and the
    /// optional rescale kernel: the eager path charges the full dialect
    /// overhead for every launch, while the level-batched path (see
    /// `update_partials_by_levels`) submits a whole dependency level to one
    /// stream and so charges the overhead only for the level's first launch.
    fn execute_op_gpu(
        &mut self,
        op: &Operation,
        partials_overhead_us: f64,
        rescale_overhead_us: f64,
    ) {
        let cfg = self.bufs.config;
        let (s, n_pat, n_cat) = (cfg.state_count, cfg.pattern_count, cfg.category_count);
        let mut dest = self.bufs.take_destination(op.destination);
        {
            let c1 = Self::operand(&self.bufs, op.child1);
            let c2 = Self::operand(&self.bufs, op.child2);
            partials_kernel::<D, T>(PartialsArgs {
                dest: &mut dest,
                c1,
                c2,
                m1: &self.bufs.matrices[op.child1_matrix],
                m2: &self.bufs.matrices[op.child2_matrix],
                states: s,
                patterns: n_pat,
                categories: n_cat,
                plan: self.plan,
                fma_enabled: self.fma_enabled,
            });
        }
        // Charge modeled device time for the launch.
        let elem = std::mem::size_of::<T>();
        let groups = self.plan.group_count(n_pat);
        let cost =
            self.perf
                .partials_cost(s, self.plan.padded_patterns(n_pat), n_cat, groups, elem);
        self.clock.advance(self.perf.kernel_time(
            &cost,
            s,
            elem == 8,
            self.fma_enabled,
            partials_overhead_us,
        ));

        if let Some(si) = op.dest_scale_write {
            let mut scale = std::mem::take(&mut self.bufs.scale_buffers[si]);
            rescale_kernel(&mut dest, &mut scale, s, n_pat, n_cat);
            self.bufs.scale_buffers[si] = scale;
            let cost = self.perf.integrate_cost(s, n_pat, n_cat, elem);
            self.clock.advance(self.perf.kernel_time(
                &cost,
                s,
                elem == 8,
                self.fma_enabled,
                rescale_overhead_us,
            ));
        }
        self.bufs.restore_destination(op.destination, dest);
    }

    /// Validate an operation list the way `update_partials` does.
    fn validate_operations(&self, operations: &[Operation]) -> Result<()> {
        let mut produced = std::collections::HashSet::new();
        for op in operations {
            self.bufs.check_operation_indices(op)?;
            for child in [op.child1, op.child2] {
                let exists = self.bufs.partials[child].is_some()
                    || self.bufs.tip_states[child].is_some()
                    || produced.contains(&child);
                if !exists {
                    return Err(BeagleError::InvalidConfiguration(format!(
                        "operation reads buffer {child} before it was computed"
                    )));
                }
            }
            produced.insert(op.destination);
        }
        Ok(())
    }

    /// One operation on the real-execution x86 device: work-groups run as
    /// pool tasks, exactly `work_group_patterns` patterns each (padding is
    /// inherent to the last group).
    fn execute_op_x86(&mut self, op: &Operation) {
        let ExecMode::RealX86 {
            pool,
            work_group_patterns,
        } = &self.mode
        else {
            unreachable!("execute_op_x86 requires x86 mode")
        };
        let cfg = self.bufs.config;
        let (s, n_pat, n_cat) = (cfg.state_count, cfg.pattern_count, cfg.category_count);
        let wg = *work_group_patterns;
        let groups: Vec<(usize, usize)> = (0..n_pat.div_ceil(wg))
            .map(|g| (g * wg, ((g + 1) * wg).min(n_pat)))
            .collect();

        let mut dest = self.bufs.take_destination(op.destination);
        let mut scale = op
            .dest_scale_write
            .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
        {
            let bufs = &self.bufs;
            let c1 = Self::operand(bufs, op.child1);
            let c2 = Self::operand(bufs, op.child2);
            let m1 = &bufs.matrices[op.child1_matrix];
            let m2 = &bufs.matrices[op.child2_matrix];
            let fma_enabled = self.fma_enabled;

            // Split dest (and scale) into per-(group, category) blocks.
            let mut per_group_blocks: Vec<Vec<&mut [T]>> = (0..groups.len())
                .map(|_| Vec::with_capacity(n_cat))
                .collect();
            for cat_block in dest.chunks_exact_mut(n_pat * s) {
                let mut rest = cat_block;
                for (gi, &(p0, p1)) in groups.iter().enumerate() {
                    let (chunk, r) = rest.split_at_mut((p1 - p0) * s);
                    per_group_blocks[gi].push(chunk);
                    rest = r;
                }
            }
            let mut scale_chunks: Vec<Option<&mut [T]>> = match scale.as_deref_mut() {
                Some(sc) => {
                    let mut rest = sc;
                    let mut out = Vec::with_capacity(groups.len());
                    for &(p0, p1) in &groups {
                        let (chunk, r) = rest.split_at_mut(p1 - p0);
                        out.push(Some(chunk));
                        rest = r;
                    }
                    out
                }
                None => groups.iter().map(|_| None).collect(),
            };

            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = per_group_blocks
                .into_iter()
                .zip(groups.iter().copied())
                .zip(scale_chunks.drain(..))
                .map(|((mut blocks, (p0, p1)), scale_chunk)| {
                    Box::new(move || {
                        x86::partials_group::<D, T>(
                            &mut blocks,
                            c1,
                            c2,
                            m1,
                            m2,
                            s,
                            n_pat,
                            p0,
                            p1,
                            fma_enabled,
                        );
                        if let Some(sc) = scale_chunk {
                            x86::rescale_group(&mut blocks, sc, s);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks);
        }
        let n_groups = groups.len() as u64;
        self.recorder.tally(KernelClass::PoolDispatch, n_groups, 0);
        if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
            self.bufs.scale_buffers[si] = sc;
        }
        self.bufs.restore_destination(op.destination, dest);
    }

    /// True when buffer `b` holds compact tip states (and no expanded
    /// partials) — the same classification the kernels dispatch on.
    fn is_state_operand(&self, b: usize) -> bool {
        self.bufs.partials[b].is_none() && self.bufs.tip_states[b].is_some()
    }

    /// Attribute one `update_partials`-family call's measured wall time and
    /// modeled device time across the partials kernel classes, split by
    /// each class's share of the operation list.
    fn record_partials_call(
        &mut self,
        operations: &[Operation],
        wall: std::time::Duration,
        modeled: Duration,
    ) {
        let mut counts = [0u64; 3];
        for op in operations {
            let idx = match (
                self.is_state_operand(op.child1),
                self.is_state_operand(op.child2),
            ) {
                (false, false) => 0,
                (true, true) => 2,
                _ => 1,
            };
            counts[idx] += 1;
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return;
        }
        let cfg = &self.bufs.config;
        let bytes_per_op = (3 * cfg.partials_len() * std::mem::size_of::<T>()) as u64;
        let classes = [
            KernelClass::PartialsPP,
            KernelClass::PartialsSP,
            KernelClass::PartialsSS,
        ];
        for (i, class) in classes.into_iter().enumerate() {
            if counts[i] == 0 {
                continue;
            }
            let share = counts[i] as f64 / total as f64;
            self.recorder
                .tally(class, counts[i], counts[i] * bytes_per_op);
            self.recorder.add_wall(class, wall.mul_f64(share));
            self.recorder.add_modeled(class, modeled.mul_f64(share));
        }
    }

    /// Modeled device time spent since `before` (zero for the x86 device,
    /// whose clock never advances).
    fn modeled_since(&self, before: Duration) -> Duration {
        self.clock.elapsed().saturating_sub(before)
    }
}

impl<T: Real, D: Dialect> BeagleInstance for AccelInstance<T, D> {
    fn details(&self) -> &InstanceDetails {
        &self.details
    }

    fn config(&self) -> &InstanceConfig {
        &self.bufs.config
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs.set_tip_states(tip, states)?;
        self.charge_transfer(states.len() * 4);
        Ok(())
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs.set_tip_partials(tip, partials)?;
        self.charge_transfer(partials.len() * std::mem::size_of::<T>());
        Ok(())
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs.set_partials(buffer, partials)?;
        self.charge_transfer(partials.len() * std::mem::size_of::<T>());
        Ok(())
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        // Download cost is not charged here because &self; the benchmark
        // harness never reads partials back on the hot path (the BEAGLE
        // design goal of minimizing transfers).
        self.bufs.get_partials(buffer)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs.set_pattern_weights(weights)?;
        self.charge_transfer(weights.len() * std::mem::size_of::<T>());
        Ok(())
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs.set_state_frequencies(index, frequencies)
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs.set_category_rates(rates)
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs.set_category_weights(index, weights)
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs
            .set_eigen_decomposition(index, vectors, inverse_vectors, values)?;
        self.charge_transfer((vectors.len() + inverse_vectors.len() + values.len()) * 8);
        Ok(())
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        let sw = self.recorder.start();
        let dev0 = self.clock.elapsed();
        let corrupt = self.inject(FaultSite::KernelLaunch)?;
        // Matrix exponentiation runs as a device kernel; the shared helper
        // computes the same values the kernel would.
        self.bufs
            .update_transition_matrices(eigen_index, matrix_indices, branch_lengths)?;
        if corrupt {
            for &mi in matrix_indices {
                self.bufs.matrices[mi].fill(T::from_f64(f64::NAN));
            }
        }
        if self.is_simulated() {
            let cfg = self.bufs.config;
            let cost = self.perf.matrices_cost(
                cfg.state_count,
                cfg.category_count,
                matrix_indices.len(),
                std::mem::size_of::<T>(),
            );
            self.clock.advance(self.perf.kernel_time(
                &cost,
                cfg.state_count,
                std::mem::size_of::<T>() == 8,
                self.fma_enabled,
                D::launch_overhead_us(),
            ));
        }
        let bytes = (matrix_indices.len()
            * self.bufs.config.matrix_len()
            * std::mem::size_of::<T>()) as u64;
        let modeled = self.modeled_since(dev0);
        self.recorder
            .add_modeled(KernelClass::TransitionMatrices, modeled);
        self.recorder.finish(
            sw,
            KernelClass::TransitionMatrices,
            matrix_indices.len() as u64,
            bytes,
        );
        Ok(())
    }

    fn update_transition_derivatives(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        d1_indices: &[usize],
        d2_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        let sw = self.recorder.start();
        let dev0 = self.clock.elapsed();
        let corrupt = self.inject(FaultSite::KernelLaunch)?;
        self.bufs.update_transition_derivatives(
            eigen_index,
            matrix_indices,
            d1_indices,
            d2_indices,
            branch_lengths,
        )?;
        if corrupt {
            for &mi in matrix_indices {
                self.bufs.matrices[mi].fill(T::from_f64(f64::NAN));
            }
        }
        if self.is_simulated() {
            // Three matrices per branch instead of one.
            let cfg = self.bufs.config;
            let cost = self.perf.matrices_cost(
                cfg.state_count,
                cfg.category_count,
                3 * matrix_indices.len(),
                std::mem::size_of::<T>(),
            );
            self.clock.advance(self.perf.kernel_time(
                &cost,
                cfg.state_count,
                std::mem::size_of::<T>() == 8,
                self.fma_enabled,
                D::launch_overhead_us(),
            ));
        }
        let modeled = self.modeled_since(dev0);
        self.recorder
            .add_modeled(KernelClass::TransitionMatrices, modeled);
        self.recorder.finish(
            sw,
            KernelClass::TransitionMatrices,
            3 * matrix_indices.len() as u64,
            0,
        );
        Ok(())
    }

    fn integrate_edge_derivatives(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        d1_id: BufferId,
        d2_id: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<(f64, f64, f64)> {
        let sw = self.recorder.start();
        let dev0 = self.clock.elapsed();
        let parent_buffer = parent.index();
        let child_buffer = child.index();
        let matrix_index = matrix.index();
        let d1_matrix = d1_id.index();
        let d2_matrix = d2_id.index();
        let category_weights_index = category_weights.index();
        let frequencies_index = frequencies.index();
        let cumulative_scale = scaling.index();
        self.inject(FaultSite::KernelLaunch)?;
        use beagle_cpu::kernels as k;
        let cfg = self.bufs.config;
        self.bufs.check_integration_indices(
            &[parent_buffer, child_buffer],
            &[matrix_index, d1_matrix, d2_matrix],
            frequencies_index,
            category_weights_index,
            cumulative_scale,
        )?;
        let parent =
            self.bufs.partials[parent_buffer]
                .as_ref()
                .ok_or(BeagleError::InvalidConfiguration(format!(
                    "parent buffer {parent_buffer} has never been computed"
                )))?;
        let child = match self.bufs.try_child_operand(child_buffer)? {
            ChildOperand::Partials(p) => k::EdgeChild::Partials(p),
            ChildOperand::States(st) => k::EdgeChild::States(st),
        };
        let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());
        // Functionally identical to the device derivative kernel; device
        // time is the triple-read integration cost.
        let (lnl, d1, d2) = k::integrate_edge_derivatives(
            parent,
            child,
            &self.bufs.matrices[matrix_index],
            &self.bufs.matrices[d1_matrix],
            &self.bufs.matrices[d2_matrix],
            &self.bufs.frequencies[frequencies_index],
            &self.bufs.category_weights[category_weights_index],
            &self.bufs.pattern_weights,
            cscale,
            cfg.state_count,
            self.bufs.state_stride,
            cfg.pattern_count,
        );
        if self.is_simulated() {
            let elem = std::mem::size_of::<T>();
            let mut cost = self.perf.integrate_cost(
                cfg.state_count,
                cfg.pattern_count,
                cfg.category_count,
                elem,
            );
            cost.flops *= 3.0;
            cost.bytes *= 3.0;
            self.clock.advance(self.perf.kernel_time(
                &cost,
                cfg.state_count,
                elem == 8,
                self.fma_enabled,
                D::launch_overhead_us(),
            ));
        }
        let modeled = self.modeled_since(dev0);
        self.recorder
            .add_modeled(KernelClass::EdgeIntegrate, modeled);
        self.recorder
            .finish(sw, KernelClass::EdgeIntegrate, cfg.pattern_count as u64, 0);
        if lnl.is_nan() {
            if let Some(e) = self.corruption_err() {
                return Err(e);
            }
            return Err(BeagleError::NumericalFailure(
                "edge derivative log-likelihood is NaN".into(),
            ));
        }
        Ok((lnl, d1, d2))
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.inject(FaultSite::Copy)?;
        self.bufs.set_transition_matrix(index, matrix)?;
        self.charge_transfer(matrix.len() * std::mem::size_of::<T>());
        Ok(())
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.bufs.get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        self.validate_operations(operations)?;
        let t0 = self.recorder.is_enabled().then(std::time::Instant::now);
        self.recorder.event(EventKind::OperationBegin, || {
            format!("update_partials ops={}", operations.len())
        });
        let dev0 = self.clock.elapsed();
        for op in operations {
            let corrupt = self.inject(FaultSite::KernelLaunch)?;
            if self.is_simulated() {
                let overhead = D::launch_overhead_us();
                self.execute_op_gpu(op, overhead, overhead);
            } else {
                self.execute_op_x86(op);
            }
            if corrupt {
                self.poison_partials(op.destination);
            }
        }
        if let Some(t0) = t0 {
            let modeled = self.modeled_since(dev0);
            self.record_partials_call(operations, t0.elapsed(), modeled);
            self.recorder.event(EventKind::OperationEnd, || {
                format!("update_partials ops={}", operations.len())
            });
        }
        Ok(())
    }

    fn update_partials_by_levels(&mut self, levels: &[Vec<Operation>]) -> Result<()> {
        let flat: Vec<Operation> = levels.iter().flatten().copied().collect();
        self.validate_operations(&flat)?;
        let t0 = self.recorder.is_enabled().then(std::time::Instant::now);
        self.recorder.event(EventKind::OperationBegin, || {
            format!(
                "update_partials_by_levels ops={} levels={}",
                flat.len(),
                levels.len()
            )
        });
        let dev0 = self.clock.elapsed();
        if !self.is_simulated() {
            // The x86 device executes for real on host threads; there is no
            // launch-overhead model to batch away.
            for op in &flat {
                let corrupt = self.inject(FaultSite::KernelLaunch)?;
                self.execute_op_x86(op);
                if corrupt {
                    self.poison_partials(op.destination);
                }
            }
        } else {
            // Batched submission: each dependency level goes to one simulated
            // stream, so the host pays the launch overhead once per level — the
            // per-op kernel (and any rescale) rides the same submission. Fault
            // checkpoints stay per-launch, matching the eager schedule.
            for level in levels {
                for (i, op) in level.iter().enumerate() {
                    let corrupt = self.inject(FaultSite::KernelLaunch)?;
                    let overhead = if i == 0 { D::launch_overhead_us() } else { 0.0 };
                    self.execute_op_gpu(op, overhead, 0.0);
                    if corrupt {
                        self.poison_partials(op.destination);
                    }
                }
            }
        }
        if let Some(t0) = t0 {
            let modeled = self.modeled_since(dev0);
            self.record_partials_call(&flat, t0.elapsed(), modeled);
            self.recorder.event(EventKind::OperationEnd, || {
                format!("update_partials_by_levels ops={}", flat.len())
            });
        }
        Ok(())
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        let sw = self.recorder.start();
        self.inject(FaultSite::KernelLaunch)?;
        let r = self.bufs.reset_scale_factors(cumulative);
        self.recorder.finish(sw, KernelClass::Rescale, 1, 0);
        r
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        let sw = self.recorder.start();
        self.inject(FaultSite::KernelLaunch)?;
        let r = self
            .bufs
            .accumulate_scale_factors(scale_indices, cumulative);
        self.recorder
            .finish(sw, KernelClass::Rescale, scale_indices.len() as u64, 0);
        r
    }

    fn integrate_root(
        &mut self,
        root_id: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let sw = self.recorder.start();
        let dev0 = self.clock.elapsed();
        let root_buffer = root_id.index();
        let category_weights_index = category_weights.index();
        let frequencies_index = frequencies.index();
        let cumulative_scale = scaling.index();
        self.inject(FaultSite::KernelLaunch)?;
        let cfg = self.bufs.config;
        self.bufs.check_integration_indices(
            &[root_buffer],
            &[],
            frequencies_index,
            category_weights_index,
            cumulative_scale,
        )?;
        let root =
            self.bufs.partials[root_buffer]
                .take()
                .ok_or(BeagleError::InvalidConfiguration(format!(
                    "root buffer {root_buffer} has never been computed"
                )))?;
        let mut site_lnl = std::mem::take(&mut self.bufs.site_log_likelihoods);
        {
            let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());
            integrate_root_kernel::<D, T>(
                &mut site_lnl,
                &root,
                &self.bufs.frequencies[frequencies_index],
                &self.bufs.category_weights[category_weights_index],
                cscale,
                cfg.state_count,
                cfg.pattern_count,
                self.fma_enabled,
            );
        }
        let total = sum_sites_kernel(&site_lnl, &self.bufs.pattern_weights);
        self.bufs.site_log_likelihoods = site_lnl;
        self.bufs.partials[root_buffer] = Some(root);

        if self.is_simulated() {
            let elem = std::mem::size_of::<T>();
            let cost = self.perf.integrate_cost(
                cfg.state_count,
                cfg.pattern_count,
                cfg.category_count,
                elem,
            );
            self.clock.advance(self.perf.kernel_time(
                &cost,
                cfg.state_count,
                elem == 8,
                self.fma_enabled,
                D::launch_overhead_us(),
            ));
            // Only the scalar total is transferred back.
            self.charge_transfer(8);
        }
        let modeled = self.modeled_since(dev0);
        self.recorder
            .add_modeled(KernelClass::RootIntegrate, modeled);
        self.recorder
            .finish(sw, KernelClass::RootIntegrate, cfg.pattern_count as u64, 0);
        if total.is_nan() {
            // A NaN after an injected silent-corruption fault is device
            // damage, not numerics: report it as such so failover (not
            // rescaling) handles it.
            if let Some(e) = self.corruption_err() {
                return Err(e);
            }
            return Err(BeagleError::NumericalFailure(
                "root log-likelihood is NaN (consider enabling scaling)".into(),
            ));
        }
        Ok(total)
    }

    fn integrate_edge(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let sw = self.recorder.start();
        let dev0 = self.clock.elapsed();
        let parent_buffer = parent.index();
        let child_buffer = child.index();
        let matrix_index = matrix.index();
        let category_weights_index = category_weights.index();
        let frequencies_index = frequencies.index();
        let cumulative_scale = scaling.index();
        self.inject(FaultSite::KernelLaunch)?;
        let cfg = self.bufs.config;
        self.bufs.check_integration_indices(
            &[parent_buffer, child_buffer],
            &[matrix_index],
            frequencies_index,
            category_weights_index,
            cumulative_scale,
        )?;
        let parent =
            self.bufs.partials[parent_buffer]
                .as_ref()
                .ok_or(BeagleError::InvalidConfiguration(format!(
                    "parent buffer {parent_buffer} has never been computed"
                )))?;
        let child = match self.bufs.try_child_operand(child_buffer)? {
            ChildOperand::Partials(p) => Operand::Partials(p),
            ChildOperand::States(s) => Operand::States(s),
        };
        let mut site_lnl = vec![T::ZERO; cfg.pattern_count];
        let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());
        integrate_edge_kernel::<D, T>(
            &mut site_lnl,
            parent,
            child,
            &self.bufs.matrices[matrix_index],
            &self.bufs.frequencies[frequencies_index],
            &self.bufs.category_weights[category_weights_index],
            cscale,
            cfg.state_count,
            cfg.pattern_count,
            self.fma_enabled,
        );
        let total = sum_sites_kernel(&site_lnl, &self.bufs.pattern_weights);
        self.bufs.site_log_likelihoods = site_lnl;
        if self.is_simulated() {
            let elem = std::mem::size_of::<T>();
            let cost = self.perf.integrate_cost(
                cfg.state_count,
                cfg.pattern_count,
                cfg.category_count,
                elem,
            );
            self.clock.advance(self.perf.kernel_time(
                &cost,
                cfg.state_count,
                elem == 8,
                self.fma_enabled,
                D::launch_overhead_us(),
            ));
        }
        let modeled = self.modeled_since(dev0);
        self.recorder
            .add_modeled(KernelClass::EdgeIntegrate, modeled);
        self.recorder
            .finish(sw, KernelClass::EdgeIntegrate, cfg.pattern_count as u64, 0);
        if total.is_nan() {
            if let Some(e) = self.corruption_err() {
                return Err(e);
            }
            return Err(BeagleError::NumericalFailure(
                "edge log-likelihood is NaN (consider enabling scaling)".into(),
            ));
        }
        Ok(total)
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        Ok(widen_slice(&self.bufs.site_log_likelihoods))
    }

    fn simulated_time(&self) -> Option<Duration> {
        self.is_simulated().then(|| self.clock.elapsed())
    }

    fn reset_simulated_time(&mut self) {
        self.clock.reset();
    }

    fn statistics(&self) -> Option<obs::InstanceStats> {
        self.recorder.stats()
    }

    fn take_journal(&mut self) -> Vec<obs::Event> {
        self.recorder.take_journal()
    }

    fn set_deadline(&mut self, deadline: Option<beagle_core::Deadline>) {
        self.watchdog = deadline;
    }
}
