//! Work-group geometry for the accelerator kernels.
//!
//! Encodes the paper's two kernel organizations:
//!
//! * **GPU variant** — one work-item per (pattern, state) entry of the
//!   partial-likelihood array (Fig. 2), with the two transition matrices
//!   staged in local memory shared by the work-group. The number of patterns
//!   per work-group is limited by local-memory capacity, which is exactly
//!   the adaptation the paper describes for AMD devices under codon models
//!   (§VII-B1: "we had to reduce the number of sequence patterns computed
//!   per work-group… AMD devices have less of this memory than NVIDIA").
//!
//! * **x86 variant** — one work-item per *pattern*, looping over the state
//!   space inside the work-item ("the key optimization was to have each
//!   thread of execution do more work", §VII-B2), no local memory, and a
//!   work-group size of 256 patterns (Table V: smallest size with peak
//!   throughput, minimizing pattern padding).

use crate::device::DeviceSpec;

/// Hard cap on patterns per GPU work-group (64 patterns × 4 states = 256
/// work-items for nucleotide kernels, a typical GPU block size).
pub const MAX_PATTERNS_PER_GPU_GROUP: usize = 64;

/// Work-group size of the OpenCL-x86 kernel variant, in patterns (Table V).
pub const X86_WORK_GROUP_PATTERNS: usize = 256;

/// Geometry of one partials-kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkGroupPlan {
    /// Patterns computed per work-group.
    pub patterns_per_group: usize,
    /// Work-items per work-group.
    pub items_per_group: usize,
    /// Whether the transition matrices fit in (and are staged to) local
    /// memory; when false they are re-read from global memory per tile.
    pub matrices_in_local: bool,
}

impl WorkGroupPlan {
    /// Number of work-groups needed for `patterns` patterns.
    pub fn group_count(&self, patterns: usize) -> usize {
        patterns.div_ceil(self.patterns_per_group)
    }

    /// Patterns after padding to a whole number of work-groups — the padding
    /// the paper minimizes by preferring the smallest peak-throughput
    /// work-group size.
    pub fn padded_patterns(&self, patterns: usize) -> usize {
        self.group_count(patterns) * self.patterns_per_group
    }
}

/// Plan the GPU kernel variant for `states` states at `elem_bytes` precision
/// on `device`, under its local-memory budget.
///
/// Local memory holds the two staged transition matrices of the current
/// category (`2·s²·elem_bytes`) plus a per-pattern staging area for the two
/// child partials (`2·s·elem_bytes` each).
pub fn plan_gpu(device: &DeviceSpec, states: usize, elem_bytes: usize) -> WorkGroupPlan {
    let local = device.local_mem_bytes();
    let matrices = 2 * states * states * elem_bytes;
    let per_pattern = 2 * states * elem_bytes;
    let (matrices_in_local, budget) = if matrices + per_pattern <= local {
        (true, local - matrices)
    } else {
        // Matrices do not fit (e.g. codon double precision on 32 KiB AMD
        // LDS): leave them in global memory and use all of local for
        // pattern staging.
        (false, local)
    };
    let patterns_per_group = (budget / per_pattern).clamp(1, MAX_PATTERNS_PER_GPU_GROUP);
    WorkGroupPlan {
        patterns_per_group,
        items_per_group: patterns_per_group * states,
        matrices_in_local,
    }
}

/// Plan the x86 kernel variant: fixed 256-pattern work-groups, one item per
/// pattern, no local memory (§VII-B2: "avoid the explicit use of the local
/// memory address space and allow the OpenCL compiler to manage caching").
pub fn plan_x86(work_group_patterns: usize) -> WorkGroupPlan {
    WorkGroupPlan {
        patterns_per_group: work_group_patterns,
        items_per_group: work_group_patterns,
        matrices_in_local: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::catalog;

    #[test]
    fn amd_codon_gets_fewer_patterns_per_group_than_nvidia() {
        // The §VII-B1 adaptation: AMD (32 KiB LDS) must use smaller
        // work-groups than NVIDIA (48 KiB) for 61-state kernels.
        let amd = plan_gpu(&catalog::radeon_r9_nano(), 61, 4);
        let nv = plan_gpu(&catalog::quadro_p5000(), 61, 4);
        assert!(
            amd.patterns_per_group < nv.patterns_per_group,
            "AMD {} vs NVIDIA {}",
            amd.patterns_per_group,
            nv.patterns_per_group
        );
        assert!(amd.matrices_in_local && nv.matrices_in_local);
    }

    #[test]
    fn codon_double_overflows_amd_local_memory() {
        // 2 × 61² × 8 B ≈ 58 KiB > 32 KiB: matrices stay in global memory.
        let plan = plan_gpu(&catalog::firepro_s9170(), 61, 8);
        assert!(!plan.matrices_in_local);
        assert!(plan.patterns_per_group >= 1);
    }

    #[test]
    fn nucleotide_hits_pattern_cap() {
        let plan = plan_gpu(&catalog::quadro_p5000(), 4, 4);
        assert_eq!(plan.patterns_per_group, MAX_PATTERNS_PER_GPU_GROUP);
        assert_eq!(plan.items_per_group, MAX_PATTERNS_PER_GPU_GROUP * 4);
        assert!(plan.matrices_in_local);
    }

    #[test]
    fn padding_rounds_up() {
        let plan = plan_x86(256);
        assert_eq!(plan.group_count(1000), 4);
        assert_eq!(plan.padded_patterns(1000), 1024);
        assert_eq!(plan.padded_patterns(1024), 1024);
        assert_eq!(plan.group_count(1), 1);
    }

    #[test]
    fn x86_plan_shape() {
        let plan = plan_x86(X86_WORK_GROUP_PATTERNS);
        assert_eq!(plan.items_per_group, 256);
        assert!(!plan.matrices_in_local);
    }
}
