//! Roofline performance model for the simulated GPU devices.
//!
//! Hardware substitution (see DESIGN.md §1): kernels run functionally on the
//! host, while *device time* is modeled from first principles plus a small
//! set of calibration constants fitted to the paper's published numbers.
//!
//! Model per kernel launch:
//!
//! ```text
//! t = launch_overhead
//!   + max(t_mem, t_comp) + OVERLAP_LOSS · min(t_mem, t_comp)
//!
//! t_mem  = bytes / (bandwidth · BW_EFF · ramp)
//! t_comp = flops · fma_penalty / (peak(precision) · eff_c(states) · ramp)
//! ramp   = u / (u + 1),  u = work_items / (cores · LATENCY_HIDING)
//! ```
//!
//! * `ramp` models occupancy: small problems cannot hide memory latency,
//!   which produces the strong throughput-vs-pattern-count scaling of
//!   Fig. 4 and the OpenCL disadvantage at small sizes.
//! * `eff_c(states)` captures that high-state-count kernels achieve a lower
//!   fraction of peak (register pressure, local-memory traffic); fitted to
//!   the paper's nucleotide (≈445 GFLOPS) and codon (≈1324 GFLOPS) peaks on
//!   the Radeon R9 Nano.
//! * The FMA penalty applies when a dialect does *not* enable fused
//!   multiply-add (§VII-B1 / Table IV): unfused kernels spend more issue
//!   slots per madd. Memory-bound kernels barely notice (Table IV single
//!   precision, ≤1.8%); compute-bound ones lose ~10-12% (double precision).

use std::time::Duration;

use crate::device::{DeviceSpec, Vendor};

/// Fraction of peak memory bandwidth achievable by the streaming partials
/// kernels (fitted: 445 GFLOPS at 1.5 flops/byte on a 512 GB/s device).
pub const BW_EFF: f64 = 0.58;

/// Imperfect compute/memory overlap: the smaller of the two times leaks this
/// fraction into the total.
pub const OVERLAP_LOSS: f64 = 0.15;

/// Work-items per core needed to fully hide latency.
pub const LATENCY_HIDING: f64 = 16.0;

/// Double-precision kernels reach a larger fraction of their (much lower)
/// peak than single-precision ones — the instruction mix is the same but DP
/// peak is 1/16 of SP on Fiji, so DP is far from memory-bound (fitted to
/// Table IV: 199 GFLOPS ≈ 0.39 of the R9 Nano's 512 DP GFLOPS).
pub const DP_EFF_BOOST: f64 = 1.40;

/// Extra compute cost factor when fused multiply-add is NOT available
/// (fitted to Table IV's ~10-12% double-precision gain).
pub const FMA_PENALTY: f64 = 1.15;

/// Fraction of per-work-group matrix staging that misses L2 and reaches
/// global memory; the rest is served from cache across work-groups.
pub const MATRIX_L2_MISS: f64 = 0.05;

/// Fraction of theoretical peak compute the partials kernel reaches, by
/// state count and vendor (fitted to Fig. 4 / Table IV).
pub fn compute_efficiency(spec: &DeviceSpec, states: usize) -> f64 {
    match states {
        0..=4 => 0.30,
        5..=20 => 0.22,
        _ => match spec.vendor {
            Vendor::Amd => 0.162,
            Vendor::Nvidia => 0.140,
            Vendor::Intel => 0.150,
        },
    }
}

/// Resource cost of one kernel launch.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelCost {
    /// Floating-point operations (counting one FMA as 2 flops).
    pub flops: f64,
    /// Global-memory bytes moved.
    pub bytes: f64,
    /// Fraction of `flops` that are madd-contractable (0..1).
    pub fma_fraction: f64,
    /// Total work-items launched.
    pub work_items: f64,
}

/// The device-time model.
#[derive(Clone, Debug)]
pub struct PerfModel {
    spec: DeviceSpec,
}

impl PerfModel {
    /// A model for one device.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec }
    }

    /// The modeled device.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Occupancy ramp for a launch of `work_items` items.
    pub fn ramp(&self, work_items: f64) -> f64 {
        let u = work_items / (self.spec.cores as f64 * LATENCY_HIDING);
        u / (u + 1.0)
    }

    /// Modeled execution time of one kernel launch.
    ///
    /// `double` selects the precision peak; `fma_enabled` is the dialect's
    /// FMA policy for this device; `launch_overhead_us` comes from the
    /// framework dialect; `states` picks the compute-efficiency bin.
    pub fn kernel_time(
        &self,
        cost: &KernelCost,
        states: usize,
        double: bool,
        fma_enabled: bool,
        launch_overhead_us: f64,
    ) -> Duration {
        let ramp = self.ramp(cost.work_items).max(1e-6);
        let peak = if double {
            self.spec.dp_gflops
        } else {
            self.spec.sp_gflops
        } * 1e9;
        let mut eff_c = compute_efficiency(&self.spec, states);
        if double {
            eff_c = (eff_c * DP_EFF_BOOST).min(0.85);
        }
        let fma_penalty = if fma_enabled {
            1.0
        } else {
            1.0 + (FMA_PENALTY - 1.0) * cost.fma_fraction
        };
        let t_comp = cost.flops * fma_penalty / (peak * eff_c * ramp);
        let t_mem = cost.bytes / (self.spec.bandwidth_gbs * 1e9 * BW_EFF * ramp);
        let (hi, lo) = if t_comp > t_mem {
            (t_comp, t_mem)
        } else {
            (t_mem, t_comp)
        };
        Duration::from_secs_f64(launch_overhead_us * 1e-6 + hi + OVERLAP_LOSS * lo)
    }

    /// Cost of one partials operation: `padded_patterns` patterns ×
    /// `categories` categories × `states` states, with per-group matrix
    /// traffic when matrices are staged from global memory.
    pub fn partials_cost(
        &self,
        states: usize,
        padded_patterns: usize,
        categories: usize,
        groups: usize,
        elem_bytes: usize,
    ) -> KernelCost {
        let s = states as f64;
        let p = padded_patterns as f64;
        let c = categories as f64;
        // (4s+2) flops per destination entry; all of the 4s part contractable.
        let flops = c * p * s * (4.0 * s + 2.0);
        // Read both children + write destination, plus matrix staging: the
        // first work-group pulls both matrices from global memory, later
        // groups mostly hit L2 (MATRIX_L2_MISS of them reach DRAM).
        let partials_bytes = 3.0 * c * p * s * elem_bytes as f64;
        let matrix_loads = 1.0 + MATRIX_L2_MISS * (groups as f64 - 1.0).max(0.0);
        let matrix_bytes = matrix_loads * c * 2.0 * s * s * elem_bytes as f64;
        KernelCost {
            flops,
            bytes: partials_bytes + matrix_bytes,
            fma_fraction: 4.0 * s / (4.0 * s + 2.0),
            work_items: c * p * s,
        }
    }

    /// Cost of the root-integration kernel (reads the root buffer once,
    /// writes one site likelihood per pattern, then a log+reduce).
    pub fn integrate_cost(
        &self,
        states: usize,
        patterns: usize,
        categories: usize,
        elem_bytes: usize,
    ) -> KernelCost {
        let s = states as f64;
        let p = patterns as f64;
        let c = categories as f64;
        KernelCost {
            flops: c * p * s * 2.0 + p * 10.0,
            bytes: (c * p * s + 2.0 * p) * elem_bytes as f64,
            fma_fraction: 1.0,
            work_items: p,
        }
    }

    /// Cost of computing `n_matrices` transition matrices from the eigen
    /// system (s³ madds per matrix per category).
    pub fn matrices_cost(
        &self,
        states: usize,
        categories: usize,
        n_matrices: usize,
        elem_bytes: usize,
    ) -> KernelCost {
        let s = states as f64;
        let n = n_matrices as f64 * categories as f64;
        KernelCost {
            flops: n * 2.0 * s * s * s,
            bytes: n * (3.0 * s * s + s) * elem_bytes as f64,
            fma_fraction: 1.0,
            work_items: n * s * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::catalog;
    use crate::grid::plan_gpu;

    fn nano_throughput(states: usize, patterns: usize, categories: usize) -> f64 {
        let spec = catalog::radeon_r9_nano();
        let model = PerfModel::new(spec.clone());
        let plan = plan_gpu(&spec, states, 4);
        let padded = plan.padded_patterns(patterns);
        let cost = model.partials_cost(states, padded, categories, plan.group_count(patterns), 4);
        let t = model.kernel_time(&cost, states, false, true, 18.0);
        // Effective throughput uses UNpadded flops, like the harness.
        let s = states as f64;
        let eff_flops = categories as f64 * patterns as f64 * s * (4.0 * s + 2.0);
        eff_flops / t.as_secs_f64() / 1e9
    }

    #[test]
    fn nucleotide_peak_matches_paper_scale() {
        // Paper: 444.92 GFLOPS at 475,081 patterns on the R9 Nano.
        let g = nano_throughput(4, 475_081, 4);
        assert!(
            (g - 445.0).abs() / 445.0 < 0.25,
            "modeled {g} GFLOPS, paper ≈445"
        );
    }

    #[test]
    fn codon_peak_matches_paper_scale() {
        // Paper: 1324.19 GFLOPS at 28,419 codon patterns on the R9 Nano.
        let g = nano_throughput(61, 28_419, 1);
        assert!(
            (g - 1324.0).abs() / 1324.0 < 0.25,
            "modeled {g} GFLOPS, paper ≈1324"
        );
    }

    #[test]
    fn throughput_scales_with_patterns() {
        let small = nano_throughput(4, 100, 4);
        let mid = nano_throughput(4, 10_000, 4);
        let large = nano_throughput(4, 1_000_000, 4);
        assert!(small < mid && mid < large, "{small} < {mid} < {large}");
        assert!(
            small < 30.0,
            "tiny problems are overhead-dominated: {small}"
        );
    }

    #[test]
    fn codon_less_sensitive_to_pattern_count_than_nucleotide() {
        // §VIII-A2: "throughput performance is less sensitive to the number
        // of unique site patterns" for codon models.
        let nuc_ratio = nano_throughput(4, 1_000, 4) / nano_throughput(4, 100_000, 4);
        let codon_ratio = nano_throughput(61, 1_000, 1) / nano_throughput(61, 28_419, 1);
        assert!(
            codon_ratio > nuc_ratio,
            "codon {codon_ratio} vs nuc {nuc_ratio}"
        );
    }

    #[test]
    fn fma_gain_larger_in_double_precision() {
        // Table IV (nucleotide kernel on the R9 Nano): double-precision FMA
        // gain ≈10-12%, single precision ≤1.8%. In the model this falls out
        // of double precision being compute-bound (DP peak is 1/16 of SP on
        // Fiji) while single precision is memory-bound.
        let spec = catalog::radeon_r9_nano();
        let model = PerfModel::new(spec.clone());
        let gain = |double: bool, patterns: usize| {
            let bytes = if double { 8 } else { 4 };
            let plan = plan_gpu(&spec, 4, bytes);
            let padded = plan.padded_patterns(patterns);
            let cost = model.partials_cost(4, padded, 4, plan.group_count(patterns), bytes);
            let with = model
                .kernel_time(&cost, 4, double, true, 18.0)
                .as_secs_f64();
            let without = model
                .kernel_time(&cost, 4, double, false, 18.0)
                .as_secs_f64();
            (without - with) / without
        };
        for patterns in [10_000, 100_000] {
            let dp = gain(true, patterns);
            let sp = gain(false, patterns);
            assert!(dp > sp, "dp gain {dp} must exceed sp gain {sp}");
            assert!(dp > 0.05 && dp < 0.20, "dp gain {dp} in the ~10% band");
            assert!(sp < 0.03, "sp gain {sp} should be small");
        }
    }

    #[test]
    fn ramp_monotone_and_bounded() {
        let model = PerfModel::new(catalog::quadro_p5000());
        let mut prev = 0.0;
        for items in [100.0, 1e4, 1e6, 1e8] {
            let r = model.ramp(items);
            assert!(r > prev && r < 1.0);
            prev = r;
        }
    }
}
