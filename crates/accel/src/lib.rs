//! # beagle-accel
//!
//! The accelerator model of BEAGLE-RS: a single kernel code base shared
//! between (simulated) CUDA and OpenCL frameworks, with hardware-specific
//! variants for GPUs and x86 processors — the architecture of §V–§VII of the
//! ICPP 2017 paper.
//!
//! Because no GPU exists in this environment, GPU devices are *simulated*:
//! kernels execute functionally on the host over an explicit work-group
//! grid, and device time comes from a roofline model parameterized by the
//! paper's Table II specs (see `DESIGN.md` for the substitution argument).
//! The OpenCL-x86 implementation is NOT simulated: it runs on real host
//! threads and is wall-clock timed, as in the paper.
//!
//! * [`dialect`] — the CUDA/OpenCL "preprocessor keyword" abstraction
//! * [`kernels`] — one set of kernels; [`kernels::gpu`] and [`kernels::x86`] variants
//! * [`device`] — simulated devices, memory arena, Table I/II catalog
//! * [`grid`] — work-group planning (local-memory limits, padding)
//! * [`perf`] — the roofline device-time model and its calibration
//! * [`cuda`] / [`opencl`] — framework driver registries (ICD loader model)
//! * [`instance`] / [`factories`] — the BEAGLE API implementation

// Likelihood kernels and small numeric routines are written with explicit
// index loops on purpose: the loop structure mirrors the work-item/work-group
// decomposition the paper describes, and that clarity outweighs iterator style.
#![allow(clippy::needless_range_loop)]

pub mod cuda;
pub mod device;
pub mod dialect;
pub mod factories;
pub mod fault;
pub mod grid;
pub mod instance;
pub mod kernels;
pub mod opencl;
pub mod perf;

pub use device::{catalog, DeviceKind, DeviceSpec, Vendor};
pub use dialect::{CudaDialect, Dialect, OpenClDialect};
pub use factories::{
    register_accel_factories, register_accel_factories_with_faults, CudaFactory, OpenClGpuFactory,
    OpenClX86Factory,
};
pub use fault::{
    FaultAction, FaultDirectory, FaultInjector, FaultKind, FaultPlan, FaultSite, FaultSpec,
    Schedule,
};
pub use instance::{AccelInstance, ExecMode};
pub use perf::PerfModel;
