//! The simulated CUDA framework (Driver-API flavoured).
//!
//! CUDA only enumerates NVIDIA devices. The driver model here is minimal —
//! a device query plus version info — because everything interesting is in
//! the shared kernels and the dialect; that is the point of the paper's
//! design.

use crate::device::{catalog, DeviceSpec, Vendor};
use crate::fault::{FaultDirectory, FaultPlan};

/// The simulated CUDA driver installation.
#[derive(Clone, Debug)]
pub struct CudaDriver {
    /// Reported driver version (the paper's system 1 ran CUDA release 8.0).
    pub version: &'static str,
    devices: Vec<DeviceSpec>,
    faults: FaultDirectory,
}

impl CudaDriver {
    /// Probe the (simulated) system for CUDA support. Returns `None` when no
    /// NVIDIA device is present — the library's plugin loader treats that as
    /// "CUDA implementation unavailable", exactly like system 2 in Table I.
    pub fn probe(available_devices: &[DeviceSpec]) -> Option<Self> {
        Self::probe_with_faults(available_devices, FaultDirectory::new())
    }

    /// Probe with a fault directory attached: instances created on a device
    /// with a plan will inject that plan's faults into every driver call.
    pub fn probe_with_faults(
        available_devices: &[DeviceSpec],
        faults: FaultDirectory,
    ) -> Option<Self> {
        let devices: Vec<DeviceSpec> = available_devices
            .iter()
            .filter(|d| d.vendor == Vendor::Nvidia)
            .cloned()
            .collect();
        if devices.is_empty() {
            None
        } else {
            Some(Self {
                version: "8.0 (simulated)",
                devices,
                faults,
            })
        }
    }

    /// Probe the default simulated system (all catalog devices present).
    pub fn probe_default() -> Option<Self> {
        Self::probe(&catalog::all())
    }

    /// Devices this driver exposes.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The fault plan attached to `device`, if any.
    pub fn fault_plan(&self, device: &str) -> Option<&FaultPlan> {
        self.faults.plan_for(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_sees_only_nvidia() {
        let driver = CudaDriver::probe_default().expect("catalog has an NVIDIA GPU");
        assert!(driver.devices().iter().all(|d| d.vendor == Vendor::Nvidia));
        assert_eq!(driver.devices().len(), 1);
    }

    #[test]
    fn no_nvidia_means_no_cuda() {
        // System 2 of Table I: dual Xeon + AMD FirePro, no NVIDIA → no CUDA.
        let system2 = vec![catalog::firepro_s9170(), catalog::dual_xeon_e5_2680v4()];
        assert!(CudaDriver::probe(&system2).is_none());
    }
}
