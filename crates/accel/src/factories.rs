//! Implementation factories for the accelerator model:
//! `CUDA`, `OpenCL-GPU`, and `OpenCL-x86`.

use std::sync::Arc;

use beagle_core::api::{BeagleInstance, InstanceConfig, InstanceDetails};
use beagle_core::error::Result;
use beagle_core::flags::Flags;
use beagle_core::manager::{ImplementationFactory, ImplementationManager};
use beagle_core::resource::ResourceDescription;

use beagle_cpu::pool::ThreadPool;

use crate::cuda::CudaDriver;
use crate::device::{DeviceKind, DeviceSpec};
use crate::dialect::{CudaDialect, OpenClDialect};
use crate::fault::{FaultDirectory, FaultInjector, FaultPlan};
use crate::grid::X86_WORK_GROUP_PATTERNS;
use crate::instance::{AccelInstance, ExecMode};
use crate::opencl::IcdRegistry;

fn device_flags(spec: &DeviceSpec) -> Flags {
    match spec.kind {
        DeviceKind::Gpu => Flags::PROCESSOR_GPU,
        DeviceKind::Cpu => Flags::PROCESSOR_CPU,
        DeviceKind::ManyCore => Flags::PROCESSOR_PHI,
    }
}

fn resource_for(spec: &DeviceSpec, framework: Flags) -> ResourceDescription {
    ResourceDescription {
        name: spec.name.to_string(),
        description: format!(
            "{} cores, {} GB, {} GB/s, {} SP GFLOPS",
            spec.cores, spec.memory_gb, spec.bandwidth_gbs, spec.sp_gflops
        ),
        support_flags: device_flags(spec)
            | framework
            | Flags::PRECISION_SINGLE
            | Flags::PRECISION_DOUBLE
            | Flags::SCALING_MANUAL,
        default_flags: device_flags(spec) | framework | Flags::PRECISION_SINGLE,
        peak_sp_gflops: spec.sp_gflops,
        bandwidth_gbs: spec.bandwidth_gbs,
    }
}

fn precision_is_single(prefs: Flags, reqs: Flags) -> bool {
    reqs.contains(Flags::PRECISION_SINGLE)
        || (prefs.contains(Flags::PRECISION_SINGLE) && !reqs.contains(Flags::PRECISION_DOUBLE))
}

/// Factory for the CUDA implementation on one NVIDIA device.
pub struct CudaFactory {
    device: DeviceSpec,
    name: String,
    fault_plan: Option<FaultPlan>,
}

impl CudaFactory {
    /// Build for one device (must come from a [`CudaDriver`]).
    pub fn new(device: DeviceSpec) -> Self {
        Self {
            name: format!("CUDA ({})", device.name),
            device,
            fault_plan: None,
        }
    }

    /// Build with a fault plan: every instance created here injects the
    /// plan's faults into its driver calls.
    pub fn with_faults(device: DeviceSpec, plan: FaultPlan) -> Self {
        let mut f = Self::new(device);
        f.fault_plan = Some(plan);
        f
    }

    fn injector(&self) -> Option<FaultInjector> {
        self.fault_plan
            .as_ref()
            .map(|p| FaultInjector::new(p.clone(), self.device.name))
    }
}

impl ImplementationFactory for CudaFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn supported_flags(&self) -> Flags {
        device_flags(&self.device)
            | Flags::FRAMEWORK_CUDA
            | Flags::PRECISION_SINGLE
            | Flags::PRECISION_DOUBLE
            | Flags::SCALING_MANUAL
            | Flags::PATTERN_PADDING
    }

    fn resource(&self) -> ResourceDescription {
        resource_for(&self.device, Flags::FRAMEWORK_CUDA)
    }

    fn priority(&self) -> i32 {
        // BEAGLE orders GPU resources first; CUDA preferred on NVIDIA.
        100
    }

    fn create(
        &self,
        config: &InstanceConfig,
        prefs: Flags,
        reqs: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        let single = precision_is_single(prefs, reqs);
        let details = InstanceDetails {
            implementation_name: self.name.clone(),
            resource_name: self.device.name.to_string(),
            flags: self.supported_flags(),
            thread_count: 1,
        };
        let stats = prefs.contains(Flags::INSTANCE_STATS);
        if single {
            let mut inst = AccelInstance::<f32, CudaDialect>::with_fault_injector(
                *config,
                self.device.clone(),
                ExecMode::SimulatedGpu,
                details,
                self.injector(),
            )?;
            if stats {
                inst.enable_statistics();
            }
            Ok(Box::new(inst))
        } else {
            let mut inst = AccelInstance::<f64, CudaDialect>::with_fault_injector(
                *config,
                self.device.clone(),
                ExecMode::SimulatedGpu,
                details,
                self.injector(),
            )?;
            if stats {
                inst.enable_statistics();
            }
            Ok(Box::new(inst))
        }
    }
}

/// Factory for the OpenCL-GPU implementation on one GPU device.
pub struct OpenClGpuFactory {
    device: DeviceSpec,
    name: String,
    fault_plan: Option<FaultPlan>,
}

impl OpenClGpuFactory {
    /// Build for one GPU device from the ICD registry.
    pub fn new(device: DeviceSpec) -> Self {
        Self {
            name: format!("OpenCL-GPU ({})", device.name),
            device,
            fault_plan: None,
        }
    }

    /// Build with a fault plan attached to the vendor driver.
    pub fn with_faults(device: DeviceSpec, plan: FaultPlan) -> Self {
        let mut f = Self::new(device);
        f.fault_plan = Some(plan);
        f
    }

    fn injector(&self) -> Option<FaultInjector> {
        self.fault_plan
            .as_ref()
            .map(|p| FaultInjector::new(p.clone(), self.device.name))
    }
}

impl ImplementationFactory for OpenClGpuFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn supported_flags(&self) -> Flags {
        device_flags(&self.device)
            | Flags::FRAMEWORK_OPENCL
            | Flags::PRECISION_SINGLE
            | Flags::PRECISION_DOUBLE
            | Flags::SCALING_MANUAL
            | Flags::PATTERN_PADDING
    }

    fn resource(&self) -> ResourceDescription {
        resource_for(&self.device, Flags::FRAMEWORK_OPENCL)
    }

    fn priority(&self) -> i32 {
        90
    }

    fn create(
        &self,
        config: &InstanceConfig,
        prefs: Flags,
        reqs: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        let single = precision_is_single(prefs, reqs);
        let details = InstanceDetails {
            implementation_name: self.name.clone(),
            resource_name: self.device.name.to_string(),
            flags: self.supported_flags(),
            thread_count: 1,
        };
        let stats = prefs.contains(Flags::INSTANCE_STATS);
        if single {
            let mut inst = AccelInstance::<f32, OpenClDialect>::with_fault_injector(
                *config,
                self.device.clone(),
                ExecMode::SimulatedGpu,
                details,
                self.injector(),
            )?;
            if stats {
                inst.enable_statistics();
            }
            Ok(Box::new(inst))
        } else {
            let mut inst = AccelInstance::<f64, OpenClDialect>::with_fault_injector(
                *config,
                self.device.clone(),
                ExecMode::SimulatedGpu,
                details,
                self.injector(),
            )?;
            if stats {
                inst.enable_statistics();
            }
            Ok(Box::new(inst))
        }
    }
}

/// Factory for the OpenCL-x86 implementation on the host CPU: real parallel
/// execution on a worker pool, the paper's §VII-B2 solution.
pub struct OpenClX86Factory {
    threads: usize,
    work_group_patterns: usize,
    pool: parking_lot::Mutex<Option<Arc<ThreadPool>>>,
    fault_plan: Option<FaultPlan>,
}

impl OpenClX86Factory {
    /// Use `threads` "compute units" (OpenCL device fission restricts this,
    /// which is how Fig. 5's scaling sweep is produced) and the given
    /// work-group size in patterns (Table V).
    pub fn with_threads(threads: usize, work_group_patterns: usize) -> Self {
        Self {
            threads: threads.max(1),
            work_group_patterns,
            pool: parking_lot::Mutex::new(None),
            fault_plan: None,
        }
    }

    /// All hardware threads, 256-pattern work-groups (the shipping default).
    pub fn new() -> Self {
        Self::with_threads(beagle_cpu::host_threads(), X86_WORK_GROUP_PATTERNS)
    }

    /// Attach a fault plan (builder style): even the real-execution x86 path
    /// passes every launch/copy call through the injector.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

impl Default for OpenClX86Factory {
    fn default() -> Self {
        Self::new()
    }
}

impl ImplementationFactory for OpenClX86Factory {
    fn name(&self) -> &str {
        "OpenCL-x86"
    }

    fn supported_flags(&self) -> Flags {
        Flags::PROCESSOR_CPU
            | Flags::FRAMEWORK_OPENCL
            | Flags::PRECISION_SINGLE
            | Flags::PRECISION_DOUBLE
            | Flags::SCALING_MANUAL
            | Flags::PATTERN_PADDING
            | Flags::VECTOR_SSE
    }

    fn resource(&self) -> ResourceDescription {
        let mut r = ResourceDescription::host_cpu(self.threads);
        r.name = format!("Host CPU via OpenCL ({} compute units)", self.threads);
        r.support_flags |= Flags::FRAMEWORK_OPENCL | Flags::VECTOR_SSE;
        r
    }

    fn priority(&self) -> i32 {
        50 // above plain CPU threading, below GPUs
    }

    fn create(
        &self,
        config: &InstanceConfig,
        prefs: Flags,
        reqs: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        let single = precision_is_single(prefs, reqs);
        let pool = self
            .pool
            .lock()
            .get_or_insert_with(|| Arc::new(ThreadPool::new(self.threads)))
            .clone();
        let mode = ExecMode::RealX86 {
            pool,
            work_group_patterns: self.work_group_patterns,
        };
        let spec = crate::device::catalog::dual_xeon_e5_2680v4();
        let details = InstanceDetails {
            implementation_name: "OpenCL-x86".into(),
            resource_name: format!("host CPU ({} compute units)", self.threads),
            flags: self.supported_flags(),
            thread_count: self.threads,
        };
        let injector = self
            .fault_plan
            .as_ref()
            .map(|p| FaultInjector::new(p.clone(), spec.name));
        let stats = prefs.contains(Flags::INSTANCE_STATS);
        if single {
            let mut inst = AccelInstance::<f32, OpenClDialect>::with_fault_injector(
                *config, spec, mode, details, injector,
            )?;
            if stats {
                inst.enable_statistics();
            }
            Ok(Box::new(inst))
        } else {
            let mut inst = AccelInstance::<f64, OpenClDialect>::with_fault_injector(
                *config, spec, mode, details, injector,
            )?;
            if stats {
                inst.enable_statistics();
            }
            Ok(Box::new(inst))
        }
    }
}

/// Register the full accelerator family on a manager: CUDA for every NVIDIA
/// device, OpenCL-GPU for every GPU in the ICD registry, and OpenCL-x86 for
/// the host.
pub fn register_accel_factories(manager: &mut ImplementationManager) {
    register_accel_factories_with_faults(manager, &FaultDirectory::new());
}

/// Like [`register_accel_factories`], but devices named in `faults` get that
/// plan injected into every driver call their instances make — the entry
/// point the fault-tolerance test matrix drives.
pub fn register_accel_factories_with_faults(
    manager: &mut ImplementationManager,
    faults: &FaultDirectory,
) {
    if let Some(cuda) =
        CudaDriver::probe_with_faults(&crate::device::catalog::all(), faults.clone())
    {
        for d in cuda.devices() {
            let factory = match cuda.fault_plan(d.name) {
                Some(plan) => CudaFactory::with_faults(d.clone(), plan.clone()),
                None => CudaFactory::new(d.clone()),
            };
            manager.register(Box::new(factory));
        }
    }
    let icd = IcdRegistry::probe_with_faults(&crate::device::catalog::all(), faults.clone());
    for d in icd.gpu_devices() {
        let factory = match icd.fault_plan(d.name) {
            Some(plan) => OpenClGpuFactory::with_faults(d.clone(), plan.clone()),
            None => OpenClGpuFactory::new(d),
        };
        manager.register(Box::new(factory));
    }
    let x86 = OpenClX86Factory::new();
    let x86 = match faults.plan_for(crate::device::catalog::dual_xeon_e5_2680v4().name) {
        Some(plan) => x86.with_fault_plan(plan.clone()),
        None => x86,
    };
    manager.register(Box::new(x86));
}

#[cfg(test)]
mod tests {
    use super::*;
    use beagle_core::InstanceSpec;

    fn cfg() -> InstanceConfig {
        InstanceConfig::for_tree(6, 500, 4, 2)
    }

    #[test]
    fn full_registry_prefers_gpu() {
        let mut m = ImplementationManager::new();
        register_accel_factories(&mut m);
        assert_eq!(m.factory_count(), 5, "1 CUDA + 3 OpenCL-GPU + 1 OpenCL-x86");
        let inst = InstanceSpec::with_config(cfg()).instantiate(&m).unwrap();
        assert!(inst.details().implementation_name.starts_with("CUDA"));
    }

    #[test]
    fn framework_requirement_selects_opencl() {
        let mut m = ImplementationManager::new();
        register_accel_factories(&mut m);
        let inst = InstanceSpec::with_config(cfg())
            .require(Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_GPU)
            .instantiate(&m)
            .unwrap();
        assert!(inst.details().implementation_name.starts_with("OpenCL-GPU"));
    }

    #[test]
    fn cpu_requirement_selects_x86() {
        let mut m = ImplementationManager::new();
        register_accel_factories(&mut m);
        let inst = InstanceSpec::with_config(cfg())
            .require(Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU)
            .instantiate(&m)
            .unwrap();
        assert_eq!(inst.details().implementation_name, "OpenCL-x86");
    }

    #[test]
    fn oversized_problem_rejected_by_device_memory() {
        // 4 GB R9 Nano cannot hold ~10M codon patterns in double precision.
        let f = OpenClGpuFactory::new(crate::device::catalog::radeon_r9_nano());
        let mut c = InstanceConfig::for_tree(64, 10_000_000, 61, 4);
        c.scale_buffer_count = 0;
        let err = f.create(&c, Flags::PRECISION_DOUBLE, Flags::PRECISION_DOUBLE);
        assert!(err.is_err());
    }
}
