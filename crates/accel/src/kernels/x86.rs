//! x86-variant partials kernels: coarse work-items that loop over states.
//!
//! §VII-B2: "the key optimization was to have each thread of execution do
//! more work in comparison to our GPU approach… our OpenCL-x86 for DNA-based
//! inferences loops over the state space in each work-item instead of
//! computing all states concurrently… we also found that it was advantageous
//! to avoid the explicit use of the local memory address space."
//!
//! Each work-item owns one pattern and computes all its states across all
//! categories; a work-group is a block of [`crate::grid::X86_WORK_GROUP_PATTERNS`]
//! patterns. These kernels execute *for real* on host threads (one task per
//! work-group) and are wall-clock timed — the OpenCL-x86 results in the
//! paper are genuine CPU numbers, and so are ours.

use beagle_core::real::Real;
use beagle_core::GAP_STATE;

use crate::dialect::{fma, BufferView, Dialect};

use super::Operand;

/// Compute one work-group of the x86 partials kernel.
///
/// `dest_blocks[cat]` is the destination slice for this group's pattern
/// range in category `cat`; children are full buffers addressed through the
/// dialect; `p0..p1` is the group's pattern range.
#[allow(clippy::too_many_arguments)]
pub fn partials_group<D: Dialect, T: Real>(
    dest_blocks: &mut [&mut [T]],
    c1: Operand<'_, T>,
    c2: Operand<'_, T>,
    m1: &[T],
    m2: &[T],
    s: usize,
    n_pat: usize,
    p0: usize,
    p1: usize,
    fma_enabled: bool,
) {
    for (cat, dest) in dest_blocks.iter_mut().enumerate() {
        let m1c = BufferView::new::<D>(m1, cat * s * s, s * s);
        let m2c = BufferView::new::<D>(m2, cat * s * s, s * s);
        // Work-items: one per pattern in [p0, p1).
        for (lp, p) in (p0..p1).enumerate() {
            let dst = &mut dest[lp * s..(lp + 1) * s];
            // The work-item loops over destination states — the "heavier
            // workload per thread" organization.
            for (i, d) in dst.iter_mut().enumerate() {
                let sum1 = operand_sum::<T>(&c1, &m1c, cat, p, i, s, n_pat, fma_enabled);
                let sum2 = operand_sum::<T>(&c2, &m2c, cat, p, i, s, n_pat, fma_enabled);
                *d = sum1 * sum2;
            }
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn operand_sum<T: Real>(
    child: &Operand<'_, T>,
    m: &BufferView<'_, T>,
    cat: usize,
    pattern: usize,
    i: usize,
    s: usize,
    n_pat: usize,
    fma_enabled: bool,
) -> T {
    match child {
        Operand::Partials(buf) => {
            let row = m.slice(i * s, s);
            let vals = &buf[(cat * n_pat + pattern) * s..(cat * n_pat + pattern) * s + s];
            let mut acc = T::ZERO;
            for j in 0..s {
                acc = fma(fma_enabled, row[j], vals[j], acc);
            }
            acc
        }
        Operand::States(states) => {
            let st = states[pattern];
            if st == GAP_STATE {
                T::ONE
            } else {
                m.at(i * s + st as usize)
            }
        }
    }
}

/// Rescale one work-group's pattern range across categories; mirrors the
/// GPU rescale kernel but at work-group granularity so the host pool can
/// run groups concurrently.
pub fn rescale_group<T: Real>(dest_blocks: &mut [&mut [T]], scale_out: &mut [T], s: usize) {
    let n_local = scale_out.len();
    for lp in 0..n_local {
        let mut max = T::ZERO;
        for block in dest_blocks.iter() {
            for &x in &block[lp * s..(lp + 1) * s] {
                max = max.max(x);
            }
        }
        if max > T::ZERO {
            let inv = T::ONE / max;
            for block in dest_blocks.iter_mut() {
                for x in &mut block[lp * s..(lp + 1) * s] {
                    *x *= inv;
                }
            }
            scale_out[lp] = max.ln();
        } else {
            scale_out[lp] = T::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::catalog;
    use crate::dialect::{CudaDialect, OpenClDialect};
    use crate::grid::plan_gpu;
    use crate::kernels::gpu::{partials_kernel, PartialsArgs};

    /// The two hardware variants must agree exactly: same kernels, different
    /// work decomposition.
    #[test]
    fn x86_variant_matches_gpu_variant() {
        for s in [4usize, 61] {
            let patterns = 300;
            let categories = 2;
            let len = categories * patterns * s;
            let c1: Vec<f64> = (0..len).map(|i| 0.1 + (i % 19) as f64 * 0.03).collect();
            let c2: Vec<f64> = (0..len).map(|i| 0.4 - (i % 11) as f64 * 0.02).collect();
            let m1: Vec<f64> = (0..categories * s * s)
                .map(|i| 0.01 * (1 + i % 9) as f64)
                .collect();
            let m2: Vec<f64> = (0..categories * s * s)
                .map(|i| 0.015 * (1 + i % 6) as f64)
                .collect();

            // GPU variant.
            let spec = catalog::quadro_p5000();
            let mut d_gpu = vec![0.0; len];
            partials_kernel::<CudaDialect, f64>(PartialsArgs {
                dest: &mut d_gpu,
                c1: Operand::Partials(&c1),
                c2: Operand::Partials(&c2),
                m1: &m1,
                m2: &m2,
                states: s,
                patterns,
                categories,
                plan: plan_gpu(&spec, s, 8),
                fma_enabled: true,
            });

            // x86 variant, two work-groups of 256 + remainder.
            let mut d_x86 = vec![0.0; len];
            for (p0, p1) in [(0usize, 256usize), (256, 300)] {
                let mut blocks: Vec<&mut [f64]> = Vec::new();
                let mut rest = d_x86.as_mut_slice();
                let mut consumed = 0;
                for cat in 0..categories {
                    let start = (cat * patterns + p0) * s - consumed;
                    let (_skip, r) = rest.split_at_mut(start);
                    let (blk, r2) = r.split_at_mut((p1 - p0) * s);
                    blocks.push(blk);
                    rest = r2;
                    consumed = (cat * patterns + p1) * s;
                }
                partials_group::<OpenClDialect, f64>(
                    &mut blocks,
                    Operand::Partials(&c1),
                    Operand::Partials(&c2),
                    &m1,
                    &m2,
                    s,
                    patterns,
                    p0,
                    p1,
                    true,
                );
            }
            for (a, b) in d_gpu.iter().zip(&d_x86) {
                assert!((a - b).abs() < 1e-12, "states {s}");
            }
        }
    }

    #[test]
    fn states_operand_in_x86_variant() {
        let s = 4;
        let patterns = 10;
        let states: Vec<u32> = vec![0, 1, 2, 3, GAP_STATE, 0, 1, 2, 3, 0];
        let c2: Vec<f64> = (0..patterns * s)
            .map(|i| 0.2 + (i % 3) as f64 * 0.1)
            .collect();
        let m: Vec<f64> = (0..16).map(|i| 0.03 * (1 + i) as f64).collect();
        let mut dest = vec![0.0; patterns * s];
        {
            let mut blocks: Vec<&mut [f64]> = vec![dest.as_mut_slice()];
            partials_group::<OpenClDialect, f64>(
                &mut blocks,
                Operand::States(&states),
                Operand::Partials(&c2),
                &m,
                &m,
                s,
                patterns,
                0,
                patterns,
                true,
            );
        }
        // Spot check: pattern 4 (gap) must use p1 = 1.
        let mut expect = vec![0.0; s];
        beagle_cpu::kernels::states_partials(&mut expect, &[GAP_STATE], &c2[16..20], &m, &m, s, s);
        assert_eq!(&dest[16..20], expect.as_slice());
    }

    #[test]
    fn rescale_group_normalizes() {
        let s = 2;
        let mut cat0 = vec![0.5, 0.1, 2e-9, 1e-9];
        let mut cat1 = vec![0.2, 0.3, 3e-9, 2e-9];
        let mut scale = vec![0.0; 2];
        {
            let mut blocks: Vec<&mut [f64]> = vec![&mut cat0, &mut cat1];
            rescale_group(&mut blocks, &mut scale, s);
        }
        assert!((cat0[0] - 1.0).abs() < 1e-15);
        assert!((scale[0] - 0.5f64.ln()).abs() < 1e-15);
        assert!((cat1[2] - 1.0).abs() < 1e-12);
    }
}
