//! The single, shared kernel code base for CUDA and OpenCL.
//!
//! "There is a single set of kernels for both frameworks, with keywords for
//! each being defined at the pre-processor stage" (§V-B). Here the
//! pre-processor is the type system: every kernel is written once, generic
//! over [`crate::dialect::Dialect`], which supplies sub-buffer addressing
//! (`clCreateSubBuffer` vs pointer arithmetic) and the FMA policy.
//!
//! Two hardware-specific kernel *variants* exist, exactly as in the paper
//! (§VII-B): [`gpu`] assigns one work-item per (pattern, state) entry with
//! local-memory staging; [`x86`] assigns one work-item per pattern, loops
//! over the state space, and uses no local memory.

pub mod gpu;
pub mod integrate;
pub mod x86;

/// A child operand of a partials kernel, device-side.
#[derive(Clone, Copy)]
pub enum Operand<'a, T> {
    /// Full partials buffer, `[category][pattern][state]`.
    Partials(&'a [T]),
    /// Compact per-pattern tip states.
    States(&'a [u32]),
}
