//! Device-side likelihood integration kernels.
//!
//! §IV-F: "BEAGLE uses GPUs to parallelize other functions necessary for
//! computing the overall tree likelihood, thus minimizing data transfers…
//! integrating root and edge likelihoods, and summing site likelihoods."
//! One work-item per pattern computes the site likelihood; a reduction
//! kernel then sums the weighted logs so only a single scalar crosses back
//! to the host.

use beagle_core::real::Real;
use beagle_core::GAP_STATE;

use crate::dialect::{fma, BufferView, Dialect};

use super::Operand;

/// Root-integration kernel: one work-item per pattern.
#[allow(clippy::too_many_arguments)]
pub fn integrate_root_kernel<D: Dialect, T: Real>(
    site_lnl: &mut [T],
    root: &[T],
    freqs: &[T],
    cat_weights: &[T],
    cumulative_scale: Option<&[T]>,
    s: usize,
    patterns: usize,
    fma_enabled: bool,
) {
    for pattern in 0..patterns {
        let mut site = T::ZERO;
        for (cat, &w) in cat_weights.iter().enumerate() {
            let view = BufferView::new::<D>(root, (cat * patterns + pattern) * s, s);
            let mut state_sum = T::ZERO;
            for (k, &f) in freqs.iter().enumerate() {
                state_sum = fma(fma_enabled, f, view.at(k), state_sum);
            }
            site = fma(fma_enabled, w, state_sum, site);
        }
        let mut lnl = site.ln();
        if let Some(cs) = cumulative_scale {
            lnl += cs[pattern];
        }
        site_lnl[pattern] = lnl;
    }
}

/// Edge-integration kernel: one work-item per pattern, combining parent
/// partials with a child propagated through one transition matrix.
#[allow(clippy::too_many_arguments)]
pub fn integrate_edge_kernel<D: Dialect, T: Real>(
    site_lnl: &mut [T],
    parent: &[T],
    child: Operand<'_, T>,
    matrix: &[T],
    freqs: &[T],
    cat_weights: &[T],
    cumulative_scale: Option<&[T]>,
    s: usize,
    patterns: usize,
    fma_enabled: bool,
) {
    for pattern in 0..patterns {
        let mut site = T::ZERO;
        for (cat, &w) in cat_weights.iter().enumerate() {
            let base = (cat * patterns + pattern) * s;
            let pview = BufferView::new::<D>(parent, base, s);
            let mview = BufferView::new::<D>(matrix, cat * s * s, s * s);
            let mut state_sum = T::ZERO;
            for i in 0..s {
                let prop = match child {
                    Operand::Partials(cp) => {
                        let cview = BufferView::new::<D>(cp, base, s);
                        let mut acc = T::ZERO;
                        for j in 0..s {
                            acc = fma(fma_enabled, mview.at(i * s + j), cview.at(j), acc);
                        }
                        acc
                    }
                    Operand::States(st) => {
                        let stp = st[pattern];
                        if stp == GAP_STATE {
                            T::ONE
                        } else {
                            mview.at(i * s + stp as usize)
                        }
                    }
                };
                state_sum += freqs[i] * pview.at(i) * prop;
            }
            site = fma(fma_enabled, w, state_sum, site);
        }
        let mut lnl = site.ln();
        if let Some(cs) = cumulative_scale {
            lnl += cs[pattern];
        }
        site_lnl[pattern] = lnl;
    }
}

/// Site-likelihood summation ("summing site likelihoods", §IV): the weighted
/// reduction that returns the total log-likelihood as the only value
/// transferred back to the host.
pub fn sum_sites_kernel<T: Real>(site_lnl: &[T], pattern_weights: &[T]) -> f64 {
    site_lnl
        .iter()
        .zip(pattern_weights)
        .map(|(&l, &w)| l.to_f64() * w.to_f64())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{CudaDialect, OpenClDialect};

    #[test]
    fn root_kernel_matches_cpu_kernel() {
        let s = 4;
        let patterns = 57;
        let categories = 3;
        let root: Vec<f64> = (0..categories * patterns * s)
            .map(|i| 0.05 + (i % 29) as f64 * 0.01)
            .collect();
        let freqs = vec![0.1, 0.2, 0.3, 0.4];
        let catw = vec![0.5, 0.25, 0.25];
        let pw: Vec<f64> = (0..patterns).map(|i| 1.0 + (i % 3) as f64).collect();
        let cs: Vec<f64> = (0..patterns).map(|i| -(i as f64) * 0.01).collect();

        let mut site_gpu = vec![0.0; patterns];
        integrate_root_kernel::<CudaDialect, f64>(
            &mut site_gpu,
            &root,
            &freqs,
            &catw,
            Some(&cs),
            s,
            patterns,
            true,
        );
        let total_gpu = sum_sites_kernel(&site_gpu, &pw);

        let mut site_cpu = vec![0.0; patterns];
        let total_cpu = beagle_cpu::kernels::integrate_root(
            &mut site_cpu,
            &root,
            &freqs,
            &catw,
            &pw,
            Some(&cs),
            s,
            s,
            patterns,
            0,
        );
        for (a, b) in site_gpu.iter().zip(&site_cpu) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((total_gpu - total_cpu).abs() < 1e-10);
    }

    #[test]
    fn edge_kernel_matches_cpu_kernel() {
        let s = 4;
        let patterns = 31;
        let categories = 2;
        let len = categories * patterns * s;
        let parent: Vec<f64> = (0..len).map(|i| 0.1 + (i % 7) as f64 * 0.05).collect();
        let child: Vec<f64> = (0..len).map(|i| 0.3 - (i % 5) as f64 * 0.02).collect();
        let matrix: Vec<f64> = (0..categories * s * s)
            .map(|i| 0.04 * (1 + i % 8) as f64)
            .collect();
        let freqs = vec![0.25; 4];
        let catw = vec![0.5, 0.5];
        let pw = vec![1.0; patterns];

        let mut site_gpu = vec![0.0; patterns];
        integrate_edge_kernel::<OpenClDialect, f64>(
            &mut site_gpu,
            &parent,
            Operand::Partials(&child),
            &matrix,
            &freqs,
            &catw,
            None,
            s,
            patterns,
            true,
        );
        let total_gpu = sum_sites_kernel(&site_gpu, &pw);

        let mut site_cpu = vec![0.0; patterns];
        let total_cpu = beagle_cpu::kernels::integrate_edge(
            &mut site_cpu,
            &parent,
            beagle_cpu::kernels::EdgeChild::Partials(&child),
            &matrix,
            &freqs,
            &catw,
            &pw,
            None,
            s,
            s,
            patterns,
            0,
        );
        for (a, b) in site_gpu.iter().zip(&site_cpu) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((total_gpu - total_cpu).abs() < 1e-10);
    }

    #[test]
    fn dialects_agree_on_integration() {
        let s = 61;
        let patterns = 13;
        let root: Vec<f64> = (0..patterns * s)
            .map(|i| 0.01 + (i % 37) as f64 * 0.002)
            .collect();
        let freqs = vec![1.0 / 61.0; 61];
        let catw = vec![1.0];
        let mut a = vec![0.0; patterns];
        let mut b = vec![0.0; patterns];
        integrate_root_kernel::<CudaDialect, f64>(
            &mut a, &root, &freqs, &catw, None, s, patterns, true,
        );
        integrate_root_kernel::<OpenClDialect, f64>(
            &mut b, &root, &freqs, &catw, None, s, patterns, true,
        );
        assert_eq!(a, b);
    }
}
