//! GPU-variant partials kernels: fine-grained (pattern, state) work-items.
//!
//! Execution is structured the way the real CUDA/OpenCL kernels are
//! (Fig. 2): the grid covers `categories × group_count` work-groups; each
//! work-group covers `patterns_per_group` patterns × `states` states of one
//! category; the transition matrices of the current category are staged into
//! local memory when they fit (see [`crate::grid::plan_gpu`]); each work-item
//! computes one destination entry. The simulator runs work-groups as loops —
//! the *structure* (group/item indexing, local staging, pattern-guard for
//! padding) is preserved so the code is a faithful port target.

use beagle_core::real::Real;
use beagle_core::GAP_STATE;

use crate::dialect::{fma, BufferView, Dialect};
use crate::grid::WorkGroupPlan;

use super::Operand;

/// Arguments common to the partials kernels.
pub struct PartialsArgs<'a, T> {
    /// Destination partials buffer (full `[cat][pattern][state]` layout).
    pub dest: &'a mut [T],
    /// First child operand.
    pub c1: Operand<'a, T>,
    /// Second child operand.
    pub c2: Operand<'a, T>,
    /// Transition matrices for the child-1 branch, `[cat][s][s]`.
    pub m1: &'a [T],
    /// Transition matrices for the child-2 branch, `[cat][s][s]`.
    pub m2: &'a [T],
    /// State count.
    pub states: usize,
    /// Unique pattern count (unpadded).
    pub patterns: usize,
    /// Rate-category count.
    pub categories: usize,
    /// Work-group geometry.
    pub plan: WorkGroupPlan,
    /// Dialect FMA policy for this device.
    pub fma_enabled: bool,
}

/// Launch the GPU-variant partials kernel for dialect `D`.
pub fn partials_kernel<D: Dialect, T: Real>(args: PartialsArgs<'_, T>) {
    let PartialsArgs {
        dest,
        c1,
        c2,
        m1,
        m2,
        states: s,
        patterns,
        categories,
        plan,
        fma_enabled,
    } = args;
    let groups = plan.group_count(patterns);
    // Simulated local memory (LDS / shared memory), reused across groups the
    // way a resident work-group's allocation would be.
    let mut local_m1 = vec![T::ZERO; if plan.matrices_in_local { s * s } else { 0 }];
    let mut local_m2 = vec![T::ZERO; if plan.matrices_in_local { s * s } else { 0 }];

    for cat in 0..categories {
        // Per-category matrix views, addressed per the dialect.
        let m1_cat = BufferView::new::<D>(m1, cat * s * s, s * s);
        let m2_cat = BufferView::new::<D>(m2, cat * s * s, s * s);
        if plan.matrices_in_local {
            // Cooperative staging: in the real kernel each work-item copies
            // a strided share, then barriers.
            for k in 0..s * s {
                local_m1[k] = m1_cat.at(k);
                local_m2[k] = m2_cat.at(k);
            }
        }
        for group in 0..groups {
            let first_pattern = group * plan.patterns_per_group;
            for item in 0..plan.items_per_group {
                // Work-item decomposition: item = local_pattern * s + state.
                let pattern = first_pattern + item / s;
                let i = item % s;
                if pattern >= patterns {
                    continue; // padding guard, as in the real kernel
                }
                let base = (cat * patterns + pattern) * s;
                let sum1 = child_sum::<D, T>(
                    &c1,
                    if plan.matrices_in_local {
                        Matrix::Local(&local_m1)
                    } else {
                        Matrix::Global(m1_cat)
                    },
                    base,
                    pattern,
                    i,
                    s,
                    fma_enabled,
                );
                let sum2 = child_sum::<D, T>(
                    &c2,
                    if plan.matrices_in_local {
                        Matrix::Local(&local_m2)
                    } else {
                        Matrix::Global(m2_cat)
                    },
                    base,
                    pattern,
                    i,
                    s,
                    fma_enabled,
                );
                dest[base + i] = sum1 * sum2;
            }
        }
    }
}

/// Matrix source: staged in local memory or read from global via the dialect
/// view.
enum Matrix<'a, T> {
    Local(&'a [T]),
    Global(BufferView<'a, T>),
}

impl<'a, T: Real> Matrix<'a, T> {
    /// Row `i` as a contiguous slice — resolved ONCE per work-item so the
    /// dialect dispatch hoists out of the inner reduction loop (this is what
    /// keeps the shared-kernel abstraction cost-free; see the ablation
    /// bench).
    #[inline(always)]
    fn row(&self, i: usize, s: usize) -> &'a [T] {
        match self {
            Matrix::Local(l) => &l[i * s..(i + 1) * s],
            Matrix::Global(v) => v.slice(i * s, s),
        }
    }
}

/// One child's matrix-vector contribution for destination state `i`.
#[inline(always)]
fn child_sum<D: Dialect, T: Real>(
    child: &Operand<'_, T>,
    m: Matrix<'_, T>,
    base: usize,
    pattern: usize,
    i: usize,
    s: usize,
    fma_enabled: bool,
) -> T {
    let row = m.row(i, s);
    match child {
        Operand::Partials(p) => {
            let vals = BufferView::new::<D>(p, base, s).slice(0, s);
            let mut acc = T::ZERO;
            for j in 0..s {
                acc = fma(fma_enabled, row[j], vals[j], acc);
            }
            acc
        }
        Operand::States(states) => {
            let st = states[pattern];
            if st == GAP_STATE {
                T::ONE
            } else {
                row[st as usize]
            }
        }
    }
}

/// Rescaling kernel: one work-item per pattern finds the max over
/// (category × state) entries, normalizes, and writes the log factor.
pub fn rescale_kernel<T: Real>(
    partials: &mut [T],
    scale_out: &mut [T],
    s: usize,
    patterns: usize,
    categories: usize,
) {
    for pattern in 0..patterns {
        let mut max = T::ZERO;
        for cat in 0..categories {
            let base = (cat * patterns + pattern) * s;
            for k in 0..s {
                max = max.max(partials[base + k]);
            }
        }
        if max > T::ZERO {
            let inv = T::ONE / max;
            for cat in 0..categories {
                let base = (cat * patterns + pattern) * s;
                for k in 0..s {
                    partials[base + k] *= inv;
                }
            }
            scale_out[pattern] = max.ln();
        } else {
            scale_out[pattern] = T::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::catalog;
    use crate::dialect::{CudaDialect, OpenClDialect};
    use crate::grid::plan_gpu;
    use beagle_cpu::kernels as cpu_kernels;

    fn run_case<D: Dialect>(s: usize, patterns: usize, categories: usize) -> Vec<f64> {
        let spec = catalog::quadro_p5000();
        let plan = plan_gpu(&spec, s, 8);
        let len = categories * patterns * s;
        let c1: Vec<f64> = (0..len).map(|i| 0.1 + (i % 17) as f64 * 0.05).collect();
        let c2: Vec<f64> = (0..len).map(|i| 0.2 + (i % 13) as f64 * 0.04).collect();
        let m1: Vec<f64> = (0..categories * s * s)
            .map(|i| 0.01 * (1 + i % 9) as f64)
            .collect();
        let m2: Vec<f64> = (0..categories * s * s)
            .map(|i| 0.02 * (1 + i % 7) as f64)
            .collect();
        let mut dest = vec![0.0; len];
        partials_kernel::<D, f64>(PartialsArgs {
            dest: &mut dest,
            c1: Operand::Partials(&c1),
            c2: Operand::Partials(&c2),
            m1: &m1,
            m2: &m2,
            states: s,
            patterns,
            categories,
            plan,
            fma_enabled: true,
        });
        dest
    }

    fn cpu_reference(s: usize, patterns: usize, categories: usize) -> Vec<f64> {
        let len = categories * patterns * s;
        let c1: Vec<f64> = (0..len).map(|i| 0.1 + (i % 17) as f64 * 0.05).collect();
        let c2: Vec<f64> = (0..len).map(|i| 0.2 + (i % 13) as f64 * 0.04).collect();
        let m1: Vec<f64> = (0..categories * s * s)
            .map(|i| 0.01 * (1 + i % 9) as f64)
            .collect();
        let m2: Vec<f64> = (0..categories * s * s)
            .map(|i| 0.02 * (1 + i % 7) as f64)
            .collect();
        let mut dest = vec![0.0; len];
        for cat in 0..categories {
            let r = (cat * patterns) * s..(cat + 1) * patterns * s;
            cpu_kernels::partials_partials(
                &mut dest[r.clone()],
                &c1[r.clone()],
                &c2[r],
                &m1[cat * s * s..(cat + 1) * s * s],
                &m2[cat * s * s..(cat + 1) * s * s],
                s,
                s,
            );
        }
        dest
    }

    #[test]
    fn gpu_kernel_matches_cpu_reference_nucleotide() {
        for (p, c) in [(1, 1), (63, 2), (64, 2), (65, 4), (1000, 4)] {
            let gpu = run_case::<CudaDialect>(4, p, c);
            let cpu = cpu_reference(4, p, c);
            for (a, b) in gpu.iter().zip(&cpu) {
                assert!((a - b).abs() < 1e-12, "p={p} c={c}");
            }
        }
    }

    #[test]
    fn gpu_kernel_matches_cpu_reference_codon() {
        let gpu = run_case::<CudaDialect>(61, 37, 2);
        let cpu = cpu_reference(61, 37, 2);
        for (a, b) in gpu.iter().zip(&cpu) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn cuda_and_opencl_dialects_produce_identical_results() {
        // The shared-kernel guarantee: one kernel source, two frameworks,
        // bitwise-equal output (when both use the same FMA policy).
        for s in [4usize, 20, 61] {
            let cuda = run_case::<CudaDialect>(s, 129, 2);
            let opencl = run_case::<OpenClDialect>(s, 129, 2);
            assert_eq!(cuda, opencl, "states {s}");
        }
    }

    #[test]
    fn states_operand_matches_onehot() {
        let spec = catalog::radeon_r9_nano();
        let s = 4;
        let patterns = 70;
        let plan = plan_gpu(&spec, s, 4);
        let states: Vec<u32> = (0..patterns)
            .map(|p| {
                if p % 11 == 0 {
                    GAP_STATE
                } else {
                    (p % 4) as u32
                }
            })
            .collect();
        let mut onehot = vec![0.0f64; patterns * s];
        for (p, &st) in states.iter().enumerate() {
            if st == GAP_STATE {
                onehot[p * s..(p + 1) * s].fill(1.0);
            } else {
                onehot[p * s + st as usize] = 1.0;
            }
        }
        let c2: Vec<f64> = (0..patterns * s)
            .map(|i| 0.3 + (i % 5) as f64 * 0.1)
            .collect();
        // Row-stochastic matrix: the gap shortcut (likelihood 1) only equals
        // the one-hot matrix-vector sum when rows sum to 1, as real
        // transition matrices do.
        let mut m: Vec<f64> = (0..s * s).map(|i| 0.05 * (1 + i) as f64).collect();
        for row in m.chunks_exact_mut(s) {
            let sum: f64 = row.iter().sum();
            row.iter_mut().for_each(|x| *x /= sum);
        }

        let mut d_states = vec![0.0; patterns * s];
        partials_kernel::<OpenClDialect, f64>(PartialsArgs {
            dest: &mut d_states,
            c1: Operand::States(&states),
            c2: Operand::Partials(&c2),
            m1: &m,
            m2: &m,
            states: s,
            patterns,
            categories: 1,
            plan,
            fma_enabled: true,
        });
        let mut d_onehot = vec![0.0; patterns * s];
        partials_kernel::<OpenClDialect, f64>(PartialsArgs {
            dest: &mut d_onehot,
            c1: Operand::Partials(&onehot),
            c2: Operand::Partials(&c2),
            m1: &m,
            m2: &m,
            states: s,
            patterns,
            categories: 1,
            plan,
            fma_enabled: true,
        });
        for (a, b) in d_states.iter().zip(&d_onehot) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn rescale_kernel_matches_cpu_rescale() {
        let s = 4;
        let patterns = 33;
        let categories = 3;
        let mut a: Vec<f64> = (0..categories * patterns * s)
            .map(|i| 1e-5 * (1 + i % 23) as f64)
            .collect();
        let mut b = a.clone();
        let mut scale_a = vec![0.0; patterns];
        let mut scale_b = vec![0.0; patterns];
        rescale_kernel(&mut a, &mut scale_a, s, patterns, categories);
        {
            let mut blocks: Vec<&mut [f64]> = b.chunks_exact_mut(patterns * s).collect();
            cpu_kernels::rescale_patterns(&mut blocks, &mut scale_b, s);
        }
        assert_eq!(a, b);
        assert_eq!(scale_a, scale_b);
    }
}
