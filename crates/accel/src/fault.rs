//! Deterministic device-fault injection.
//!
//! Real heterogeneous deployments meet hardware faults — dropped kernel
//! launches, failed allocations, whole devices falling off the bus, and
//! silent data corruption from flaky VRAM. The simulated back-ends make
//! those failure modes *testable*: a [`FaultPlan`] attached to a device
//! (through the CUDA driver, the OpenCL ICD registry, or directly on a
//! factory) injects faults at the checkpoints every driver call passes
//! through — allocations, host↔device copies, and kernel launches.
//!
//! Injection is deterministic and seedable: scheduled faults
//! ([`Schedule::AtCall`], [`Schedule::EveryN`]) count driver calls, and
//! probabilistic faults ([`Schedule::Probability`]) draw from a PRNG seeded
//! by the plan, so a fixed seed and call sequence reproduce the exact same
//! fault pattern — the property the failover test matrix depends on.
//!
//! Faults carry a transient/permanent classification which flows into
//! [`BeagleError::Device`]; retry and failover layers upstream key off it
//! (see `beagle_core::multi`).

use beagle_core::error::{BeagleError, DeviceErrorKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Duration;

/// Which failure mode to inject.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// A kernel launch fails with an error code.
    KernelLaunch,
    /// A device allocation or host↔device copy fails.
    Allocation,
    /// The whole device is lost. Permanent device loss latches: every
    /// subsequent call on the device fails too.
    DeviceLost,
    /// The launch *appears* to succeed but corrupts its destination
    /// buffer — detected only when a later integration sees the damage.
    SilentCorruption,
    /// The launch takes `delay` longer than modeled before completing — a
    /// congested queue or a thermally throttled device. Whether the call
    /// survives is the *watchdog's* decision: stalls shorter than the
    /// instance's deadline budget complete late; longer ones are cancelled
    /// and surface as [`BeagleError::Timeout`].
    Stall(Duration),
    /// The device wedges and never answers — a hung driver queue. Always
    /// cancelled by the watchdog at the deadline. A permanent hang latches:
    /// every subsequent call on the device hangs too, exactly like a real
    /// wedged context.
    Hang,
    /// Throughput skew: from the firing launch onward, every modeled
    /// operation on the device takes `factor`× longer — a thermally
    /// throttled or bandwidth-starved device that still computes correct
    /// results, just slowly. Latches for the life of the instance
    /// (throttled silicon does not recover mid-run); affects the simulated
    /// device clock, so it is visible to modeled-time measurement (and the
    /// load balancer) but never corrupts data or fails a call.
    Slowdown(f64),
}

/// When a fault fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// Exactly at the `n`-th checkpoint the device passes (1-based).
    AtCall(u64),
    /// At every `n`-th checkpoint.
    EveryN(u64),
    /// Independently at each checkpoint with probability `p`, drawn from
    /// the plan's seeded PRNG.
    Probability(f64),
}

/// One configured fault: what, whether retrying may help, and when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Failure mode.
    pub kind: FaultKind,
    /// Transient faults may clear on retry; permanent ones never do.
    pub transient: bool,
    /// Firing schedule.
    pub schedule: Schedule,
}

/// A per-device fault configuration: a seed plus any number of faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan drawing probabilistic faults from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Add a fault (builder style).
    pub fn with_fault(mut self, kind: FaultKind, transient: bool, schedule: Schedule) -> Self {
        self.faults.push(FaultSpec {
            kind,
            transient,
            schedule,
        });
        self
    }

    /// The configured faults.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The kind of driver call passing a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Device-memory allocation (instance creation, kernel compilation).
    Allocation,
    /// Host↔device data transfer.
    Copy,
    /// Kernel launch (partials, matrices, integration).
    KernelLaunch,
}

/// What the caller must do after a checkpoint.
#[derive(Debug)]
pub enum FaultAction {
    /// No fault: run the call normally.
    Proceed,
    /// Run the call, then corrupt its destination (silent-corruption
    /// faults return success codes; the damage surfaces later).
    Corrupt,
    /// The call failed with this error.
    Fail(BeagleError),
    /// The call stalls for this long before completing. The instance's
    /// watchdog compares the stall against the deadline budget: under
    /// budget the call completes late, over budget it is cancelled with
    /// [`BeagleError::Timeout`]. A hang is `Stall(Duration::MAX)`.
    Stall(Duration),
    /// The call succeeds, but the device is now `factor`× slower: the
    /// caller scales its simulated clock so all work from here on is
    /// charged at the throttled rate.
    Slow(f64),
}

fn site_matches(kind: FaultKind, site: FaultSite) -> bool {
    match kind {
        FaultKind::KernelLaunch => site == FaultSite::KernelLaunch,
        FaultKind::Allocation => matches!(site, FaultSite::Allocation | FaultSite::Copy),
        // A device can drop off the bus during any call.
        FaultKind::DeviceLost => true,
        FaultKind::SilentCorruption => site == FaultSite::KernelLaunch,
        // Slow kernels stall launches; a wedged driver queue hangs any call.
        FaultKind::Stall(_) => site == FaultSite::KernelLaunch,
        FaultKind::Hang => true,
        FaultKind::Slowdown(_) => site == FaultSite::KernelLaunch,
    }
}

/// Per-instance fault state: counts checkpoints, draws the PRNG, and
/// latches permanent device loss.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    device: String,
    calls: u64,
    lost: bool,
    wedged: bool,
    corrupted: bool,
    slowdown: Option<f64>,
}

impl FaultInjector {
    /// Fresh injector for one instance on `device`.
    pub fn new(plan: FaultPlan, device: &str) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed);
        Self {
            plan,
            rng,
            device: device.to_string(),
            calls: 0,
            lost: false,
            wedged: false,
            corrupted: false,
            slowdown: None,
        }
    }

    fn device_error(&self, kind: DeviceErrorKind, transient: bool) -> BeagleError {
        BeagleError::Device {
            kind,
            transient,
            device: self.device.clone(),
        }
    }

    /// Pass one checkpoint. Deterministic: the outcome depends only on the
    /// plan, the seed, and the sequence of checkpoints so far.
    pub fn on_call(&mut self, site: FaultSite) -> FaultAction {
        self.calls += 1;
        if self.lost {
            return FaultAction::Fail(self.device_error(DeviceErrorKind::DeviceLost, false));
        }
        if self.wedged {
            return FaultAction::Stall(Duration::MAX);
        }
        // Every probabilistic fault draws exactly once per checkpoint,
        // whether or not its site matches — the draw count per call is
        // fixed, which keeps the stream aligned across fault kinds.
        let mut fired: Option<FaultSpec> = None;
        for i in 0..self.plan.faults.len() {
            let spec = self.plan.faults[i];
            let hit = match spec.schedule {
                Schedule::AtCall(n) => self.calls == n,
                Schedule::EveryN(n) => n > 0 && self.calls.is_multiple_of(n),
                Schedule::Probability(p) => self.rng.random_bool(p),
            };
            if hit && site_matches(spec.kind, site) && fired.is_none() {
                fired = Some(spec);
            }
        }
        let Some(spec) = fired else {
            return FaultAction::Proceed;
        };
        match spec.kind {
            FaultKind::DeviceLost => {
                if !spec.transient {
                    self.lost = true;
                }
                FaultAction::Fail(self.device_error(DeviceErrorKind::DeviceLost, spec.transient))
            }
            FaultKind::KernelLaunch => {
                FaultAction::Fail(self.device_error(DeviceErrorKind::LaunchFailed, spec.transient))
            }
            FaultKind::Allocation => FaultAction::Fail(
                self.device_error(DeviceErrorKind::AllocationFailed, spec.transient),
            ),
            FaultKind::SilentCorruption => {
                self.corrupted = true;
                FaultAction::Corrupt
            }
            FaultKind::Stall(delay) => FaultAction::Stall(delay),
            FaultKind::Slowdown(factor) => {
                self.slowdown = Some(factor);
                FaultAction::Slow(factor)
            }
            FaultKind::Hang => {
                if !spec.transient {
                    self.wedged = true;
                }
                FaultAction::Stall(Duration::MAX)
            }
        }
    }

    /// The error the watchdog reports when it cancels a call at `site`.
    pub fn timeout_error(&self, site: FaultSite, budget: Duration) -> BeagleError {
        BeagleError::Timeout {
            what: format!(
                "{site:?} on {} exceeded the {budget:?} watchdog budget",
                self.device
            ),
        }
    }

    /// Whether a silent-corruption fault has fired on this instance. Set
    /// once corruption is injected; the instance uses it to attribute a
    /// later NaN to the device rather than to numerics.
    pub fn corruption_detected(&self) -> bool {
        self.corrupted
    }

    /// The error a corruption-attributed failure should carry. Always
    /// permanent: retrying in place cannot repair poisoned buffers — only
    /// rebuilding the instance (journal replay) can.
    pub fn corruption_error(&self) -> BeagleError {
        self.device_error(DeviceErrorKind::MemoryCorruption, false)
    }

    /// The latched throughput-skew factor, if a slowdown fault has fired.
    pub fn slowdown(&self) -> Option<f64> {
        self.slowdown
    }

    /// Checkpoints passed so far (diagnostics).
    pub fn call_count(&self) -> u64 {
        self.calls
    }
}

/// Per-device fault plans, keyed by device name — the registry the
/// framework drivers and factories consult at instance creation.
#[derive(Clone, Debug, Default)]
pub struct FaultDirectory {
    plans: HashMap<String, FaultPlan>,
}

impl FaultDirectory {
    /// An empty directory (no faults anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach `plan` to the device named `device` (builder style).
    pub fn with_plan(mut self, device: impl Into<String>, plan: FaultPlan) -> Self {
        self.plans.insert(device.into(), plan);
        self
    }

    /// Attach `plan` to the device named `device`.
    pub fn insert(&mut self, device: impl Into<String>, plan: FaultPlan) {
        self.plans.insert(device.into(), plan);
    }

    /// The plan for `device`, if any.
    pub fn plan_for(&self, device: &str) -> Option<&FaultPlan> {
        self.plans.get(device)
    }

    /// A fresh injector for one instance on `device`, if a plan exists.
    pub fn injector_for(&self, device: &str) -> Option<FaultInjector> {
        self.plans
            .get(device)
            .filter(|p| !p.is_empty())
            .map(|p| FaultInjector::new(p.clone(), device))
    }

    /// Whether no device has a plan.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail_kinds(inj: &mut FaultInjector, site: FaultSite, n: u64) -> Vec<bool> {
        (0..n)
            .map(|_| matches!(inj.on_call(site), FaultAction::Fail(_)))
            .collect()
    }

    #[test]
    fn scheduled_fault_fires_exactly_once() {
        let plan = FaultPlan::new(1).with_fault(FaultKind::KernelLaunch, true, Schedule::AtCall(3));
        let mut inj = FaultInjector::new(plan, "gpu");
        let fails = fail_kinds(&mut inj, FaultSite::KernelLaunch, 6);
        assert_eq!(fails, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn every_n_fires_periodically() {
        let plan = FaultPlan::new(1).with_fault(FaultKind::KernelLaunch, true, Schedule::EveryN(2));
        let mut inj = FaultInjector::new(plan, "gpu");
        let fails = fail_kinds(&mut inj, FaultSite::KernelLaunch, 6);
        assert_eq!(fails, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn permanent_device_loss_latches() {
        let plan = FaultPlan::new(1).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(2));
        let mut inj = FaultInjector::new(plan, "gpu");
        assert!(matches!(inj.on_call(FaultSite::Copy), FaultAction::Proceed));
        let e = match inj.on_call(FaultSite::Copy) {
            FaultAction::Fail(e) => e,
            other => panic!("expected failure, got {other:?}"),
        };
        assert!(!e.is_retryable());
        // Every later call fails too, regardless of site.
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Fail(_)
        ));
        assert!(matches!(
            inj.on_call(FaultSite::Allocation),
            FaultAction::Fail(_)
        ));
    }

    #[test]
    fn transient_device_loss_does_not_latch() {
        let plan = FaultPlan::new(1).with_fault(FaultKind::DeviceLost, true, Schedule::AtCall(1));
        let mut inj = FaultInjector::new(plan, "gpu");
        let e = match inj.on_call(FaultSite::KernelLaunch) {
            FaultAction::Fail(e) => e,
            other => panic!("expected failure, got {other:?}"),
        };
        assert!(e.is_retryable());
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Proceed
        ));
    }

    #[test]
    fn site_filtering() {
        let plan = FaultPlan::new(1).with_fault(FaultKind::Allocation, false, Schedule::EveryN(1));
        let mut inj = FaultInjector::new(plan, "gpu");
        // Allocation faults hit allocations and copies, not launches.
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Proceed
        ));
        assert!(matches!(
            inj.on_call(FaultSite::Allocation),
            FaultAction::Fail(_)
        ));
        assert!(matches!(inj.on_call(FaultSite::Copy), FaultAction::Fail(_)));
    }

    #[test]
    fn probabilistic_faults_are_deterministic_per_seed() {
        let plan = FaultPlan::new(42).with_fault(
            FaultKind::KernelLaunch,
            true,
            Schedule::Probability(0.3),
        );
        let mut a = FaultInjector::new(plan.clone(), "gpu");
        let mut b = FaultInjector::new(plan, "gpu");
        let fa = fail_kinds(&mut a, FaultSite::KernelLaunch, 200);
        let fb = fail_kinds(&mut b, FaultSite::KernelLaunch, 200);
        assert_eq!(fa, fb);
        let hits = fa.iter().filter(|&&x| x).count();
        assert!(hits > 20 && hits < 120, "p=0.3 over 200 draws, got {hits}");
    }

    #[test]
    fn corruption_returns_corrupt_and_sets_flag() {
        let plan =
            FaultPlan::new(1).with_fault(FaultKind::SilentCorruption, false, Schedule::AtCall(1));
        let mut inj = FaultInjector::new(plan, "gpu");
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Corrupt
        ));
        assert!(inj.corruption_detected());
        assert!(!inj.corruption_error().is_retryable());
    }

    #[test]
    fn stall_reports_its_delay_at_launch_sites_only() {
        let plan = FaultPlan::new(1).with_fault(
            FaultKind::Stall(Duration::from_millis(5)),
            true,
            Schedule::EveryN(1),
        );
        let mut inj = FaultInjector::new(plan, "gpu");
        // Stalls model slow kernels: copies and allocations are unaffected.
        assert!(matches!(inj.on_call(FaultSite::Copy), FaultAction::Proceed));
        assert!(matches!(
            inj.on_call(FaultSite::Allocation),
            FaultAction::Proceed
        ));
        match inj.on_call(FaultSite::KernelLaunch) {
            FaultAction::Stall(d) => assert_eq!(d, Duration::from_millis(5)),
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn permanent_hang_wedges_every_later_call() {
        let plan = FaultPlan::new(1).with_fault(FaultKind::Hang, false, Schedule::AtCall(2));
        let mut inj = FaultInjector::new(plan, "gpu");
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Proceed
        ));
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Stall(d) if d == Duration::MAX
        ));
        // The wedge latches across all sites, like a real hung context.
        assert!(matches!(
            inj.on_call(FaultSite::Copy),
            FaultAction::Stall(_)
        ));
        assert!(matches!(
            inj.on_call(FaultSite::Allocation),
            FaultAction::Stall(_)
        ));
    }

    #[test]
    fn transient_hang_fires_once_and_clears() {
        let plan = FaultPlan::new(1).with_fault(FaultKind::Hang, true, Schedule::AtCall(1));
        let mut inj = FaultInjector::new(plan, "gpu");
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Stall(_)
        ));
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Proceed
        ));
    }

    #[test]
    fn slowdown_fires_at_launch_and_latches_the_factor() {
        let plan =
            FaultPlan::new(1).with_fault(FaultKind::Slowdown(4.0), false, Schedule::AtCall(2));
        let mut inj = FaultInjector::new(plan, "gpu");
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Proceed
        ));
        assert!(inj.slowdown().is_none());
        match inj.on_call(FaultSite::KernelLaunch) {
            FaultAction::Slow(f) => assert_eq!(f, 4.0),
            other => panic!("expected slowdown, got {other:?}"),
        }
        assert_eq!(inj.slowdown(), Some(4.0));
        // Unlike device loss, a slow device keeps answering.
        assert!(matches!(
            inj.on_call(FaultSite::KernelLaunch),
            FaultAction::Proceed
        ));
        assert!(matches!(inj.on_call(FaultSite::Copy), FaultAction::Proceed));
    }

    #[test]
    fn timeout_error_is_evictable_not_retryable() {
        let plan = FaultPlan::new(1).with_fault(FaultKind::Hang, false, Schedule::AtCall(1));
        let inj = FaultInjector::new(plan, "gpu");
        let e = inj.timeout_error(FaultSite::KernelLaunch, Duration::from_secs(2));
        assert!(!e.is_retryable(), "timeouts go straight to eviction");
        assert!(e.to_string().contains("deadline exceeded"));
        assert!(e.to_string().contains("gpu"));
    }

    #[test]
    fn directory_hands_out_injectors_by_device() {
        let dir = FaultDirectory::new().with_plan(
            "Quadro P5000",
            FaultPlan::new(7).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(5)),
        );
        assert!(dir.injector_for("Quadro P5000").is_some());
        assert!(dir.injector_for("Radeon R9 Nano").is_none());
        assert!(dir.injector_for("Quadro P5000").unwrap().call_count() == 0);
    }
}
