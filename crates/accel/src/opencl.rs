//! The simulated OpenCL installable-client-driver (ICD) loader.
//!
//! §VII-B3: "BEAGLE makes use of the OpenCL Installable Client Driver loader
//! to make all implementations on a system available, which allows the
//! selection of different drivers for the same hardware resource." The
//! registry here mirrors that: each vendor ships a driver that claims a
//! subset of the system's devices; the same physical device can appear
//! under more than one driver (e.g. an Intel CPU under both the Intel and a
//! generic driver), and clients pick by driver name.

use crate::device::{catalog, DeviceKind, DeviceSpec, Vendor};
use crate::fault::{FaultDirectory, FaultPlan};

/// One installed OpenCL driver ("platform" in OpenCL terms).
#[derive(Clone, Debug)]
pub struct OpenClDriver {
    /// Platform name, e.g. `"AMD APP (simulated 1912.5)"`.
    pub name: String,
    /// Vendor shipping the driver.
    pub vendor: Vendor,
    /// Devices this driver exposes.
    pub devices: Vec<DeviceSpec>,
    /// Relative quality: vendor-specific drivers outperform generic ones
    /// ("on Linux and Windows… vendor-specific OpenCL driver implementations
    /// offer the best performance").
    pub vendor_specific: bool,
}

/// The ICD loader: every installed driver on the (simulated) system.
#[derive(Clone, Debug, Default)]
pub struct IcdRegistry {
    drivers: Vec<OpenClDriver>,
    faults: FaultDirectory,
}

impl IcdRegistry {
    /// Probe a system: group devices under their vendors' drivers.
    pub fn probe(available_devices: &[DeviceSpec]) -> Self {
        Self::probe_with_faults(available_devices, FaultDirectory::new())
    }

    /// Probe with a fault directory attached: instances created on a device
    /// with a plan inject that plan's faults into every launch/copy/compile
    /// call the vendor driver handles.
    pub fn probe_with_faults(available_devices: &[DeviceSpec], faults: FaultDirectory) -> Self {
        let mut drivers = Vec::new();
        let groups: [(Vendor, &str); 3] = [
            (Vendor::Nvidia, "NVIDIA OpenCL (simulated 375.26)"),
            (Vendor::Amd, "AMD APP (simulated 1912.5)"),
            (Vendor::Intel, "Intel OpenCL (simulated 1.2.0)"),
        ];
        for (vendor, name) in groups {
            let devices: Vec<DeviceSpec> = available_devices
                .iter()
                .filter(|d| d.vendor == vendor)
                .cloned()
                .collect();
            if !devices.is_empty() {
                drivers.push(OpenClDriver {
                    name: name.to_string(),
                    vendor,
                    devices,
                    vendor_specific: true,
                });
            }
        }
        Self { drivers, faults }
    }

    /// Probe the default simulated system (all catalog devices).
    pub fn probe_default() -> Self {
        Self::probe(&catalog::all())
    }

    /// All installed drivers.
    pub fn drivers(&self) -> &[OpenClDriver] {
        &self.drivers
    }

    /// The fault plan attached to `device`, if any.
    pub fn fault_plan(&self, device: &str) -> Option<&FaultPlan> {
        self.faults.plan_for(device)
    }

    /// Every (driver, device) pair — the flat resource view BEAGLE builds.
    pub fn enumerate(&self) -> Vec<(&OpenClDriver, &DeviceSpec)> {
        self.drivers
            .iter()
            .flat_map(|drv| drv.devices.iter().map(move |d| (drv, d)))
            .collect()
    }

    /// GPU devices reachable through OpenCL.
    pub fn gpu_devices(&self) -> Vec<DeviceSpec> {
        self.enumerate()
            .into_iter()
            .filter(|(_, d)| d.kind == DeviceKind::Gpu)
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// CPU-class devices (for the OpenCL-x86 implementation).
    pub fn cpu_devices(&self) -> Vec<DeviceSpec> {
        self.enumerate()
            .into_iter()
            .filter(|(_, d)| matches!(d.kind, DeviceKind::Cpu | DeviceKind::ManyCore))
            .map(|(_, d)| d.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_system_has_three_vendor_drivers() {
        let icd = IcdRegistry::probe_default();
        assert_eq!(icd.drivers().len(), 3);
        assert!(icd.drivers().iter().all(|d| d.vendor_specific));
    }

    #[test]
    fn gpu_and_cpu_views_partition_devices() {
        let icd = IcdRegistry::probe_default();
        let gpus = icd.gpu_devices();
        let cpus = icd.cpu_devices();
        assert_eq!(gpus.len(), 3, "P5000 + R9 Nano + S9170");
        assert_eq!(cpus.len(), 2, "Xeon Phi + dual Xeon");
        assert_eq!(gpus.len() + cpus.len(), icd.enumerate().len());
    }

    #[test]
    fn system_without_amd_has_no_amd_driver() {
        let icd = IcdRegistry::probe(&[catalog::quadro_p5000(), catalog::dual_xeon_e5_2680v4()]);
        assert!(icd.drivers().iter().all(|d| d.vendor != Vendor::Amd));
        assert_eq!(icd.drivers().len(), 2);
    }
}
