//! The framework dialect: one kernel code base for CUDA and OpenCL.
//!
//! §VII-A of the paper: "a single set of kernels for OpenCL and CUDA is
//! achieved by using preprocessor definitions for framework-specific
//! keywords… most notably, subpointer addressing within kernels was done by
//! using the `clCreateSubBuffer` function in OpenCL and by pointer arithmetic
//! in CUDA." In Rust the same sharing falls out of a zero-sized generic
//! parameter: kernels are written once, generic over [`Dialect`], and the
//! dialect supplies the framework-specific pieces — sub-buffer addressing
//! and the fused-multiply-add policy (`FP_FAST_FMA` macros, §VII-B1).
//!
//! The ablation bench (`benches/ablation.rs`) verifies the abstraction
//! compiles away: the dialect-generic kernel matches a monomorphic copy.

use beagle_core::real::Real;

use crate::device::DeviceSpec;

/// A compute framework "dialect" a kernel can be instantiated for.
pub trait Dialect: Send + Sync + 'static {
    /// Framework name as reported in instance details.
    const NAME: &'static str;

    /// How kernels address a region within a larger device buffer:
    /// `true` = create an explicit sub-buffer view first (OpenCL
    /// `clCreateSubBuffer`); `false` = raw pointer arithmetic at every
    /// access (CUDA).
    const USES_SUB_BUFFERS: bool;

    /// Whether the fast-FMA fast path is enabled on `device` — the OpenCL
    /// build defines `FP_FAST_FMAF`/`FP_FAST_FMA` when the device supports
    /// single-action fused multiply-add (§VII-B1); CUDA always fuses.
    fn fma_enabled(device: &DeviceSpec) -> bool;

    /// Framework-specific base kernel-launch overhead in microseconds.
    /// OpenCL launches cost more than CUDA launches on the same hardware,
    /// which is what separates the two curves for the Quadro P5000 at small
    /// pattern counts in Fig. 4.
    fn launch_overhead_us() -> f64;
}

/// The CUDA Driver API dialect.
pub struct CudaDialect;

impl Dialect for CudaDialect {
    const NAME: &'static str = "CUDA";
    const USES_SUB_BUFFERS: bool = false;
    fn fma_enabled(_device: &DeviceSpec) -> bool {
        true // nvcc contracts mul+add to FMA by default
    }
    fn launch_overhead_us() -> f64 {
        6.0
    }
}

/// The OpenCL dialect.
pub struct OpenClDialect;

impl Dialect for OpenClDialect {
    const NAME: &'static str = "OpenCL";
    const USES_SUB_BUFFERS: bool = true;
    fn fma_enabled(device: &DeviceSpec) -> bool {
        // Enabled only where the FP_FAST_FMA macros are set by our build
        // (the paper enabled them for AMD devices).
        device.supports_fma
    }
    fn launch_overhead_us() -> f64 {
        18.0
    }
}

/// Framework-polymorphic fused multiply-add: `a*b + c`.
///
/// When the dialect enables FMA on the device, this is a true fused op
/// (1 action); otherwise an unfused multiply-then-add (2 actions). The
/// performance model charges kernel flops accordingly; numerically the
/// difference is below likelihood tolerance either way (the paper observed
/// "non-trivial performance gains without loss of precision").
#[inline(always)]
pub fn fma<T: Real>(fma_enabled: bool, a: T, b: T, c: T) -> T {
    if fma_enabled {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// A view into device memory, created per the dialect's addressing scheme.
///
/// Both variants expose the same indexed access; `SubBuffer` pre-slices
/// (OpenCL), `PointerArithmetic` keeps the parent buffer plus an offset
/// (CUDA). Kernels use [`BufferView::at`] and never know which they got.
#[derive(Clone, Copy)]
pub enum BufferView<'a, T> {
    /// OpenCL: an explicit sub-buffer object.
    SubBuffer(&'a [T]),
    /// CUDA: parent buffer plus element offset.
    PointerArithmetic {
        /// The whole parent allocation.
        parent: &'a [T],
        /// Element offset of this view's origin.
        offset: usize,
    },
}

impl<'a, T: Copy> BufferView<'a, T> {
    /// Create a view of `parent[offset..offset+len]` per dialect `D`.
    pub fn new<D: Dialect>(parent: &'a [T], offset: usize, len: usize) -> Self {
        if D::USES_SUB_BUFFERS {
            BufferView::SubBuffer(&parent[offset..offset + len])
        } else {
            debug_assert!(offset + len <= parent.len());
            BufferView::PointerArithmetic { parent, offset }
        }
    }

    /// Element `i` of the view.
    #[inline(always)]
    pub fn at(&self, i: usize) -> T {
        match *self {
            BufferView::SubBuffer(s) => s[i],
            BufferView::PointerArithmetic { parent, offset } => parent[offset + i],
        }
    }

    /// Contiguous sub-slice `[i, i+n)` of the view (used to feed the
    /// vectorizable inner loops).
    #[inline(always)]
    pub fn slice(&self, i: usize, n: usize) -> &'a [T] {
        match *self {
            BufferView::SubBuffer(s) => &s[i..i + n],
            BufferView::PointerArithmetic { parent, offset } => &parent[offset + i..offset + i + n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::catalog;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn dialect_constants() {
        assert_eq!(CudaDialect::NAME, "CUDA");
        assert!(!CudaDialect::USES_SUB_BUFFERS);
        assert_eq!(OpenClDialect::NAME, "OpenCL");
        assert!(OpenClDialect::USES_SUB_BUFFERS);
        assert!(OpenClDialect::launch_overhead_us() > CudaDialect::launch_overhead_us());
    }

    #[test]
    fn fma_both_paths_agree() {
        for enabled in [false, true] {
            assert_eq!(fma(enabled, 2.0_f64, 3.0, 4.0), 10.0);
            assert_eq!(fma(enabled, 2.0_f32, 3.0, 4.0), 10.0);
        }
    }

    #[test]
    fn buffer_views_agree_across_dialects() {
        let parent: Vec<f64> = (0..100).map(|x| x as f64).collect();
        let cl = BufferView::new::<OpenClDialect>(&parent, 10, 20);
        let cu = BufferView::new::<CudaDialect>(&parent, 10, 20);
        for i in 0..20 {
            assert_eq!(cl.at(i), cu.at(i));
        }
        assert_eq!(cl.slice(5, 4), cu.slice(5, 4));
    }

    #[test]
    fn fma_enablement_policy() {
        let p5000 = catalog::quadro_p5000();
        assert!(CudaDialect::fma_enabled(&p5000));
        assert!(OpenClDialect::fma_enabled(&p5000));
        let mut no_fma = catalog::radeon_r9_nano();
        no_fma.supports_fma = false;
        assert!(!OpenClDialect::fma_enabled(&no_fma));
        assert!(
            CudaDialect::fma_enabled(&no_fma),
            "CUDA contracts regardless"
        );
    }
}
