//! Simulated accelerator devices.
//!
//! No GPU is available in this environment, so the accelerator model runs on
//! a *device simulator*: kernels are real Rust code executed functionally on
//! the host over an explicit work-group grid, device "global memory" is a
//! host-side buffer arena with modeled PCIe transfer costs, and elapsed
//! device time comes from the roofline performance model in [`crate::perf`],
//! parameterized by the specs of the paper's Table I/II hardware
//! (see [`catalog`]). The OpenCL-x86 device is the exception: it executes on
//! real host threads and is timed with the wall clock, exactly as in the
//! paper.

use std::time::Duration;

/// GPU / CPU vendor, which drives driver availability and tuning defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// NVIDIA (CUDA + OpenCL).
    Nvidia,
    /// AMD (OpenCL).
    Amd,
    /// Intel (OpenCL CPU driver / Xeon Phi).
    Intel,
}

/// Broad device class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Discrete GPU.
    Gpu,
    /// Conventional multicore CPU.
    Cpu,
    /// Manycore accelerator/CPU (Xeon Phi class).
    ManyCore,
}

/// Static description of one device (the simulator's "Table II" row).
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Hardware vendor.
    pub vendor: Vendor,
    /// Device class.
    pub kind: DeviceKind,
    /// Parallel cores (CUDA cores / stream processors / HW threads).
    pub cores: u32,
    /// Device global memory in GB.
    pub memory_gb: f64,
    /// Global memory bandwidth in GB/s (Table II "Bandwidth").
    pub bandwidth_gbs: f64,
    /// Theoretical single-precision peak in GFLOPS (Table II "SP compute").
    pub sp_gflops: f64,
    /// Theoretical double-precision peak in GFLOPS.
    pub dp_gflops: f64,
    /// Local (shared/LDS) memory available per work-group, in KiB. Drives
    /// the paper's AMD codon-kernel adaptation (§VII-B1).
    pub local_mem_kib: u32,
    /// Whether fast fused multiply-add is available (`FP_FAST_FMA(F)`).
    pub supports_fma: bool,
}

impl DeviceSpec {
    /// Local memory in bytes.
    pub fn local_mem_bytes(&self) -> usize {
        self.local_mem_kib as usize * 1024
    }
}

/// The devices used in the paper's evaluation (Tables I and II), plus the
/// host CPU as an OpenCL-x86 device.
pub mod catalog {
    use super::*;

    /// NVIDIA Quadro P5000 (Pascal): Table II column 1.
    pub fn quadro_p5000() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA Quadro P5000 (simulated)",
            vendor: Vendor::Nvidia,
            kind: DeviceKind::Gpu,
            cores: 2560,
            memory_gb: 16.0,
            bandwidth_gbs: 288.0,
            sp_gflops: 8900.0,
            dp_gflops: 278.0, // Pascal GP104: 1/32 SP rate
            local_mem_kib: 48,
            supports_fma: true,
        }
    }

    /// AMD Radeon R9 Nano (Fiji): Table II column 2.
    pub fn radeon_r9_nano() -> DeviceSpec {
        DeviceSpec {
            name: "AMD Radeon R9 Nano (simulated)",
            vendor: Vendor::Amd,
            kind: DeviceKind::Gpu,
            cores: 4096,
            memory_gb: 4.0,
            bandwidth_gbs: 512.0,
            sp_gflops: 8192.0,
            dp_gflops: 512.0, // Fiji: 1/16 SP rate
            local_mem_kib: 32,
            supports_fma: true,
        }
    }

    /// AMD FirePro S9170 (Hawaii): Table II column 3.
    pub fn firepro_s9170() -> DeviceSpec {
        DeviceSpec {
            name: "AMD FirePro S9170 (simulated)",
            vendor: Vendor::Amd,
            kind: DeviceKind::Gpu,
            cores: 2816,
            memory_gb: 32.0,
            bandwidth_gbs: 320.0,
            sp_gflops: 5240.0,
            dp_gflops: 2620.0, // Hawaii FirePro: 1/2 SP rate
            local_mem_kib: 32,
            supports_fma: true,
        }
    }

    /// Intel Xeon Phi 7210 (Knights Landing, used as a self-boot CPU).
    pub fn xeon_phi_7210() -> DeviceSpec {
        DeviceSpec {
            name: "Intel Xeon Phi 7210 (simulated)",
            vendor: Vendor::Intel,
            kind: DeviceKind::ManyCore,
            cores: 256, // 64 cores × 4 threads
            memory_gb: 16.0,
            bandwidth_gbs: 400.0, // MCDRAM
            sp_gflops: 5324.0,
            dp_gflops: 2662.0,
            local_mem_kib: 32,
            supports_fma: true,
        }
    }

    /// Dual Intel Xeon E5-2680v4 (the paper's system 2 host).
    pub fn dual_xeon_e5_2680v4() -> DeviceSpec {
        DeviceSpec {
            name: "Intel Xeon E5-2680v4 x2 (simulated)",
            vendor: Vendor::Intel,
            kind: DeviceKind::Cpu,
            cores: 56, // 2 × 14 cores × 2 threads
            memory_gb: 256.0,
            bandwidth_gbs: 153.0, // 2 × 76.8 GB/s
            sp_gflops: 2150.0,    // 2 × 14 cores × 2.4 GHz × 32 flops/cycle
            dp_gflops: 1075.0,
            local_mem_kib: 32,
            supports_fma: true,
        }
    }

    /// All simulated devices, GPU-first (BEAGLE's default resource order).
    pub fn all() -> Vec<DeviceSpec> {
        vec![
            quadro_p5000(),
            radeon_r9_nano(),
            firepro_s9170(),
            xeon_phi_7210(),
            dual_xeon_e5_2680v4(),
        ]
    }
}

/// Handle to a device-memory buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// Simulated device global memory: a buffer arena with transfer accounting.
///
/// Host↔device copies advance the simulated clock at PCIe 3.0 x16 speed;
/// this is what makes BEAGLE's "minimize data transfer" design visible in
/// the simulated numbers.
pub struct DeviceMemory<T> {
    buffers: Vec<Vec<T>>,
    bytes_allocated: usize,
    capacity_bytes: usize,
    /// Total bytes moved host→device / device→host (for reporting).
    pub bytes_uploaded: usize,
    /// Total bytes moved device→host.
    pub bytes_downloaded: usize,
}

/// Effective PCIe 3.0 x16 throughput used for transfer timing.
pub const PCIE_GBS: f64 = 12.0;

impl<T: Copy + Default> DeviceMemory<T> {
    /// An arena capped at the device's global memory size.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            buffers: Vec::new(),
            bytes_allocated: 0,
            capacity_bytes,
            bytes_uploaded: 0,
            bytes_downloaded: 0,
        }
    }

    /// Allocate a zeroed buffer of `len` elements. Panics if the simulated
    /// device is out of memory (BEAGLE would fail instance creation).
    pub fn alloc(&mut self, len: usize) -> BufferId {
        let bytes = len * std::mem::size_of::<T>();
        assert!(
            self.bytes_allocated + bytes <= self.capacity_bytes,
            "simulated device out of memory: {} + {} > {}",
            self.bytes_allocated,
            bytes,
            self.capacity_bytes
        );
        self.bytes_allocated += bytes;
        self.buffers.push(vec![T::default(); len]);
        BufferId(self.buffers.len() - 1)
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.bytes_allocated
    }

    /// Host→device copy; returns the simulated transfer duration.
    pub fn upload(&mut self, buf: BufferId, data: &[T]) -> Duration {
        let dst = &mut self.buffers[buf.0];
        assert!(data.len() <= dst.len(), "upload larger than buffer");
        dst[..data.len()].copy_from_slice(data);
        let bytes = std::mem::size_of_val(data);
        self.bytes_uploaded += bytes;
        transfer_time(bytes)
    }

    /// Device→host copy; returns data and the simulated transfer duration.
    pub fn download(&mut self, buf: BufferId) -> (Vec<T>, Duration) {
        let data = self.buffers[buf.0].clone();
        let bytes = std::mem::size_of_val(data.as_slice());
        self.bytes_downloaded += bytes;
        (data, transfer_time(bytes))
    }

    /// Borrow a buffer (device-side access, no transfer cost).
    pub fn get(&self, buf: BufferId) -> &[T] {
        &self.buffers[buf.0]
    }

    /// Mutably borrow a buffer (device-side access, no transfer cost).
    pub fn get_mut(&mut self, buf: BufferId) -> &mut [T] {
        &mut self.buffers[buf.0]
    }

    /// Borrow two distinct buffers, one mutably — the shape every kernel
    /// launch needs (destination + sources).
    pub fn get_mut_and<'a>(
        &'a mut self,
        dst: BufferId,
        srcs: &[BufferId],
    ) -> (&'a mut [T], Vec<&'a [T]>) {
        assert!(!srcs.contains(&dst), "kernel destination aliases a source");
        // SAFETY: dst is disjoint from every src (asserted above), and all
        // ids index distinct Vec allocations, so the mutable and shared
        // borrows never overlap.
        let dst_slice: &'a mut [T] = unsafe {
            let p = self.buffers[dst.0].as_mut_ptr();
            std::slice::from_raw_parts_mut(p, self.buffers[dst.0].len())
        };
        let src_slices = srcs
            .iter()
            .map(|s| {
                let v = &self.buffers[s.0];
                unsafe { std::slice::from_raw_parts(v.as_ptr(), v.len()) }
            })
            .collect();
        (dst_slice, src_slices)
    }
}

fn transfer_time(bytes: usize) -> Duration {
    Duration::from_secs_f64(bytes as f64 / (PCIE_GBS * 1e9))
}

/// Simulated device clock: accumulates modeled kernel and transfer time.
#[derive(Debug, Clone, Copy)]
pub struct SimClock {
    elapsed: Duration,
    /// Multiplier applied to every advance — a throughput-skew fault
    /// (thermal throttling, queue congestion) sets this above 1 so the
    /// modeled device delivers proportionally less work per unit time.
    scale: f64,
}

impl Default for SimClock {
    fn default() -> Self {
        Self {
            elapsed: Duration::ZERO,
            scale: 1.0,
        }
    }
}

impl SimClock {
    /// Advance the clock by `d` modeled time, stretched by the current
    /// slowdown scale.
    pub fn advance(&mut self, d: Duration) {
        self.elapsed += if self.scale == 1.0 {
            d
        } else {
            d.mul_f64(self.scale)
        };
    }

    /// Total simulated time.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Set the slowdown multiplier (ignores non-finite or non-positive
    /// values — a fault must never panic the clock).
    pub fn set_scale(&mut self, scale: f64) {
        if scale.is_finite() && scale > 0.0 {
            self.scale = scale;
        }
    }

    /// The current slowdown multiplier.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Reset to zero (benchmark harness does this between measurements).
    /// The slowdown scale persists: a throttled device stays throttled.
    pub fn reset(&mut self) {
        self.elapsed = Duration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_two() {
        let p5000 = catalog::quadro_p5000();
        assert_eq!(p5000.cores, 2560);
        assert_eq!(p5000.bandwidth_gbs, 288.0);
        assert_eq!(p5000.sp_gflops, 8900.0);
        let nano = catalog::radeon_r9_nano();
        assert_eq!(nano.cores, 4096);
        assert_eq!(nano.bandwidth_gbs, 512.0);
        assert_eq!(nano.sp_gflops, 8192.0);
        let s9170 = catalog::firepro_s9170();
        assert_eq!(s9170.cores, 2816);
        assert_eq!(s9170.memory_gb, 32.0);
        assert_eq!(s9170.sp_gflops, 5240.0);
    }

    #[test]
    fn memory_arena_roundtrip() {
        let mut mem = DeviceMemory::<f32>::new(1 << 20);
        let b = mem.alloc(100);
        let t = mem.upload(b, &[1.5; 100]);
        assert!(t > Duration::ZERO);
        let (data, _) = mem.download(b);
        assert!(data.iter().all(|&x| x == 1.5));
        assert_eq!(mem.bytes_uploaded, 400);
        assert_eq!(mem.bytes_downloaded, 400);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn oom_panics() {
        let mut mem = DeviceMemory::<f64>::new(64);
        mem.alloc(100);
    }

    #[test]
    fn disjoint_borrows() {
        let mut mem = DeviceMemory::<f64>::new(1 << 20);
        let a = mem.alloc(4);
        let b = mem.alloc(4);
        let c = mem.alloc(4);
        mem.upload(b, &[2.0; 4]);
        mem.upload(c, &[3.0; 4]);
        let (dst, srcs) = mem.get_mut_and(a, &[b, c]);
        for (i, d) in dst.iter_mut().enumerate() {
            *d = srcs[0][i] * srcs[1][i];
        }
        assert_eq!(mem.get(a), &[6.0; 4]);
    }

    #[test]
    #[should_panic(expected = "aliases")]
    fn aliased_borrow_rejected() {
        let mut mem = DeviceMemory::<f64>::new(1 << 20);
        let a = mem.alloc(4);
        let _ = mem.get_mut_and(a, &[a]);
    }

    #[test]
    fn sim_clock_accumulates() {
        let mut c = SimClock::default();
        c.advance(Duration::from_micros(5));
        c.advance(Duration::from_micros(7));
        assert_eq!(c.elapsed(), Duration::from_micros(12));
        c.reset();
        assert_eq!(c.elapsed(), Duration::ZERO);
    }
}
