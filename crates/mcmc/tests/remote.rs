//! Differential test: MC³ over the likelihood service must reproduce a
//! local run **bit-for-bit**. `run_mc3_remote` consumes the master and
//! chain RNGs exactly as `run_mc3` does, and WIRE-v1 round trips are
//! bit-exact, so the cold-chain trace and every swap decision must be
//! identical whether the likelihoods come from in-process engines or from
//! a loopback server multiplexing the same implementation.

use beagle_core::{InstanceConfig, InstanceSpec};
use beagle_mcmc::{
    run_mc3, run_mc3_remote, BeagleEngine, LikelihoodEngine, Mc3Config, ModelParams,
};
use beagle_phylo::simulate::simulate_alignment;
use beagle_phylo::{SitePatterns, SiteRates, Tree};
use beagle_server::ServerBuilder;
use genomictest::full_manager;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn remote_mc3_cold_trace_is_bit_identical_to_local() {
    let taxa = 6;
    let mut rng = SmallRng::seed_from_u64(41);
    let true_tree = Tree::random(taxa, 0.1, &mut rng);
    let model = ModelParams::Nucleotide { kappa: 3.0 }.build();
    let rates = SiteRates::constant();
    let aln = simulate_alignment(&true_tree, &model, &rates, 150, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    let start = Tree::random(taxa, 0.1, &mut rng);
    let params = ModelParams::Nucleotide { kappa: 2.0 };
    let config = Mc3Config {
        chains: 2,
        generations: 60,
        swap_interval: 10,
        sample_interval: 10,
        heating: 0.1,
        seed: 17,
    };
    let manager = full_manager();
    let spec = InstanceSpec::with_config(InstanceConfig::for_tree(
        taxa,
        patterns.pattern_count(),
        4,
        rates.category_count(),
    ));

    // Local reference: one pinned CPU-serial BeagleEngine per chain.
    let mut local_engines: Vec<Box<dyn LikelihoodEngine>> = (0..config.chains)
        .map(|_| {
            let inst = spec
                .clone()
                .named("CPU-serial")
                .instantiate(&manager)
                .expect("local instance");
            Box::new(BeagleEngine::new(
                inst,
                patterns.clone(),
                rates.clone(),
                true,
            )) as Box<dyn LikelihoodEngine>
        })
        .collect();
    let local = run_mc3(&config, &start, params, &mut local_engines);

    // Remote run: a loopback server pinned to the same implementation.
    let server = ServerBuilder::from_spec(spec)
        .workers(2)
        .pin(["CPU-serial"])
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let endpoint = beagle_server::Endpoint::Tcp(server.tcp_addr().expect("tcp").to_string());
    let remote = run_mc3_remote(&config, &start, params, &endpoint, &patterns, &rates, true)
        .expect("remote MC3 run");
    assert!(server.drain(None), "idle server must drain fully");

    let local_bits: Vec<u64> = local.cold_trace.iter().map(|x| x.to_bits()).collect();
    let remote_bits: Vec<u64> = remote.cold_trace.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        remote_bits, local_bits,
        "remote cold trace must be bit-identical to the local run"
    );
    assert_eq!(
        remote.final_log_likelihood.to_bits(),
        local.final_log_likelihood.to_bits()
    );
    assert_eq!(remote.swaps_attempted, local.swaps_attempted);
    assert_eq!(
        remote.swaps_accepted, local.swaps_accepted,
        "identical likelihoods and RNG streams must yield identical swaps"
    );
}
