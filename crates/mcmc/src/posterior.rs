//! Posterior sample collection and MCMC diagnostics.
//!
//! What a user keeps after an MC³ run: cold-chain samples of topology,
//! branch lengths, and substitution parameters, summarized as clade
//! supports, parameter means/intervals, and an effective-sample-size (ESS)
//! diagnostic — the quantities MrBayes prints in its `.parts` / `.pstat`
//! files.

use beagle_phylo::clades::{clade_supports, Clade};
use beagle_phylo::Tree;

use crate::chain::ModelParams;

/// One cold-chain sample.
#[derive(Clone)]
pub struct Sample {
    /// Generation at which the sample was taken.
    pub generation: usize,
    /// Sampled tree (topology + branch lengths).
    pub tree: Tree,
    /// Sampled substitution parameters.
    pub params: ModelParams,
    /// Log-likelihood of the sample.
    pub log_likelihood: f64,
}

/// A collected posterior sample with summary methods.
#[derive(Default)]
pub struct Posterior {
    samples: Vec<Sample>,
}

impl Posterior {
    /// Empty posterior.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sample.
    pub fn record(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Discard the first `fraction` of samples as burn-in (MrBayes default
    /// is 25%).
    pub fn burn_in(&self, fraction: f64) -> Posterior {
        assert!((0.0..1.0).contains(&fraction));
        let skip = (self.samples.len() as f64 * fraction).floor() as usize;
        Posterior {
            samples: self.samples[skip..].to_vec(),
        }
    }

    /// Posterior clade supports, sorted by decreasing support.
    pub fn clade_supports(&self) -> Vec<(Clade, f64)> {
        let trees: Vec<Tree> = self.samples.iter().map(|s| s.tree.clone()).collect();
        clade_supports(&trees)
    }

    /// Posterior mean and 95% central interval of `kappa`.
    pub fn kappa_summary(&self) -> ParameterSummary {
        summarize(self.samples.iter().map(|s| match s.params {
            ModelParams::Nucleotide { kappa } | ModelParams::Codon { kappa, .. } => kappa,
        }))
    }

    /// Posterior mean and 95% central interval of `omega` (codon runs only).
    pub fn omega_summary(&self) -> Option<ParameterSummary> {
        let omegas: Vec<f64> = self
            .samples
            .iter()
            .filter_map(|s| match s.params {
                ModelParams::Codon { omega, .. } => Some(omega),
                ModelParams::Nucleotide { .. } => None,
            })
            .collect();
        if omegas.is_empty() {
            None
        } else {
            Some(summarize(omegas.into_iter()))
        }
    }

    /// Log-likelihood trace.
    pub fn lnl_trace(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.log_likelihood).collect()
    }

    /// Effective sample size of the log-likelihood trace.
    pub fn lnl_ess(&self) -> f64 {
        effective_sample_size(&self.lnl_trace())
    }
}

/// Mean and central 95% interval of a scalar parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParameterSummary {
    /// Posterior mean.
    pub mean: f64,
    /// 2.5% quantile.
    pub lower95: f64,
    /// 97.5% quantile.
    pub upper95: f64,
    /// Sample count.
    pub n: usize,
}

fn summarize(values: impl Iterator<Item = f64>) -> ParameterSummary {
    let mut v: Vec<f64> = values.collect();
    assert!(!v.is_empty(), "cannot summarize an empty sample");
    v.sort_by(f64::total_cmp);
    let n = v.len();
    let mean = v.iter().sum::<f64>() / n as f64;
    let q = |p: f64| v[((n as f64 - 1.0) * p).round() as usize];
    ParameterSummary {
        mean,
        lower95: q(0.025),
        upper95: q(0.975),
        n,
    }
}

/// Effective sample size by the initial positive sequence estimator
/// (Geyer 1992): `ESS = n / (1 + 2 Σ ρ_k)` with the autocorrelation sum
/// truncated at the first non-positive pair sum.
pub fn effective_sample_size(trace: &[f64]) -> f64 {
    let n = trace.len();
    if n < 4 {
        return n as f64;
    }
    let mean = trace.iter().sum::<f64>() / n as f64;
    let var: f64 = trace.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        // A constant trace carries no Monte-Carlo error; call it fully mixed.
        return n as f64;
    }
    let autocov = |k: usize| -> f64 {
        trace[..n - k]
            .iter()
            .zip(&trace[k..])
            .map(|(a, b)| (a - mean) * (b - mean))
            .sum::<f64>()
            / n as f64
    };
    let mut rho_sum = 0.0;
    let mut k = 1;
    while k + 1 < n {
        let pair = (autocov(k) + autocov(k + 1)) / var;
        if pair <= 0.0 {
            break;
        }
        rho_sum += pair;
        k += 2;
    }
    (n as f64 / (1.0 + 2.0 * rho_sum)).clamp(1.0, n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample_with(kappa: f64, lnl: f64, tree: Tree, generation: usize) -> Sample {
        Sample {
            generation,
            tree,
            params: ModelParams::Nucleotide { kappa },
            log_likelihood: lnl,
        }
    }

    #[test]
    fn burn_in_drops_prefix() {
        let t = Tree::ladder(4, 0.1);
        let mut p = Posterior::new();
        for i in 0..100 {
            p.record(sample_with(2.0, -(i as f64), t.clone(), i));
        }
        let kept = p.burn_in(0.25);
        assert_eq!(kept.len(), 75);
        assert_eq!(kept.samples()[0].generation, 25);
    }

    #[test]
    fn kappa_summary_statistics() {
        let t = Tree::ladder(4, 0.1);
        let mut p = Posterior::new();
        for i in 1..=99 {
            p.record(sample_with(i as f64 / 10.0, -1.0, t.clone(), i));
        }
        let s = p.kappa_summary();
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!(s.lower95 < 0.5 && s.upper95 > 9.4);
        assert_eq!(s.n, 99);
    }

    #[test]
    fn omega_only_for_codon_runs() {
        let t = Tree::ladder(4, 0.1);
        let mut p = Posterior::new();
        p.record(sample_with(2.0, -1.0, t.clone(), 0));
        assert!(p.omega_summary().is_none());
        p.record(Sample {
            generation: 1,
            tree: t,
            params: ModelParams::Codon {
                kappa: 2.0,
                omega: 0.4,
            },
            log_likelihood: -1.0,
        });
        let s = p.omega_summary().unwrap();
        assert!((s.mean - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ess_of_iid_noise_is_near_n() {
        let mut rng = SmallRng::seed_from_u64(9);
        let trace: Vec<f64> = (0..2000).map(|_| rng.random_range(-1.0..1.0)).collect();
        let ess = effective_sample_size(&trace);
        assert!(ess > 1200.0, "iid ESS should approach n: {ess}");
    }

    #[test]
    fn ess_of_correlated_chain_is_small() {
        // AR(1) with strong autocorrelation.
        let mut rng = SmallRng::seed_from_u64(10);
        let mut x = 0.0;
        let trace: Vec<f64> = (0..2000)
            .map(|_| {
                x = 0.98 * x + rng.random_range(-0.1..0.1);
                x
            })
            .collect();
        let ess = effective_sample_size(&trace);
        assert!(
            ess < 300.0,
            "highly autocorrelated ESS must be small: {ess}"
        );
    }

    #[test]
    fn ess_constant_trace() {
        assert_eq!(effective_sample_size(&[3.0; 50]), 50.0);
    }

    #[test]
    fn clade_supports_from_posterior() {
        let t = Tree::ladder(5, 0.1);
        let mut p = Posterior::new();
        for i in 0..10 {
            p.record(sample_with(2.0, -1.0, t.clone(), i));
        }
        let cs = p.clade_supports();
        assert!(!cs.is_empty());
        assert!(cs.iter().all(|(_, s)| (*s - 1.0).abs() < 1e-12));
    }
}
