//! # beagle-mcmc — "MrBayes-lite"
//!
//! A Metropolis-coupled MCMC (MC³) Bayesian phylogenetic sampler, standing
//! in for MrBayes 3.2.6 in the paper's application-level benchmark (Fig. 6).
//! See DESIGN.md §1 for the substitution argument: the sampler and proposal
//! mix are held fixed while the likelihood provider varies, so runtime
//! ratios between providers transfer.
//!
//! * [`engine`] — pluggable likelihood engines: the MrBayes-style *native
//!   SSE* baseline (no BEAGLE involved) and [`engine::BeagleEngine`]
//!   wrapping any BEAGLE-RS instance
//! * [`chain`] — chain state, priors, and the proposal mix (branch-length
//!   multipliers, NNI topology moves, parameter multipliers)
//! * [`mc3`] — the coupled-chain runner: one thread per chain ("MPI rank"),
//!   temperature ladder, periodic state swaps

pub mod chain;
pub mod engine;
pub mod mc3;
pub mod posterior;

pub use chain::{ChainState, MarkovChain, ModelParams};
pub use engine::{BeagleEngine, LikelihoodEngine, NativeEngine, RemoteEngine};
pub use mc3::{run_mc3, run_mc3_remote, Mc3Config, Mc3Result};
pub use posterior::{Posterior, Sample};
