//! Metropolis-coupled MCMC (MC³): multiple chains at different temperatures
//! with periodic state swaps, run concurrently — "MrBayes uses MPI to
//! concurrently compute separate Markov chain Monte Carlo chains across
//! processors" (§VIII-C); here the ranks are threads, each owning its own
//! likelihood engine (its own BEAGLE instance), which is exactly how
//! MrBayes+BEAGLE deploys.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use beagle_phylo::Tree;

use crate::chain::{log_posterior, ChainStats, MarkovChain, ModelParams};
use crate::engine::LikelihoodEngine;

/// MC³ run configuration.
#[derive(Clone, Copy, Debug)]
pub struct Mc3Config {
    /// Number of coupled chains (MrBayes default 4).
    pub chains: usize,
    /// Total generations per chain.
    pub generations: usize,
    /// Generations between swap attempts.
    pub swap_interval: usize,
    /// Generations between cold-chain posterior samples (0 = don't sample).
    pub sample_interval: usize,
    /// Heating increment λ: chain `i` runs at β = 1/(1 + λ·i).
    pub heating: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for Mc3Config {
    fn default() -> Self {
        Self {
            chains: 4,
            generations: 1000,
            swap_interval: 10,
            sample_interval: 10,
            heating: 0.1,
            seed: 1,
        }
    }
}

/// Outcome of an MC³ run.
pub struct Mc3Result {
    /// Cold-chain log-likelihood trace (one sample per swap round).
    pub cold_trace: Vec<f64>,
    /// Final cold-chain log-likelihood.
    pub final_log_likelihood: f64,
    /// Per-chain proposal statistics.
    pub chain_stats: Vec<ChainStats>,
    /// Swap attempts / acceptances.
    pub swaps_attempted: usize,
    /// Accepted swaps.
    pub swaps_accepted: usize,
    /// Total likelihood-engine time summed over chains (simulated time for
    /// simulated devices, wall time otherwise).
    pub likelihood_time: Duration,
    /// Wall-clock duration of the whole run.
    pub wall_time: Duration,
    /// Cold-chain posterior samples (taken every `sample_interval`
    /// generations, aligned to swap rounds).
    pub posterior: crate::posterior::Posterior,
}

/// Run MC³: `engines[i]` provides the likelihood for chain `i`.
///
/// Chains advance concurrently between swap points (scoped threads, one per
/// chain/engine — the "MPI rank" analogue).
pub fn run_mc3(
    config: &Mc3Config,
    starting_tree: &Tree,
    params: ModelParams,
    engines: &mut [Box<dyn LikelihoodEngine>],
) -> Mc3Result {
    assert_eq!(engines.len(), config.chains, "one engine per chain");
    assert!(config.chains >= 1);
    let wall_start = Instant::now();
    let mut master_rng = SmallRng::seed_from_u64(config.seed);

    // Initialize chains.
    let mut chains: Vec<MarkovChain> = engines
        .iter_mut()
        .enumerate()
        .map(|(i, engine)| {
            let beta = 1.0 / (1.0 + config.heating * i as f64);
            MarkovChain::new(
                starting_tree.clone(),
                params,
                beta,
                config.seed.wrapping_add(1000 + i as u64),
                engine.as_mut(),
            )
        })
        .collect();

    let mut cold_trace = Vec::new();
    let mut posterior = crate::posterior::Posterior::new();
    let mut swaps_attempted = 0;
    let mut swaps_accepted = 0;
    let rounds = config.generations / config.swap_interval.max(1);

    for round in 0..rounds {
        // Advance every chain concurrently for one swap interval.
        std::thread::scope(|scope| {
            for (chain, engine) in chains.iter_mut().zip(engines.iter_mut()) {
                scope.spawn(move || chain.advance(config.swap_interval, engine.as_mut()));
            }
        });

        // Attempt one swap between a random adjacent pair (MrBayes swaps
        // random pairs; adjacent-temperature swaps mix best).
        if config.chains >= 2 {
            let i = master_rng.random_range(0..config.chains - 1);
            let j = i + 1;
            let (pi, pj) = (
                log_posterior(&chains[i].state),
                log_posterior(&chains[j].state),
            );
            let (bi, bj) = (chains[i].beta, chains[j].beta);
            let log_ratio = (bi - bj) * (pj - pi);
            swaps_attempted += 1;
            if log_ratio >= 0.0 || master_rng.random_range(0.0..1.0) < log_ratio.exp() {
                // Swap the *states*, keep temperatures in place.
                let tmp = chains[i].state.clone();
                chains[i].state = chains[j].state.clone();
                chains[j].state = tmp;
                swaps_accepted += 1;
            }
        }
        cold_trace.push(chains[0].state.log_likelihood);

        // Cold-chain posterior sampling, aligned to swap rounds.
        let generation = (round + 1) * config.swap_interval;
        if config.sample_interval > 0 && generation.is_multiple_of(config.sample_interval) {
            posterior.record(crate::posterior::Sample {
                generation,
                tree: chains[0].state.tree.clone(),
                params: chains[0].state.params,
                log_likelihood: chains[0].state.log_likelihood,
            });
        }
    }

    Mc3Result {
        final_log_likelihood: chains[0].state.log_likelihood,
        cold_trace,
        chain_stats: chains.iter().map(|c| c.stats).collect(),
        swaps_attempted,
        swaps_accepted,
        likelihood_time: engines.iter().map(|e| e.elapsed()).sum(),
        wall_time: wall_start.elapsed(),
        posterior,
    }
}

/// Run MC³ over a worker pool: `engines` back a [`Pool`] of
/// `engines.len()` workers, and every chain advance is a pool job — so 32
/// chains can share 4 engines instead of requiring one engine each (the
/// engine fleet, not the chain count, is what costs device memory).
///
/// The master RNG is consumed in exactly the order [`run_mc3`] consumes it,
/// and each chain's trajectory depends only on its own RNG and its
/// likelihood results — so when the engines are bit-exact replicas of each
/// other (the standard deployment), the cold trace is bit-identical to the
/// threaded runner's regardless of which engine serves which chain in which
/// round.
pub fn run_mc3_pooled(
    config: &Mc3Config,
    starting_tree: &Tree,
    params: ModelParams,
    engines: Vec<Box<dyn LikelihoodEngine>>,
) -> Mc3Result {
    use beagle_core::{Lane, Pool};

    assert!(!engines.is_empty(), "pool needs at least one engine");
    assert!(config.chains >= 1);
    let wall_start = Instant::now();
    let mut master_rng = SmallRng::seed_from_u64(config.seed);

    let pool: Pool<Box<dyn LikelihoodEngine>> = Pool::with_workers(engines);
    let handle = pool.handle();

    // Initialize chains through the pool (each initialization evaluates the
    // starting likelihood on whichever engine is free).
    let tickets: Vec<_> = (0..config.chains)
        .map(|i| {
            let beta = 1.0 / (1.0 + config.heating * i as f64);
            let tree = starting_tree.clone();
            let seed = config.seed.wrapping_add(1000 + i as u64);
            handle
                .submit(
                    Lane::Batch,
                    move |engine: &mut Box<dyn LikelihoodEngine>| {
                        MarkovChain::new(tree, params, beta, seed, engine.as_mut())
                    },
                )
                .expect("fresh pool accepts work")
        })
        .collect();
    let mut chains: Vec<MarkovChain> = tickets
        .into_iter()
        .map(|t| t.wait().expect("pool worker lost"))
        .collect();

    let mut cold_trace = Vec::new();
    let mut posterior = crate::posterior::Posterior::new();
    let mut swaps_attempted = 0;
    let mut swaps_accepted = 0;
    let rounds = config.generations / config.swap_interval.max(1);

    for round in 0..rounds {
        // One job per chain; tickets collected in chain order so the swap
        // logic below sees the same ordering as the threaded runner.
        let tickets: Vec<_> = chains
            .drain(..)
            .map(|mut chain| {
                let interval = config.swap_interval;
                handle
                    .submit(
                        Lane::Batch,
                        move |engine: &mut Box<dyn LikelihoodEngine>| {
                            chain.advance(interval, engine.as_mut());
                            chain
                        },
                    )
                    .expect("pool accepts work while running")
            })
            .collect();
        chains = tickets
            .into_iter()
            .map(|t| t.wait().expect("pool worker lost"))
            .collect();

        if config.chains >= 2 {
            let i = master_rng.random_range(0..config.chains - 1);
            let j = i + 1;
            let (pi, pj) = (
                log_posterior(&chains[i].state),
                log_posterior(&chains[j].state),
            );
            let (bi, bj) = (chains[i].beta, chains[j].beta);
            let log_ratio = (bi - bj) * (pj - pi);
            swaps_attempted += 1;
            if log_ratio >= 0.0 || master_rng.random_range(0.0..1.0) < log_ratio.exp() {
                let tmp = chains[i].state.clone();
                chains[i].state = chains[j].state.clone();
                chains[j].state = tmp;
                swaps_accepted += 1;
            }
        }
        cold_trace.push(chains[0].state.log_likelihood);

        let generation = (round + 1) * config.swap_interval;
        if config.sample_interval > 0 && generation.is_multiple_of(config.sample_interval) {
            posterior.record(crate::posterior::Sample {
                generation,
                tree: chains[0].state.tree.clone(),
                params: chains[0].state.params,
                log_likelihood: chains[0].state.log_likelihood,
            });
        }
    }

    let (_, fleet) = pool.shutdown_drain(None);
    Mc3Result {
        final_log_likelihood: chains[0].state.log_likelihood,
        cold_trace,
        chain_stats: chains.iter().map(|c| c.stats).collect(),
        swaps_attempted,
        swaps_accepted,
        likelihood_time: fleet.iter().map(|e| e.elapsed()).sum(),
        wall_time: wall_start.elapsed(),
        posterior,
    }
}

/// Run MC³ against a remote likelihood service: one blocking client
/// connection per chain (the "MPI rank" analogue, over sockets), all
/// multiplexed server-side onto the service's instance pool.
///
/// Delegates to [`run_mc3`] with [`crate::engine::RemoteEngine`]s, so the
/// master RNG and every chain RNG are consumed in exactly the same order as
/// a local run — and since WIRE-v1 round trips are bit-exact, the cold
/// trace is bit-identical to [`run_mc3`] on local engines of the same
/// implementation with the same seed.
pub fn run_mc3_remote(
    config: &Mc3Config,
    starting_tree: &Tree,
    params: ModelParams,
    endpoint: &beagle_server::Endpoint,
    patterns: &beagle_phylo::SitePatterns,
    rates: &beagle_phylo::SiteRates,
    scaled: bool,
) -> Result<Mc3Result, beagle_server::ClientError> {
    let mut engines: Vec<Box<dyn LikelihoodEngine>> = Vec::with_capacity(config.chains);
    for _ in 0..config.chains {
        engines.push(Box::new(crate::engine::RemoteEngine::connect(
            endpoint.clone(),
            patterns.clone(),
            rates.clone(),
            scaled,
        )?));
    }
    Ok(run_mc3(config, starting_tree, params, &mut engines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NativeEngine;
    use beagle_phylo::simulate::simulate_alignment;
    use beagle_phylo::{SitePatterns, SiteRates};

    fn engines(
        n: usize,
        taxa: usize,
        patterns: &SitePatterns,
        rates: &SiteRates,
    ) -> Vec<Box<dyn LikelihoodEngine>> {
        (0..n)
            .map(|_| {
                Box::new(NativeEngine::<f64>::new(
                    taxa,
                    patterns.clone(),
                    rates.clone(),
                    4,
                )) as Box<dyn LikelihoodEngine>
            })
            .collect()
    }

    #[test]
    fn mc3_runs_and_improves_from_perturbed_start() {
        let mut rng = SmallRng::seed_from_u64(21);
        let true_tree = Tree::random(8, 0.1, &mut rng);
        let model = ModelParams::Nucleotide { kappa: 3.0 }.build();
        let rates = SiteRates::constant();
        let aln = simulate_alignment(&true_tree, &model, &rates, 400, &mut rng);
        let patterns = SitePatterns::compress(&aln);

        // Start from a random tree (not the truth).
        let start = Tree::random(8, 0.1, &mut rng);
        let config = Mc3Config {
            chains: 4,
            generations: 400,
            swap_interval: 10,
            sample_interval: 10,
            heating: 0.1,
            seed: 3,
        };
        let mut eng = engines(4, 8, &patterns, &rates);
        let result = run_mc3(
            &config,
            &start,
            ModelParams::Nucleotide { kappa: 2.0 },
            &mut eng,
        );

        assert_eq!(result.cold_trace.len(), 40);
        assert!(result.swaps_attempted > 0);
        assert!(result.final_log_likelihood.is_finite());
        // The sampler should improve on the starting likelihood.
        let first = result.cold_trace[0];
        assert!(
            result.final_log_likelihood >= first,
            "final {} vs first {}",
            result.final_log_likelihood,
            first
        );
        assert!(result.likelihood_time > Duration::ZERO);
    }

    #[test]
    fn single_chain_works() {
        let mut rng = SmallRng::seed_from_u64(22);
        let tree = Tree::random(5, 0.1, &mut rng);
        let model = ModelParams::Nucleotide { kappa: 2.0 }.build();
        let rates = SiteRates::constant();
        let aln = simulate_alignment(&tree, &model, &rates, 100, &mut rng);
        let patterns = SitePatterns::compress(&aln);
        let config = Mc3Config {
            chains: 1,
            generations: 50,
            swap_interval: 5,
            sample_interval: 5,
            heating: 0.1,
            seed: 4,
        };
        let mut eng = engines(1, 5, &patterns, &rates);
        let result = run_mc3(
            &config,
            &tree,
            ModelParams::Nucleotide { kappa: 2.0 },
            &mut eng,
        );
        assert_eq!(
            result.swaps_attempted, 0,
            "no swap partner for a single chain"
        );
        assert!(result.final_log_likelihood.is_finite());
    }

    #[test]
    fn posterior_collected_at_sample_interval() {
        let mut rng = SmallRng::seed_from_u64(31);
        let tree = Tree::random(6, 0.1, &mut rng);
        let model = ModelParams::Nucleotide { kappa: 2.0 }.build();
        let rates = SiteRates::constant();
        let aln = simulate_alignment(&tree, &model, &rates, 150, &mut rng);
        let patterns = SitePatterns::compress(&aln);
        let config = Mc3Config {
            chains: 2,
            generations: 100,
            swap_interval: 10,
            sample_interval: 20,
            heating: 0.1,
            seed: 5,
        };
        let mut eng = engines(2, 6, &patterns, &rates);
        let result = run_mc3(
            &config,
            &tree,
            ModelParams::Nucleotide { kappa: 2.0 },
            &mut eng,
        );
        // Samples at generations 20, 40, 60, 80, 100.
        assert_eq!(result.posterior.len(), 5);
        let gens: Vec<usize> = result
            .posterior
            .samples()
            .iter()
            .map(|s| s.generation)
            .collect();
        assert_eq!(gens, vec![20, 40, 60, 80, 100]);
        // Summaries are well-formed.
        let k = result.posterior.kappa_summary();
        assert!(k.mean > 0.0 && k.lower95 <= k.mean && k.mean <= k.upper95);
        assert!(!result.posterior.clade_supports().is_empty());
        // sample_interval = 0 disables collection.
        let config2 = Mc3Config {
            sample_interval: 0,
            ..config
        };
        let mut eng = engines(2, 6, &patterns, &rates);
        let r2 = run_mc3(
            &config2,
            &tree,
            ModelParams::Nucleotide { kappa: 2.0 },
            &mut eng,
        );
        assert!(r2.posterior.is_empty());
    }

    #[test]
    fn pooled_matches_threaded_with_fewer_engines() {
        // 4 chains over a 2-engine pool must reproduce the 4-engine threaded
        // trajectory bit-for-bit: chains carry their own RNGs, the engines
        // are bit-exact replicas, and the master RNG is consumed in the same
        // order.
        let mut rng = SmallRng::seed_from_u64(27);
        let tree = Tree::random(6, 0.1, &mut rng);
        let model = ModelParams::Nucleotide { kappa: 2.0 }.build();
        let rates = SiteRates::constant();
        let aln = simulate_alignment(&tree, &model, &rates, 150, &mut rng);
        let patterns = SitePatterns::compress(&aln);
        let config = Mc3Config {
            chains: 4,
            generations: 200,
            swap_interval: 10,
            sample_interval: 20,
            heating: 0.1,
            seed: 11,
        };
        let mut eng = engines(4, 6, &patterns, &rates);
        let threaded = run_mc3(
            &config,
            &tree,
            ModelParams::Nucleotide { kappa: 2.0 },
            &mut eng,
        );
        let pooled = run_mc3_pooled(
            &config,
            &tree,
            ModelParams::Nucleotide { kappa: 2.0 },
            engines(2, 6, &patterns, &rates),
        );
        assert_eq!(pooled.cold_trace, threaded.cold_trace);
        assert_eq!(pooled.final_log_likelihood, threaded.final_log_likelihood);
        assert_eq!(pooled.swaps_attempted, threaded.swaps_attempted);
        assert_eq!(pooled.swaps_accepted, threaded.swaps_accepted);
        assert_eq!(pooled.posterior.len(), threaded.posterior.len());
        assert!(pooled.likelihood_time > Duration::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SmallRng::seed_from_u64(23);
        let tree = Tree::random(6, 0.1, &mut rng);
        let model = ModelParams::Nucleotide { kappa: 2.0 }.build();
        let rates = SiteRates::constant();
        let aln = simulate_alignment(&tree, &model, &rates, 150, &mut rng);
        let patterns = SitePatterns::compress(&aln);
        let config = Mc3Config {
            chains: 2,
            generations: 100,
            swap_interval: 10,
            sample_interval: 10,
            heating: 0.15,
            seed: 9,
        };
        let run = || {
            let mut eng = engines(2, 6, &patterns, &rates);
            run_mc3(
                &config,
                &tree,
                ModelParams::Nucleotide { kappa: 2.0 },
                &mut eng,
            )
            .cold_trace
        };
        assert_eq!(run(), run(), "same seed, same trajectory");
    }
}
