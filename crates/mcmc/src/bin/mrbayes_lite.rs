//! MrBayes-lite: run a Bayesian MC³ analysis of synthetic data with a
//! selectable likelihood provider.
//!
//! ```text
//! mrbayes-lite [--model nucleotide|codon] [--taxa N] [--patterns N]
//!              [--generations N] [--chains N] [--engine native|native-double|IMPL]
//!              [--single] [--seed N]
//! ```
//!
//! `--engine` takes `native` (MrBayes-style built-in SSE path),
//! `native-double`, or any BEAGLE-RS implementation name substring
//! (e.g. `threadpool`, `OpenCL-x86`, `CUDA`).

use beagle_core::Flags;
use beagle_mcmc::{run_mc3, BeagleEngine, LikelihoodEngine, Mc3Config, ModelParams, NativeEngine};
use beagle_phylo::{SiteRates, Tree};
use genomictest::{full_manager, ModelKind, Problem, Scenario};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Args {
    model: ModelKind,
    taxa: usize,
    patterns: usize,
    generations: usize,
    chains: usize,
    engine: String,
    single: bool,
    seed: u64,
}

fn parse() -> Result<Args, String> {
    let mut a = Args {
        model: ModelKind::Nucleotide,
        taxa: 16,
        patterns: 2000,
        generations: 500,
        chains: 4,
        engine: "native".into(),
        single: false,
        seed: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |n: &str| it.next().ok_or_else(|| format!("{n} needs a value"));
        match arg.as_str() {
            "--model" => {
                a.model = match val("--model")?.as_str() {
                    "nucleotide" | "dna" => ModelKind::Nucleotide,
                    "codon" => ModelKind::Codon,
                    other => return Err(format!("unsupported model {other}")),
                }
            }
            "--taxa" => a.taxa = val("--taxa")?.parse().map_err(|e| format!("{e}"))?,
            "--patterns" => a.patterns = val("--patterns")?.parse().map_err(|e| format!("{e}"))?,
            "--generations" => {
                a.generations = val("--generations")?.parse().map_err(|e| format!("{e}"))?
            }
            "--chains" => a.chains = val("--chains")?.parse().map_err(|e| format!("{e}"))?,
            "--engine" => a.engine = val("--engine")?,
            "--single" => a.single = true,
            "--seed" => a.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                println!(
                    "mrbayes-lite: MC3 Bayesian phylogenetics on BEAGLE-RS\n\
                     options: --model M --taxa N --patterns N --generations N --chains N\n\
                     \x20        --engine native|native-double|IMPL_SUBSTRING --single --seed N"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(a)
}

fn make_engines(args: &Args, problem: &Problem) -> Vec<Box<dyn LikelihoodEngine>> {
    let states = args.model.state_count();
    (0..args.chains)
        .map(|_| -> Box<dyn LikelihoodEngine> {
            match args.engine.as_str() {
                "native" => Box::new(NativeEngine::<f32>::new(
                    args.taxa,
                    problem.patterns.clone(),
                    problem.rates.clone(),
                    states,
                )),
                "native-double" => Box::new(NativeEngine::<f64>::new(
                    args.taxa,
                    problem.patterns.clone(),
                    problem.rates.clone(),
                    states,
                )),
                name => {
                    let manager = full_manager();
                    let full_name = manager
                        .implementation_names()
                        .into_iter()
                        .find(|n| n.contains(name))
                        .unwrap_or_else(|| {
                            eprintln!("mrbayes-lite: no implementation matching '{name}'");
                            std::process::exit(2);
                        });
                    let precision = if args.single {
                        Flags::PRECISION_SINGLE
                    } else {
                        Flags::PRECISION_DOUBLE
                    };
                    let inst = manager
                        .create_instance_by_name(&full_name, &problem.config(), precision)
                        .expect("create instance");
                    Box::new(BeagleEngine::new(
                        inst,
                        problem.patterns.clone(),
                        problem.rates.clone(),
                        true,
                    ))
                }
            }
        })
        .collect()
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mrbayes-lite: {e}");
            std::process::exit(2);
        }
    };

    let scenario = Scenario {
        model: args.model,
        taxa: args.taxa,
        patterns: args.patterns,
        categories: if matches!(args.model, ModelKind::Nucleotide) {
            4
        } else {
            1
        },
        seed: args.seed,
    };
    let problem = Problem::generate(&scenario);
    let mut engines = make_engines(&args, &problem);
    println!(
        "# mrbayes-lite: {:?} model, {} taxa, {} unique patterns, {} chains, {} generations",
        args.model,
        args.taxa,
        problem.patterns.pattern_count(),
        args.chains,
        args.generations
    );
    println!("# engine: {}", engines[0].name());

    let params = match args.model {
        ModelKind::Codon => ModelParams::Codon {
            kappa: 2.0,
            omega: 0.5,
        },
        _ => ModelParams::Nucleotide { kappa: 2.0 },
    };
    let mut rng = SmallRng::seed_from_u64(args.seed.wrapping_mul(31));
    let start_tree = Tree::random(args.taxa, 0.1, &mut rng);
    let _ = SiteRates::constant();

    let config = Mc3Config {
        chains: args.chains,
        generations: args.generations,
        swap_interval: 10,
        sample_interval: 10,
        heating: 0.1,
        seed: args.seed,
    };
    let result = run_mc3(&config, &start_tree, params, &mut engines);

    println!("final cold-chain lnL : {:.4}", result.final_log_likelihood);
    for (i, st) in result.chain_stats.iter().enumerate() {
        println!("chain {i} acceptance  : {:.3}", st.acceptance_rate());
    }
    println!(
        "swaps accepted       : {}/{}",
        result.swaps_accepted, result.swaps_attempted
    );
    println!(
        "likelihood time      : {:.3} s ({})",
        result.likelihood_time.as_secs_f64(),
        if engines[0].name().contains("CUDA") || engines[0].name().contains("OpenCL-GPU") {
            "simulated device time"
        } else {
            "measured wall time"
        }
    );
    println!(
        "total wall time      : {:.3} s",
        result.wall_time.as_secs_f64()
    );

    // Posterior summaries (25% burn-in, MrBayes' default).
    let post = result.posterior.burn_in(0.25);
    if !post.is_empty() {
        let k = post.kappa_summary();
        println!(
            "posterior kappa      : mean {:.3}  95% [{:.3}, {:.3}]  (n = {})",
            k.mean, k.lower95, k.upper95, k.n
        );
        if let Some(o) = post.omega_summary() {
            println!(
                "posterior omega      : mean {:.3}  95% [{:.3}, {:.3}]",
                o.mean, o.lower95, o.upper95
            );
        }
        println!("lnL effective sample : {:.1}", post.lnl_ess());
        println!("clade supports (top 5 of the majority-rule set):");
        for (clade, support) in post.clade_supports().into_iter().take(5) {
            let members: Vec<String> = clade.members().iter().map(|t| format!("t{t}")).collect();
            println!("  {:.2}  ({})", support, members.join(","));
        }
    }
}
