//! A single Markov chain of the MC³ sampler.
//!
//! State = (tree topology, branch lengths, substitution parameters).
//! Proposal mix follows MrBayes' defaults in spirit: mostly branch-length
//! multipliers and NNI topology moves, occasionally a substitution-parameter
//! multiplier (which forces an eigen-decomposition rebuild).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use beagle_phylo::models::codon::{gy94, CodonModelParams};
use beagle_phylo::models::nucleotide::hky85;
use beagle_phylo::{ReversibleModel, Tree};

use crate::engine::LikelihoodEngine;

/// Substitution-model parameterization sampled by the chain.
#[derive(Clone, Copy, Debug)]
pub enum ModelParams {
    /// HKY85 with fixed empirical frequencies.
    Nucleotide {
        /// Transition/transversion ratio.
        kappa: f64,
    },
    /// GY94-style codon model with uniform codon frequencies.
    Codon {
        /// Transition/transversion ratio.
        kappa: f64,
        /// dN/dS.
        omega: f64,
    },
}

impl ModelParams {
    /// Materialize the substitution model.
    pub fn build(&self) -> ReversibleModel {
        match *self {
            ModelParams::Nucleotide { kappa } => hky85(kappa, &[0.3, 0.2, 0.25, 0.25]),
            ModelParams::Codon { kappa, omega } => gy94(
                CodonModelParams { kappa, omega },
                &beagle_phylo::models::codon::uniform_codon_frequencies(),
            ),
        }
    }

    /// Log prior density (up to a constant): Exp(1) on kappa, Exp(1) on omega.
    pub fn log_prior(&self) -> f64 {
        match *self {
            ModelParams::Nucleotide { kappa } => -kappa,
            ModelParams::Codon { kappa, omega } => -kappa - omega,
        }
    }
}

/// Full chain state.
#[derive(Clone)]
pub struct ChainState {
    /// Current tree (topology + branch lengths).
    pub tree: Tree,
    /// Current substitution parameters.
    pub params: ModelParams,
    /// Cached model for `params`.
    pub model: ReversibleModel,
    /// Cached log-likelihood of the state.
    pub log_likelihood: f64,
}

/// Exponential(rate 10) prior on branch lengths, iid.
fn log_branch_prior(tree: &Tree) -> f64 {
    let rate: f64 = 10.0;
    let mut lp = 0.0;
    for (_, t) in tree.branch_assignments() {
        lp += rate.ln() - rate * t;
    }
    lp
}

/// Unnormalized log posterior.
pub fn log_posterior(state: &ChainState) -> f64 {
    state.log_likelihood + log_branch_prior(&state.tree) + state.params.log_prior()
}

/// The proposal kinds in the chain's move mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveKind {
    /// Branch-length multiplier.
    BranchLength,
    /// NNI topology move.
    Topology,
    /// Substitution-parameter multiplier.
    Parameter,
}

impl MoveKind {
    /// All move kinds, in report order.
    pub const ALL: [MoveKind; 3] = [
        MoveKind::BranchLength,
        MoveKind::Topology,
        MoveKind::Parameter,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MoveKind::BranchLength => "branch_length",
            MoveKind::Topology => "topology",
            MoveKind::Parameter => "parameter",
        }
    }
}

/// Proposed/accepted tally for one move kind.
#[derive(Clone, Copy, Debug, Default)]
pub struct MoveStats {
    /// Proposals attempted.
    pub proposed: usize,
    /// Proposals accepted.
    pub accepted: usize,
}

impl MoveStats {
    /// Acceptance fraction.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// Proposal statistics, overall and per move kind.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChainStats {
    /// Proposals attempted.
    pub proposed: usize,
    /// Proposals accepted.
    pub accepted: usize,
    /// Branch-length multiplier moves.
    pub branch_length: MoveStats,
    /// NNI topology moves.
    pub topology: MoveStats,
    /// Substitution-parameter moves.
    pub parameter: MoveStats,
}

impl ChainStats {
    /// Acceptance fraction across all moves.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }

    /// The tally for one move kind.
    pub fn for_move(&self, kind: MoveKind) -> MoveStats {
        match kind {
            MoveKind::BranchLength => self.branch_length,
            MoveKind::Topology => self.topology,
            MoveKind::Parameter => self.parameter,
        }
    }

    fn record(&mut self, kind: MoveKind, accepted: bool) {
        self.proposed += 1;
        let slot = match kind {
            MoveKind::BranchLength => &mut self.branch_length,
            MoveKind::Topology => &mut self.topology,
            MoveKind::Parameter => &mut self.parameter,
        };
        slot.proposed += 1;
        if accepted {
            self.accepted += 1;
            slot.accepted += 1;
        }
    }
}

/// One Metropolis-coupled chain.
pub struct MarkovChain {
    /// Current state.
    pub state: ChainState,
    /// Heating exponent β (cold chain: 1.0).
    pub beta: f64,
    /// Chain-local RNG.
    rng: SmallRng,
    /// Statistics.
    pub stats: ChainStats,
}

impl MarkovChain {
    /// Initialize a chain: evaluate the starting likelihood through `engine`.
    pub fn new(
        tree: Tree,
        params: ModelParams,
        beta: f64,
        seed: u64,
        engine: &mut dyn LikelihoodEngine,
    ) -> Self {
        let model = params.build();
        let log_likelihood = engine.log_likelihood(&tree, &model);
        Self {
            state: ChainState {
                tree,
                params,
                model,
                log_likelihood,
            },
            beta,
            rng: SmallRng::seed_from_u64(seed),
            stats: ChainStats::default(),
        }
    }

    /// Run `generations` proposal cycles against `engine`.
    pub fn advance(&mut self, generations: usize, engine: &mut dyn LikelihoodEngine) {
        for _ in 0..generations {
            self.step(engine);
        }
    }

    /// One proposal-evaluate-accept cycle.
    pub fn step(&mut self, engine: &mut dyn LikelihoodEngine) {
        let mut proposal = self.state.clone();
        let mut log_hastings = 0.0;
        let mut model_changed = false;
        let kind;

        // Proposal mix: 50% branch multiplier, 40% NNI, 10% parameter move.
        let u: f64 = self.rng.random_range(0.0..1.0);
        if u < 0.5 {
            kind = MoveKind::BranchLength;
            // Branch-length multiplier on a random non-root branch.
            let branches = proposal.tree.branch_assignments();
            let (node, t) = branches[self.rng.random_range(0..branches.len())];
            let lambda = 2.0 * 0.7; // MrBayes' default multiplier tuning
            let m = (lambda * (self.rng.random_range(0.0..1.0f64) - 0.5)).exp();
            proposal.tree.node_mut(node).branch_length = (t * m).max(1e-9);
            log_hastings = m.ln();
        } else if u < 0.9 {
            kind = MoveKind::Topology;
            // NNI around a random eligible internal node.
            let cands = proposal.tree.nni_candidates();
            if cands.is_empty() {
                return;
            }
            let v = cands[self.rng.random_range(0..cands.len())];
            proposal.tree.nni(v, &mut self.rng);
        } else {
            kind = MoveKind::Parameter;
            // Parameter multiplier.
            let m = (0.5 * (self.rng.random_range(0.0..1.0f64) - 0.5)).exp();
            proposal.params = match proposal.params {
                ModelParams::Nucleotide { kappa } => ModelParams::Nucleotide {
                    kappa: (kappa * m).clamp(0.05, 100.0),
                },
                ModelParams::Codon { kappa, omega } => {
                    // Alternate which parameter moves.
                    if self.rng.random_range(0..2) == 0 {
                        ModelParams::Codon {
                            kappa: (kappa * m).clamp(0.05, 100.0),
                            omega,
                        }
                    } else {
                        ModelParams::Codon {
                            kappa,
                            omega: (omega * m).clamp(0.01, 10.0),
                        }
                    }
                }
            };
            log_hastings = m.ln();
            model_changed = true;
        }

        if model_changed {
            proposal.model = proposal.params.build();
        }
        proposal.log_likelihood = engine.log_likelihood(&proposal.tree, &proposal.model);

        let log_ratio =
            self.beta * (log_posterior(&proposal) - log_posterior(&self.state)) + log_hastings;
        let accept = log_ratio >= 0.0 || self.rng.random_range(0.0..1.0) < log_ratio.exp();
        self.stats.record(kind, accept);
        if accept {
            self.state = proposal;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NativeEngine;
    use beagle_phylo::simulate::simulate_alignment;
    use beagle_phylo::{SitePatterns, SiteRates};

    fn setup() -> (Tree, SitePatterns, SiteRates) {
        let mut rng = SmallRng::seed_from_u64(5);
        let tree = Tree::random(8, 0.1, &mut rng);
        let model = ModelParams::Nucleotide { kappa: 2.0 }.build();
        let rates = SiteRates::constant();
        let aln = simulate_alignment(&tree, &model, &rates, 200, &mut rng);
        let patterns = SitePatterns::compress(&aln);
        (tree, patterns, rates)
    }

    #[test]
    fn chain_advances_and_accepts_some_moves() {
        let (tree, patterns, rates) = setup();
        let mut engine = NativeEngine::<f64>::new(8, patterns, rates, 4);
        let mut chain = MarkovChain::new(
            tree,
            ModelParams::Nucleotide { kappa: 2.0 },
            1.0,
            42,
            &mut engine,
        );
        let initial = chain.state.log_likelihood;
        chain.advance(200, &mut engine);
        assert_eq!(chain.stats.proposed, 200);
        assert!(chain.stats.accepted > 0, "some moves must be accepted");
        assert!(chain.stats.accepted < 200, "some moves must be rejected");
        // Per-move tallies partition the totals.
        let per_move_proposed: usize = MoveKind::ALL
            .iter()
            .map(|&k| chain.stats.for_move(k).proposed)
            .sum();
        let per_move_accepted: usize = MoveKind::ALL
            .iter()
            .map(|&k| chain.stats.for_move(k).accepted)
            .sum();
        assert_eq!(per_move_proposed, chain.stats.proposed);
        assert_eq!(per_move_accepted, chain.stats.accepted);
        assert!(
            chain.stats.branch_length.proposed > 0,
            "mix is half branch moves"
        );
        assert!(chain.state.log_likelihood.is_finite());
        // On simulated-from-truth data, the sampler should not drift to a
        // catastrophically worse likelihood.
        assert!(chain.state.log_likelihood > initial - 50.0);
    }

    #[test]
    fn heated_chain_accepts_more() {
        let (tree, patterns, rates) = setup();
        let mut e1 = NativeEngine::<f64>::new(8, patterns.clone(), rates.clone(), 4);
        let mut cold = MarkovChain::new(
            tree.clone(),
            ModelParams::Nucleotide { kappa: 2.0 },
            1.0,
            7,
            &mut e1,
        );
        let mut e2 = NativeEngine::<f64>::new(8, patterns, rates, 4);
        let mut hot = MarkovChain::new(
            tree,
            ModelParams::Nucleotide { kappa: 2.0 },
            0.2,
            7,
            &mut e2,
        );
        cold.advance(300, &mut e1);
        hot.advance(300, &mut e2);
        assert!(
            hot.stats.acceptance_rate() > cold.stats.acceptance_rate(),
            "hot {} vs cold {}",
            hot.stats.acceptance_rate(),
            cold.stats.acceptance_rate()
        );
    }

    #[test]
    fn posterior_includes_priors() {
        let (tree, patterns, rates) = setup();
        let mut engine = NativeEngine::<f64>::new(8, patterns, rates, 4);
        let chain = MarkovChain::new(
            tree,
            ModelParams::Nucleotide { kappa: 2.0 },
            1.0,
            1,
            &mut engine,
        );
        let lp = log_posterior(&chain.state);
        // Posterior = likelihood + branch prior + parameter prior, exactly.
        let rate: f64 = 10.0;
        let expected_branch_prior: f64 = chain
            .state
            .tree
            .branch_assignments()
            .iter()
            .map(|&(_, t)| rate.ln() - rate * t)
            .sum();
        let expected = chain.state.log_likelihood + expected_branch_prior - 2.0; // kappa=2 prior
        assert!((lp - expected).abs() < 1e-10, "{lp} vs {expected}");
    }
}
