//! Likelihood engines: the pluggable likelihood providers MrBayes-lite runs
//! on, mirroring the paper's Fig. 6 comparison between MrBayes' built-in
//! (native SSE) likelihood code and BEAGLE-backed computation.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use beagle_core::{
    BeagleInstance, BufferId, Deadline, InstanceStats, Lane, Operation, ScalingMode, SessionRequest,
};
use beagle_cpu::{kernels, vector};
use beagle_phylo::{ReversibleModel, SitePatterns, SiteRates, Tree};
use beagle_server::{Client, ClientError, Endpoint};

/// A provider of tree log-likelihoods, with its own time accounting:
/// wall-clock for real CPU execution, simulated device time for the
/// simulated GPUs (see DESIGN.md §1).
pub trait LikelihoodEngine: Send {
    /// Engine display name for reports.
    fn name(&self) -> String;

    /// Log-likelihood of `tree` under `model` for this engine's data.
    fn log_likelihood(&mut self, tree: &Tree, model: &ReversibleModel) -> f64;

    /// Cumulative likelihood-computation time since creation.
    fn elapsed(&self) -> Duration;

    /// Per-kernel-class statistics from the underlying instance, when the
    /// engine is BEAGLE-backed and the instance was created with
    /// `INSTANCE_STATS` (see `beagle_core::obs`). `None` otherwise.
    fn kernel_statistics(&self) -> Option<InstanceStats> {
        None
    }
}

/// An engine backed by any BEAGLE-RS instance.
pub struct BeagleEngine {
    instance: Box<dyn BeagleInstance>,
    patterns: SitePatterns,
    rates: SiteRates,
    scaled: bool,
    tips_loaded: bool,
    wall: Duration,
    label: String,
    /// The MCMC fast path: when the model and tree topology are unchanged
    /// since the last evaluation, submit only the matrices whose branch
    /// length moved plus the dirty-propagated proposal-to-root operations,
    /// instead of refreshing everything. Off when
    /// `BEAGLE_INCREMENTAL_DISABLE` was set at construction.
    incremental: bool,
    /// Whether `last_*` describe a completed evaluation.
    have_baseline: bool,
    /// Bit pattern of the last model upload (eigen system + frequencies).
    last_model: Vec<u64>,
    /// Last `(matrix index, branch length bits)` assignments, in order.
    last_branches: Vec<(usize, u64)>,
    /// Last operation schedule, `(dest, c1, m1, c2, m2)` per entry.
    last_schedule: Vec<(usize, usize, usize, usize, usize)>,
}

impl BeagleEngine {
    /// Wrap an instance. `scaled` enables per-operation rescaling (required
    /// for single precision on large trees).
    pub fn new(
        instance: Box<dyn BeagleInstance>,
        patterns: SitePatterns,
        rates: SiteRates,
        scaled: bool,
    ) -> Self {
        let label = instance.details().implementation_name.clone();
        Self {
            instance,
            patterns,
            rates,
            scaled,
            tips_loaded: false,
            wall: Duration::ZERO,
            label,
            incremental: !beagle_core::memo::incremental_disabled_by_env(),
            have_baseline: false,
            last_model: Vec::new(),
            last_branches: Vec::new(),
            last_schedule: Vec::new(),
        }
    }

    /// Enable or disable incremental evaluation: both this engine's dirty
    /// tracking and the instance's memoization layer. Disabling drops the
    /// baseline, so re-enabling starts with one full refresh.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.incremental = enabled && !beagle_core::memo::incremental_disabled_by_env();
        self.instance.set_incremental(enabled);
        if !self.incremental {
            self.have_baseline = false;
        }
    }

    /// Memoization counters from the underlying instance, when the memo
    /// layer is installed.
    pub fn memo_stats(&self) -> Option<beagle_core::MemoStats> {
        self.instance.memo_stats()
    }
}

impl LikelihoodEngine for BeagleEngine {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn log_likelihood(&mut self, tree: &Tree, model: &ReversibleModel) -> f64 {
        let start = Instant::now();
        let inst = self.instance.as_mut();
        if !self.tips_loaded {
            for tip in 0..tree.taxon_count() {
                inst.set_tip_states(tip, &self.patterns.tip_states(tip))
                    .expect("tips");
            }
            inst.set_pattern_weights(self.patterns.weights())
                .expect("pattern weights");
            inst.set_category_rates(&self.rates.rates).expect("rates");
            inst.set_category_weights(0, &self.rates.weights)
                .expect("weights");
            self.tips_loaded = true;
        }
        // Snapshot the inputs that decide what must be recomputed: the
        // model upload bits, the branch-length assignments, and the
        // operation schedule (its shape changes with topology moves).
        let eig = model.eigen();
        let model_bits: Vec<u64> = eig
            .vectors
            .as_slice()
            .iter()
            .chain(eig.inverse_vectors.as_slice())
            .chain(&eig.values)
            .chain(model.frequencies())
            .map(|x| x.to_bits())
            .collect();
        let branches: Vec<(usize, u64)> = tree
            .branch_assignments()
            .iter()
            .map(|&(n, t)| (n, t.to_bits()))
            .collect();
        let schedule: Vec<(usize, usize, usize, usize, usize)> = tree
            .operation_schedule()
            .iter()
            .map(|e| (e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
            .collect();
        let make_op = |&(dest, c1, m1, c2, m2): &(usize, usize, usize, usize, usize)| {
            let op = Operation::new(dest, c1, m1, c2, m2);
            if self.scaled {
                op.with_scaling(dest)
            } else {
                op
            }
        };

        let fast = self.incremental
            && self.have_baseline
            && self.last_model == model_bits
            && self.last_schedule == schedule
            && self
                .last_branches
                .iter()
                .zip(&branches)
                .all(|(a, b)| a.0 == b.0)
            && self.last_branches.len() == branches.len();

        if fast {
            // The MCMC fast path: only branches whose length moved need new
            // matrices, and only operations downstream of a changed matrix
            // (the proposal-to-root path) need re-executing. Everything else
            // still holds bit-identical state inside the instance.
            let mut idx = Vec::new();
            let mut len = Vec::new();
            let mut dirty_matrices: HashSet<usize> = HashSet::new();
            for (i, (&(n, t_bits), (_, t))) in
                branches.iter().zip(tree.branch_assignments()).enumerate()
            {
                if self.last_branches[i].1 == t_bits {
                    continue;
                }
                idx.push(n);
                len.push(t);
                dirty_matrices.insert(n);
            }
            if !idx.is_empty() {
                inst.update_transition_matrices(0, &idx, &len)
                    .expect("matrices");
            }
            let mut dirty_partials: HashSet<usize> = HashSet::new();
            let mut run: Vec<Operation> = Vec::new();
            for e in &schedule {
                let (dest, c1, m1, c2, m2) = *e;
                if dirty_matrices.contains(&m1)
                    || dirty_matrices.contains(&m2)
                    || dirty_partials.contains(&c1)
                    || dirty_partials.contains(&c2)
                {
                    dirty_partials.insert(dest);
                    run.push(make_op(e));
                }
            }
            if !run.is_empty() {
                inst.update_partials(&run).expect("partials");
            }
        } else {
            // Full refresh: reload eigen + freqs and recompute every
            // transition matrix and every partial.
            inst.set_eigen_decomposition(
                0,
                eig.vectors.as_slice(),
                eig.inverse_vectors.as_slice(),
                &eig.values,
            )
            .expect("eigen");
            inst.set_state_frequencies(0, model.frequencies())
                .expect("freqs");
            let (idx, len): (Vec<usize>, Vec<f64>) =
                tree.branch_assignments().iter().copied().unzip();
            inst.update_transition_matrices(0, &idx, &len)
                .expect("matrices");
            let ops: Vec<Operation> = schedule.iter().map(make_op).collect();
            inst.update_partials(&ops).expect("partials");
        }

        let scaling = if self.scaled {
            // Clean destinations still hold their per-node scale factors
            // from the last traversal, so accumulating over the full
            // schedule stays correct on the fast path too.
            let c = inst.config().scale_buffer_count - 1;
            inst.reset_scale_factors(c).expect("reset scale");
            let bufs: Vec<usize> = schedule.iter().map(|e| e.0).collect();
            inst.accumulate_scale_factors(&bufs, c).expect("accumulate");
            ScalingMode::cumulative(c)
        } else {
            ScalingMode::None
        };
        let lnl = inst
            .integrate_root(BufferId(tree.root()), BufferId(0), BufferId(0), scaling)
            .expect("root lnL");
        if self.incremental {
            self.last_model = model_bits;
            self.last_branches = branches;
            self.last_schedule = schedule;
            self.have_baseline = true;
        }
        self.wall += start.elapsed();
        lnl
    }

    fn elapsed(&self) -> Duration {
        // Simulated devices report modeled time; everything else wall time.
        self.instance.simulated_time().unwrap_or(self.wall)
    }

    fn kernel_statistics(&self) -> Option<InstanceStats> {
        self.instance.statistics()
    }
}

/// An engine backed by a remote likelihood service (`beagle-server`): each
/// evaluation ships a self-contained [`SessionRequest`] over the wire and
/// blocks for the result. The WIRE-v1 protocol carries every `f64` as a
/// raw bit pattern, so a remote evaluation is bit-identical to running the
/// same session on a local pool of the same implementation — which is what
/// lets [`crate::mc3::run_mc3_remote`] reproduce a local cold trace
/// exactly.
///
/// Unlike [`BeagleEngine`] there is no incremental fast path: sessions are
/// stateless by design (that is what makes server-side requeue-after-
/// eviction safe), so every evaluation is a full refresh.
pub struct RemoteEngine {
    client: Client,
    patterns: SitePatterns,
    rates: SiteRates,
    scaled: bool,
    lane: Lane,
    deadline: Option<Deadline>,
    /// Transient `Busy` answers tolerated per evaluation before panicking.
    busy_retries: u32,
    wall: Duration,
}

impl RemoteEngine {
    /// Connect to a service. `scaled` must match what the data demands,
    /// exactly as for [`BeagleEngine::new`].
    pub fn connect(
        endpoint: Endpoint,
        patterns: SitePatterns,
        rates: SiteRates,
        scaled: bool,
    ) -> Result<Self, ClientError> {
        Ok(Self {
            client: Client::connect(endpoint)?,
            patterns,
            rates,
            scaled,
            lane: Lane::Interactive,
            deadline: None,
            busy_retries: 64,
            wall: Duration::ZERO,
        })
    }

    /// Scheduling lane for the server-side pool (default
    /// [`Lane::Interactive`]: chains block on every evaluation, so queue
    /// latency matters more than fairness).
    pub fn lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    /// Attach a per-request deadline, propagated into the server pool's
    /// watchdog for each evaluation.
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Build the wire session for one evaluation.
    fn session(&self, tree: &Tree, model: &ReversibleModel) -> SessionRequest {
        let eig = model.eigen();
        SessionRequest {
            tip_states: (0..tree.taxon_count())
                .map(|t| self.patterns.tip_states(t))
                .collect(),
            pattern_weights: self.patterns.weights().to_vec(),
            category_rates: self.rates.rates.clone(),
            category_weights: self.rates.weights.clone(),
            frequencies: model.frequencies().to_vec(),
            eigen: Some((
                eig.vectors.as_slice().to_vec(),
                eig.inverse_vectors.as_slice().to_vec(),
                eig.values.clone(),
            )),
            matrices: tree.branch_assignments(),
            operations: tree
                .operation_schedule()
                .iter()
                .map(|e| {
                    let op =
                        Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2);
                    if self.scaled {
                        op.with_scaling(e.destination)
                    } else {
                        op
                    }
                })
                .collect(),
            root: BufferId(tree.root()),
            scaled: self.scaled,
            deadline: self.deadline,
        }
    }
}

impl LikelihoodEngine for RemoteEngine {
    fn name(&self) -> String {
        format!("remote({})", self.client.endpoint())
    }

    fn log_likelihood(&mut self, tree: &Tree, model: &ReversibleModel) -> f64 {
        let start = Instant::now();
        let session = self.session(tree, model);
        let lnl = self
            .client
            .evaluate_patiently(&session, self.lane, self.busy_retries)
            .expect("remote evaluation");
        self.wall += start.elapsed();
        lnl
    }

    fn elapsed(&self) -> Duration {
        // Wall time including wire round trips; the server's modeled device
        // time is visible through its stats snapshot instead.
        self.wall
    }
}

/// MrBayes' built-in likelihood path: a lean, serial pruning engine with
/// vectorized 4-state kernels ("MrBayes uses SSE vectorization in
/// single-precision floating point format", §VIII-C). It does not go
/// through the BEAGLE API at all — this is the Fig. 6 baseline.
pub struct NativeEngine<T: beagle_core::Real> {
    patterns: SitePatterns,
    rates: SiteRates,
    /// Flat partials arena, `[node][cat*pattern*state]`.
    partials: Vec<Vec<T>>,
    /// Per-node transition matrices, `[cat][s][s]`.
    matrices: Vec<Vec<T>>,
    /// Per-pattern log scale accumulators.
    scale: Vec<T>,
    wall: Duration,
}

impl<T: beagle_core::Real> NativeEngine<T> {
    /// Allocate for a fixed data set and tree size.
    pub fn new(taxa: usize, patterns: SitePatterns, rates: SiteRates, states: usize) -> Self {
        let nodes = 2 * taxa - 1;
        let len = rates.category_count() * patterns.pattern_count() * states;
        let mlen = rates.category_count() * states * states;
        Self {
            partials: vec![vec![T::ZERO; len]; nodes],
            matrices: vec![vec![T::ZERO; mlen]; nodes],
            scale: vec![T::ZERO; patterns.pattern_count()],
            patterns,
            rates,
            wall: Duration::ZERO,
        }
    }
}

impl<T: beagle_core::Real> LikelihoodEngine for NativeEngine<T> {
    fn name(&self) -> String {
        format!(
            "native-SSE ({} precision)",
            if std::mem::size_of::<T>() == 4 {
                "single"
            } else {
                "double"
            }
        )
    }

    fn log_likelihood(&mut self, tree: &Tree, model: &ReversibleModel) -> f64 {
        let start = Instant::now();
        let s = model.state_count();
        let n_pat = self.patterns.pattern_count();
        let n_cat = self.rates.category_count();

        // Transition matrices (double-precision eigen math, narrowed).
        for (node, t) in tree.branch_assignments() {
            for (c, &rate) in self.rates.rates.iter().enumerate() {
                let p = model.transition_matrix(rate * t);
                let block = &mut self.matrices[node][c * s * s..(c + 1) * s * s];
                for (dst, &src) in block.iter_mut().zip(p.as_slice()) {
                    *dst = T::from_f64(src.max(0.0));
                }
            }
        }

        // Tip partials from states.
        for tip in 0..tree.taxon_count() {
            let states = self.patterns.tip_states(tip);
            let buf = &mut self.partials[tip];
            buf.iter_mut().for_each(|x| *x = T::ZERO);
            for c in 0..n_cat {
                for (p, &st) in states.iter().enumerate() {
                    let base = (c * n_pat + p) * s;
                    if st == beagle_core::GAP_STATE {
                        buf[base..base + s].fill(T::ONE);
                    } else {
                        buf[base + st as usize] = T::ONE;
                    }
                }
            }
        }

        // Post-order pruning with per-node rescaling (MrBayes rescales
        // unconditionally in its native path).
        self.scale.iter_mut().for_each(|x| *x = T::ZERO);
        for entry in tree.operation_schedule() {
            let [c1, c2, dest] = distinct_three(
                &mut self.partials,
                entry.child1,
                entry.child2,
                entry.destination,
            );
            let m1 = &self.matrices[entry.matrix1];
            let m2 = &self.matrices[entry.matrix2];
            for c in 0..n_cat {
                let r = (c * n_pat) * s..((c + 1) * n_pat) * s;
                let m1c = &m1[c * s * s..(c + 1) * s * s];
                let m2c = &m2[c * s * s..(c + 1) * s * s];
                if s == 4 {
                    vector::partials_partials_4(
                        &mut dest[r.clone()],
                        &c1[r.clone()],
                        &c2[r],
                        m1c,
                        m2c,
                        4,
                    );
                } else {
                    kernels::partials_partials(
                        &mut dest[r.clone()],
                        &c1[r.clone()],
                        &c2[r],
                        m1c,
                        m2c,
                        s,
                        s,
                    );
                }
            }
            // Rescale this node's partials.
            let mut blocks: Vec<&mut [T]> = dest.chunks_exact_mut(n_pat * s).collect();
            let mut node_scale = vec![T::ZERO; n_pat];
            kernels::rescale_patterns(&mut blocks, &mut node_scale, s);
            for (acc, x) in self.scale.iter_mut().zip(&node_scale) {
                *acc += *x;
            }
        }

        // Root integration.
        let freqs: Vec<T> = model
            .frequencies()
            .iter()
            .map(|&x| T::from_f64(x))
            .collect();
        let catw: Vec<T> = self.rates.weights.iter().map(|&x| T::from_f64(x)).collect();
        let pw: Vec<T> = self
            .patterns
            .weights()
            .iter()
            .map(|&x| T::from_f64(x))
            .collect();
        let mut site = vec![T::ZERO; n_pat];
        let total = kernels::integrate_root(
            &mut site,
            &self.partials[tree.root()],
            &freqs,
            &catw,
            &pw,
            Some(&self.scale),
            s,
            s,
            n_pat,
            0,
        );
        self.wall += start.elapsed();
        total
    }

    fn elapsed(&self) -> Duration {
        self.wall
    }
}

/// Borrow three distinct arena entries, the last mutably-for-writing.
/// Returns `[child1, child2, destination]`.
fn distinct_three<T>(arena: &mut [Vec<T>], a: usize, b: usize, dst: usize) -> [&mut Vec<T>; 3] {
    assert!(
        a != dst && b != dst,
        "destination must differ from children"
    );
    // SAFETY: indices a, b, dst are distinct from dst (asserted); a may
    // equal b only if the tree were malformed — also assert.
    assert_ne!(a, b, "children must be distinct nodes");
    unsafe {
        let ptr = arena.as_mut_ptr();
        [&mut *ptr.add(a), &mut *ptr.add(b), &mut *ptr.add(dst)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beagle_phylo::likelihood::log_likelihood;
    use beagle_phylo::models::nucleotide::hky85;
    use beagle_phylo::simulate::simulate_alignment;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn case() -> (Tree, ReversibleModel, SiteRates, SitePatterns) {
        let mut rng = SmallRng::seed_from_u64(77);
        let tree = Tree::random(10, 0.15, &mut rng);
        let model = hky85(2.0, &[0.3, 0.2, 0.25, 0.25]);
        let rates = SiteRates::discrete_gamma(0.5, 4);
        let aln = simulate_alignment(&tree, &model, &rates, 300, &mut rng);
        (tree, model, rates, SitePatterns::compress(&aln))
    }

    #[test]
    fn native_double_matches_oracle() {
        let (tree, model, rates, patterns) = case();
        let oracle = log_likelihood(&tree, &model, &rates, &patterns);
        let mut engine = NativeEngine::<f64>::new(10, patterns, rates, 4);
        let lnl = engine.log_likelihood(&tree, &model);
        assert!((lnl - oracle).abs() < 1e-8, "{lnl} vs {oracle}");
        assert!(engine.elapsed() > Duration::ZERO);
    }

    #[test]
    fn native_single_close_to_oracle() {
        let (tree, model, rates, patterns) = case();
        let oracle = log_likelihood(&tree, &model, &rates, &patterns);
        let mut engine = NativeEngine::<f32>::new(10, patterns, rates, 4);
        let lnl = engine.log_likelihood(&tree, &model);
        assert!(((lnl - oracle) / oracle).abs() < 1e-4, "{lnl} vs {oracle}");
    }

    #[test]
    fn beagle_engine_matches_native() {
        let (tree, model, rates, patterns) = case();
        let config = beagle_core::InstanceConfig::for_tree(10, patterns.pattern_count(), 4, 4);
        let mut manager = beagle_core::ImplementationManager::new();
        beagle_cpu::register_cpu_factories(&mut manager);
        let inst = beagle_core::InstanceSpec::with_config(config)
            .with_stats()
            .instantiate(&manager)
            .unwrap();
        let mut be = BeagleEngine::new(inst, patterns.clone(), rates.clone(), true);
        let mut ne = NativeEngine::<f64>::new(10, patterns, rates, 4);
        let a = be.log_likelihood(&tree, &model);
        let b = ne.log_likelihood(&tree, &model);
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        // With INSTANCE_STATS requested, the engine surfaces per-kernel
        // counters (unless obs is compiled out).
        if beagle_core::Recorder::new(true).is_enabled() {
            let stats = be.kernel_statistics().expect("stats-enabled instance");
            assert!(stats.total_calls() > 0, "kernel calls must be counted");
        }
    }

    #[test]
    fn incremental_fast_path_is_bit_identical_to_full_refresh() {
        let (mut tree, model, rates, patterns) = case();
        let config = beagle_core::InstanceConfig::for_tree(10, patterns.pattern_count(), 4, 4);
        let mut manager = beagle_core::ImplementationManager::new();
        beagle_cpu::register_cpu_factories(&mut manager);
        let mk = |manager: &beagle_core::ImplementationManager| {
            beagle_core::InstanceSpec::with_config(config)
                .instantiate(manager)
                .unwrap()
        };
        let mut fast = BeagleEngine::new(mk(&manager), patterns.clone(), rates.clone(), true);
        let mut full = BeagleEngine::new(mk(&manager), patterns.clone(), rates.clone(), true);
        full.set_incremental(false);
        // Single-branch MCMC-style moves: every evaluation must agree with
        // the always-recompute engine bit for bit.
        for i in 0..12 {
            let node = i % (2 * tree.taxon_count() - 2);
            tree.node_mut(node).branch_length *= 1.0 + 0.05 * (i as f64 + 1.0);
            let a = fast.log_likelihood(&tree, &model);
            let b = full.log_likelihood(&tree, &model);
            assert_eq!(a.to_bits(), b.to_bits(), "iteration {i}: {a} vs {b}");
        }
        // The fast engine must actually have elided work.
        if let Some(stats) = fast.memo_stats() {
            assert!(
                stats.total_skips() > 0 || stats.ops_executed < 12 * 8,
                "fast path elided no work: {stats:?}"
            );
        }
    }

    #[test]
    fn engine_is_reusable_across_tree_changes() {
        let (mut tree, model, rates, patterns) = case();
        let mut engine = NativeEngine::<f64>::new(10, patterns.clone(), rates.clone(), 4);
        let l1 = engine.log_likelihood(&tree, &model);
        // Change a branch length; likelihood must change and stay finite.
        tree.node_mut(0).branch_length *= 3.0;
        let l2 = engine.log_likelihood(&tree, &model);
        assert!(l1.is_finite() && l2.is_finite() && (l1 - l2).abs() > 1e-9);
        // And match a fresh oracle evaluation.
        let oracle = log_likelihood(&tree, &model, &rates, &patterns);
        assert!((l2 - oracle).abs() < 1e-8);
    }
}
