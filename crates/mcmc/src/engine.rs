//! Likelihood engines: the pluggable likelihood providers MrBayes-lite runs
//! on, mirroring the paper's Fig. 6 comparison between MrBayes' built-in
//! (native SSE) likelihood code and BEAGLE-backed computation.

use std::time::{Duration, Instant};

use beagle_core::{BeagleInstance, BufferId, InstanceStats, Operation, ScalingMode};
use beagle_cpu::{kernels, vector};
use beagle_phylo::{ReversibleModel, SitePatterns, SiteRates, Tree};

/// A provider of tree log-likelihoods, with its own time accounting:
/// wall-clock for real CPU execution, simulated device time for the
/// simulated GPUs (see DESIGN.md §1).
pub trait LikelihoodEngine: Send {
    /// Engine display name for reports.
    fn name(&self) -> String;

    /// Log-likelihood of `tree` under `model` for this engine's data.
    fn log_likelihood(&mut self, tree: &Tree, model: &ReversibleModel) -> f64;

    /// Cumulative likelihood-computation time since creation.
    fn elapsed(&self) -> Duration;

    /// Per-kernel-class statistics from the underlying instance, when the
    /// engine is BEAGLE-backed and the instance was created with
    /// `INSTANCE_STATS` (see `beagle_core::obs`). `None` otherwise.
    fn kernel_statistics(&self) -> Option<InstanceStats> {
        None
    }
}

/// An engine backed by any BEAGLE-RS instance.
pub struct BeagleEngine {
    instance: Box<dyn BeagleInstance>,
    patterns: SitePatterns,
    rates: SiteRates,
    scaled: bool,
    tips_loaded: bool,
    wall: Duration,
    label: String,
}

impl BeagleEngine {
    /// Wrap an instance. `scaled` enables per-operation rescaling (required
    /// for single precision on large trees).
    pub fn new(
        instance: Box<dyn BeagleInstance>,
        patterns: SitePatterns,
        rates: SiteRates,
        scaled: bool,
    ) -> Self {
        let label = instance.details().implementation_name.clone();
        Self {
            instance,
            patterns,
            rates,
            scaled,
            tips_loaded: false,
            wall: Duration::ZERO,
            label,
        }
    }
}

impl LikelihoodEngine for BeagleEngine {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn log_likelihood(&mut self, tree: &Tree, model: &ReversibleModel) -> f64 {
        let start = Instant::now();
        let inst = self.instance.as_mut();
        if !self.tips_loaded {
            for tip in 0..tree.taxon_count() {
                inst.set_tip_states(tip, &self.patterns.tip_states(tip))
                    .expect("tips");
            }
            inst.set_pattern_weights(self.patterns.weights())
                .expect("pattern weights");
            inst.set_category_rates(&self.rates.rates).expect("rates");
            inst.set_category_weights(0, &self.rates.weights)
                .expect("weights");
            self.tips_loaded = true;
        }
        // Parameters may have changed every call: reload eigen + freqs and
        // recompute all transition matrices (MrBayes touches a subset per
        // move; a full refresh keeps the comparison uniform across engines).
        let eig = model.eigen();
        inst.set_eigen_decomposition(
            0,
            eig.vectors.as_slice(),
            eig.inverse_vectors.as_slice(),
            &eig.values,
        )
        .expect("eigen");
        inst.set_state_frequencies(0, model.frequencies())
            .expect("freqs");
        let (idx, len): (Vec<usize>, Vec<f64>) = tree.branch_assignments().iter().copied().unzip();
        inst.update_transition_matrices(0, &idx, &len)
            .expect("matrices");

        let ops: Vec<Operation> = tree
            .operation_schedule()
            .iter()
            .map(|e| {
                let op = Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2);
                if self.scaled {
                    op.with_scaling(e.destination)
                } else {
                    op
                }
            })
            .collect();
        inst.update_partials(&ops).expect("partials");
        let scaling = if self.scaled {
            let c = inst.config().scale_buffer_count - 1;
            inst.reset_scale_factors(c).expect("reset scale");
            let bufs: Vec<usize> = ops.iter().map(|o| o.destination).collect();
            inst.accumulate_scale_factors(&bufs, c).expect("accumulate");
            ScalingMode::cumulative(c)
        } else {
            ScalingMode::None
        };
        let lnl = inst
            .integrate_root(BufferId(tree.root()), BufferId(0), BufferId(0), scaling)
            .expect("root lnL");
        self.wall += start.elapsed();
        lnl
    }

    fn elapsed(&self) -> Duration {
        // Simulated devices report modeled time; everything else wall time.
        self.instance.simulated_time().unwrap_or(self.wall)
    }

    fn kernel_statistics(&self) -> Option<InstanceStats> {
        self.instance.statistics()
    }
}

/// MrBayes' built-in likelihood path: a lean, serial pruning engine with
/// vectorized 4-state kernels ("MrBayes uses SSE vectorization in
/// single-precision floating point format", §VIII-C). It does not go
/// through the BEAGLE API at all — this is the Fig. 6 baseline.
pub struct NativeEngine<T: beagle_core::Real> {
    patterns: SitePatterns,
    rates: SiteRates,
    /// Flat partials arena, `[node][cat*pattern*state]`.
    partials: Vec<Vec<T>>,
    /// Per-node transition matrices, `[cat][s][s]`.
    matrices: Vec<Vec<T>>,
    /// Per-pattern log scale accumulators.
    scale: Vec<T>,
    wall: Duration,
}

impl<T: beagle_core::Real> NativeEngine<T> {
    /// Allocate for a fixed data set and tree size.
    pub fn new(taxa: usize, patterns: SitePatterns, rates: SiteRates, states: usize) -> Self {
        let nodes = 2 * taxa - 1;
        let len = rates.category_count() * patterns.pattern_count() * states;
        let mlen = rates.category_count() * states * states;
        Self {
            partials: vec![vec![T::ZERO; len]; nodes],
            matrices: vec![vec![T::ZERO; mlen]; nodes],
            scale: vec![T::ZERO; patterns.pattern_count()],
            patterns,
            rates,
            wall: Duration::ZERO,
        }
    }
}

impl<T: beagle_core::Real> LikelihoodEngine for NativeEngine<T> {
    fn name(&self) -> String {
        format!(
            "native-SSE ({} precision)",
            if std::mem::size_of::<T>() == 4 {
                "single"
            } else {
                "double"
            }
        )
    }

    fn log_likelihood(&mut self, tree: &Tree, model: &ReversibleModel) -> f64 {
        let start = Instant::now();
        let s = model.state_count();
        let n_pat = self.patterns.pattern_count();
        let n_cat = self.rates.category_count();

        // Transition matrices (double-precision eigen math, narrowed).
        for (node, t) in tree.branch_assignments() {
            for (c, &rate) in self.rates.rates.iter().enumerate() {
                let p = model.transition_matrix(rate * t);
                let block = &mut self.matrices[node][c * s * s..(c + 1) * s * s];
                for (dst, &src) in block.iter_mut().zip(p.as_slice()) {
                    *dst = T::from_f64(src.max(0.0));
                }
            }
        }

        // Tip partials from states.
        for tip in 0..tree.taxon_count() {
            let states = self.patterns.tip_states(tip);
            let buf = &mut self.partials[tip];
            buf.iter_mut().for_each(|x| *x = T::ZERO);
            for c in 0..n_cat {
                for (p, &st) in states.iter().enumerate() {
                    let base = (c * n_pat + p) * s;
                    if st == beagle_core::GAP_STATE {
                        buf[base..base + s].fill(T::ONE);
                    } else {
                        buf[base + st as usize] = T::ONE;
                    }
                }
            }
        }

        // Post-order pruning with per-node rescaling (MrBayes rescales
        // unconditionally in its native path).
        self.scale.iter_mut().for_each(|x| *x = T::ZERO);
        for entry in tree.operation_schedule() {
            let [c1, c2, dest] = distinct_three(
                &mut self.partials,
                entry.child1,
                entry.child2,
                entry.destination,
            );
            let m1 = &self.matrices[entry.matrix1];
            let m2 = &self.matrices[entry.matrix2];
            for c in 0..n_cat {
                let r = (c * n_pat) * s..((c + 1) * n_pat) * s;
                let m1c = &m1[c * s * s..(c + 1) * s * s];
                let m2c = &m2[c * s * s..(c + 1) * s * s];
                if s == 4 {
                    vector::partials_partials_4(
                        &mut dest[r.clone()],
                        &c1[r.clone()],
                        &c2[r],
                        m1c,
                        m2c,
                        4,
                    );
                } else {
                    kernels::partials_partials(
                        &mut dest[r.clone()],
                        &c1[r.clone()],
                        &c2[r],
                        m1c,
                        m2c,
                        s,
                        s,
                    );
                }
            }
            // Rescale this node's partials.
            let mut blocks: Vec<&mut [T]> = dest.chunks_exact_mut(n_pat * s).collect();
            let mut node_scale = vec![T::ZERO; n_pat];
            kernels::rescale_patterns(&mut blocks, &mut node_scale, s);
            for (acc, x) in self.scale.iter_mut().zip(&node_scale) {
                *acc += *x;
            }
        }

        // Root integration.
        let freqs: Vec<T> = model
            .frequencies()
            .iter()
            .map(|&x| T::from_f64(x))
            .collect();
        let catw: Vec<T> = self.rates.weights.iter().map(|&x| T::from_f64(x)).collect();
        let pw: Vec<T> = self
            .patterns
            .weights()
            .iter()
            .map(|&x| T::from_f64(x))
            .collect();
        let mut site = vec![T::ZERO; n_pat];
        let total = kernels::integrate_root(
            &mut site,
            &self.partials[tree.root()],
            &freqs,
            &catw,
            &pw,
            Some(&self.scale),
            s,
            s,
            n_pat,
            0,
        );
        self.wall += start.elapsed();
        total
    }

    fn elapsed(&self) -> Duration {
        self.wall
    }
}

/// Borrow three distinct arena entries, the last mutably-for-writing.
/// Returns `[child1, child2, destination]`.
fn distinct_three<T>(arena: &mut [Vec<T>], a: usize, b: usize, dst: usize) -> [&mut Vec<T>; 3] {
    assert!(
        a != dst && b != dst,
        "destination must differ from children"
    );
    // SAFETY: indices a, b, dst are distinct from dst (asserted); a may
    // equal b only if the tree were malformed — also assert.
    assert_ne!(a, b, "children must be distinct nodes");
    unsafe {
        let ptr = arena.as_mut_ptr();
        [&mut *ptr.add(a), &mut *ptr.add(b), &mut *ptr.add(dst)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beagle_phylo::likelihood::log_likelihood;
    use beagle_phylo::models::nucleotide::hky85;
    use beagle_phylo::simulate::simulate_alignment;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn case() -> (Tree, ReversibleModel, SiteRates, SitePatterns) {
        let mut rng = SmallRng::seed_from_u64(77);
        let tree = Tree::random(10, 0.15, &mut rng);
        let model = hky85(2.0, &[0.3, 0.2, 0.25, 0.25]);
        let rates = SiteRates::discrete_gamma(0.5, 4);
        let aln = simulate_alignment(&tree, &model, &rates, 300, &mut rng);
        (tree, model, rates, SitePatterns::compress(&aln))
    }

    #[test]
    fn native_double_matches_oracle() {
        let (tree, model, rates, patterns) = case();
        let oracle = log_likelihood(&tree, &model, &rates, &patterns);
        let mut engine = NativeEngine::<f64>::new(10, patterns, rates, 4);
        let lnl = engine.log_likelihood(&tree, &model);
        assert!((lnl - oracle).abs() < 1e-8, "{lnl} vs {oracle}");
        assert!(engine.elapsed() > Duration::ZERO);
    }

    #[test]
    fn native_single_close_to_oracle() {
        let (tree, model, rates, patterns) = case();
        let oracle = log_likelihood(&tree, &model, &rates, &patterns);
        let mut engine = NativeEngine::<f32>::new(10, patterns, rates, 4);
        let lnl = engine.log_likelihood(&tree, &model);
        assert!(((lnl - oracle) / oracle).abs() < 1e-4, "{lnl} vs {oracle}");
    }

    #[test]
    fn beagle_engine_matches_native() {
        let (tree, model, rates, patterns) = case();
        let config = beagle_core::InstanceConfig::for_tree(10, patterns.pattern_count(), 4, 4);
        let mut manager = beagle_core::ImplementationManager::new();
        beagle_cpu::register_cpu_factories(&mut manager);
        let inst = beagle_core::InstanceSpec::with_config(config)
            .with_stats()
            .instantiate(&manager)
            .unwrap();
        let mut be = BeagleEngine::new(inst, patterns.clone(), rates.clone(), true);
        let mut ne = NativeEngine::<f64>::new(10, patterns, rates, 4);
        let a = be.log_likelihood(&tree, &model);
        let b = ne.log_likelihood(&tree, &model);
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        // With INSTANCE_STATS requested, the engine surfaces per-kernel
        // counters (unless obs is compiled out).
        if beagle_core::Recorder::new(true).is_enabled() {
            let stats = be.kernel_statistics().expect("stats-enabled instance");
            assert!(stats.total_calls() > 0, "kernel calls must be counted");
        }
    }

    #[test]
    fn engine_is_reusable_across_tree_changes() {
        let (mut tree, model, rates, patterns) = case();
        let mut engine = NativeEngine::<f64>::new(10, patterns.clone(), rates.clone(), 4);
        let l1 = engine.log_likelihood(&tree, &model);
        // Change a branch length; likelihood must change and stay finite.
        tree.node_mut(0).branch_length *= 3.0;
        let l2 = engine.log_likelihood(&tree, &model);
        assert!(l1.is_finite() && l2.is_finite() && (l1 - l2).abs() > 1e-9);
        // And match a fresh oracle evaluation.
        let oracle = log_likelihood(&tree, &model, &rates, &patterns);
        assert!((l2 - oracle).abs() < 1e-8);
    }
}
