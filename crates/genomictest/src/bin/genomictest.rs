//! Command-line genomictest: generate a synthetic dataset, run it on a
//! chosen implementation, check correctness, and report throughput.
//!
//! ```text
//! genomictest [--model nucleotide|aminoacid|codon] [--taxa N] [--patterns N]
//!             [--categories N] [--reps N] [--single] [--impl NAME]
//!             [--scaled] [--seed N] [--list] [--verify]
//! ```

use beagle_core::Flags;
use genomictest::{benchmark, full_manager, ModelKind, Problem, Scenario};

struct Args {
    scenario: Scenario,
    reps: usize,
    single: bool,
    impl_filter: Option<String>,
    scaled: bool,
    list: bool,
    verify: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: Scenario::default_nucleotide(),
        reps: 5,
        single: false,
        impl_filter: None,
        scaled: false,
        list: false,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--model" => {
                args.scenario.model = match val("--model")?.as_str() {
                    "nucleotide" | "dna" => ModelKind::Nucleotide,
                    "aminoacid" | "aa" => ModelKind::AminoAcid,
                    "codon" => ModelKind::Codon,
                    other => return Err(format!("unknown model {other}")),
                }
            }
            "--taxa" => args.scenario.taxa = val("--taxa")?.parse().map_err(|e| format!("{e}"))?,
            "--patterns" => {
                args.scenario.patterns = val("--patterns")?.parse().map_err(|e| format!("{e}"))?
            }
            "--categories" => {
                args.scenario.categories =
                    val("--categories")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => args.scenario.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--reps" => args.reps = val("--reps")?.parse().map_err(|e| format!("{e}"))?,
            "--single" => args.single = true,
            "--impl" => args.impl_filter = Some(val("--impl")?),
            "--scaled" => args.scaled = true,
            "--list" => args.list = true,
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                println!(
                    "genomictest: BEAGLE-RS synthetic benchmark\n\
                     options: --model M --taxa N --patterns N --categories N --reps N\n\
                     \x20        --single --impl NAME --scaled --seed N --list --verify"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("genomictest: {e}");
            std::process::exit(2);
        }
    };

    let manager = full_manager();
    if args.list {
        println!("available implementations:");
        for (name, res) in manager
            .implementation_names()
            .into_iter()
            .zip(manager.resource_list())
        {
            println!("  {name:<40} on {}", res.name);
        }
        return;
    }

    let s = args.scenario;
    println!(
        "# genomictest: model={:?} taxa={} patterns={} categories={} precision={} seed={}",
        s.model,
        s.taxa,
        s.patterns,
        s.categories,
        if args.single { "single" } else { "double" },
        s.seed
    );
    let problem = Problem::generate(&s);
    let config = problem.config();

    let precision = if args.single {
        Flags::PRECISION_SINGLE
    } else {
        Flags::PRECISION_DOUBLE
    };
    let names = manager.implementation_names();
    let selected: Vec<String> = match &args.impl_filter {
        Some(f) => names
            .into_iter()
            .filter(|n| n.contains(f.as_str()))
            .collect(),
        None => names,
    };
    if selected.is_empty() {
        eprintln!("genomictest: no implementation matches filter");
        std::process::exit(2);
    }

    let oracle = if args.verify {
        Some(problem.oracle())
    } else {
        None
    };

    println!(
        "{:<42} {:>12} {:>14} {:>18}  timing",
        "implementation", "GFLOPS", "ms/traversal", "lnL"
    );
    for name in selected {
        // Re-resolve by exact-name requirement: create through the factory
        // list to pin the implementation.
        let inst = pin_implementation(&manager, &name, &config, precision);
        let Some(mut inst) = inst else {
            println!("{name:<42} {:>12}", "unsupported");
            continue;
        };
        let report = benchmark(&problem, inst.as_mut(), args.reps);
        println!(
            "{:<42} {:>12.2} {:>14.3} {:>18.4}  {}",
            name,
            report.gflops,
            report.per_traversal.as_secs_f64() * 1e3,
            report.log_likelihood,
            if report.simulated {
                "simulated"
            } else {
                "measured"
            }
        );
        if let Some(o) = oracle {
            let rel = ((report.log_likelihood - o) / o).abs();
            let ok = rel < if args.single { 1e-4 } else { 1e-9 };
            println!(
                "    verify: oracle {o:.4}, rel err {rel:.2e} {}",
                if ok { "OK" } else { "MISMATCH" }
            );
            if !ok {
                std::process::exit(1);
            }
        }
    }
}

/// Create an instance of exactly the named implementation.
fn pin_implementation(
    manager: &beagle_core::ImplementationManager,
    name: &str,
    config: &beagle_core::InstanceConfig,
    precision: Flags,
) -> Option<Box<dyn beagle_core::BeagleInstance>> {
    manager
        .create_instance_by_name(name, config, precision)
        .ok()
}
