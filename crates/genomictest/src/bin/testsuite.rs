//! The BEAGLE-RS verification suite — the Rust equivalent of the paper's
//! "set of testing scripts which evaluate different analyses types by
//! varying input parameters to our genomictest program" (§V-A).
//!
//! Runs a matrix of analysis types (model family × rate categories ×
//! precision × scaling × taxa) on every registered implementation and
//! checks each result against the reference pruning oracle. Exit code 0
//! means every combination passed.
//!
//! Run: `cargo run -p genomictest --bin testsuite --release [-- --quick]`

use beagle_core::Flags;
use genomictest::{full_manager, ModelKind, Problem, Scenario};

struct CaseResult {
    passed: usize,
    failed: usize,
    skipped: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let manager = full_manager();
    let names = manager.implementation_names();

    // The analysis-type matrix.
    let models = [
        ModelKind::Nucleotide,
        ModelKind::AminoAcid,
        ModelKind::Codon,
    ];
    let taxa_list: &[usize] = if quick { &[4, 16] } else { &[4, 16, 48] };
    let categories_list = [1usize, 4];

    let mut totals = CaseResult {
        passed: 0,
        failed: 0,
        skipped: 0,
    };
    println!(
        "BEAGLE-RS verification suite ({} implementations)",
        names.len()
    );
    println!("{:-<78}", "");

    for model in models {
        for &taxa in taxa_list {
            for &categories in &categories_list {
                // Cap the target below the number of distinct columns the
                // state space can produce (4 nucleotide taxa only have 256).
                let want = match model {
                    ModelKind::Codon => 150,
                    _ => 600,
                };
                let cap = beagle_phylo::simulate::max_unique_patterns(model.alphabet(), taxa);
                let patterns = want.min((cap * 0.6) as usize).max(16);
                let scenario = Scenario {
                    model,
                    taxa,
                    patterns,
                    categories,
                    seed: 7_000 + taxa as u64 * 10 + categories as u64,
                };
                let problem = Problem::generate(&scenario);
                let oracle = problem.oracle();
                print!(
                    "{:<10} taxa={:<3} cats={} patterns={:<5} oracle={:<14.2}",
                    format!("{model:?}"),
                    taxa,
                    categories,
                    problem.patterns.pattern_count(),
                    oracle
                );

                let mut case = CaseResult {
                    passed: 0,
                    failed: 0,
                    skipped: 0,
                };
                for name in &names {
                    for (single, scaled) in [(false, false), (false, true), (true, true)] {
                        let precision = if single {
                            Flags::PRECISION_SINGLE
                        } else {
                            Flags::PRECISION_DOUBLE
                        };
                        let Ok(mut inst) =
                            manager.create_instance_by_name(name, &problem.config(), precision)
                        else {
                            case.skipped += 1;
                            continue;
                        };
                        problem.load(inst.as_mut());
                        let lnl = problem.evaluate(inst.as_mut(), scaled);
                        let rel = ((lnl - oracle) / oracle).abs();
                        let tol = if single { 1e-4 } else { 1e-9 };
                        if rel < tol {
                            case.passed += 1;
                        } else {
                            case.failed += 1;
                            println!();
                            println!(
                                "  FAIL {name} single={single} scaled={scaled}: {lnl} vs {oracle} (rel {rel:.2e})"
                            );
                        }
                    }
                }
                println!(
                    "  pass {:>3}  fail {:>2}  skip {:>2}",
                    case.passed, case.failed, case.skipped
                );
                totals.passed += case.passed;
                totals.failed += case.failed;
                totals.skipped += case.skipped;
            }
        }
    }

    println!("{:-<78}", "");
    println!(
        "total: {} passed, {} failed, {} skipped (unsupported configurations)",
        totals.passed, totals.failed, totals.skipped
    );
    if totals.failed > 0 {
        std::process::exit(1);
    }
}
