//! # genomictest
//!
//! BEAGLE-RS's test and benchmark program, mirroring the `genomictest` tool
//! of the BEAGLE project (§V-A): it "generates random synthetic datasets of
//! arbitrary sizes and is used to evaluate performance and assure correct
//! functioning of the library". Throughput is reported as effective GFLOPS
//! of the partial-likelihoods function, which makes results comparable
//! across problem sizes and precisions and indicates whether a kernel is
//! compute- or memory-bound.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use beagle_core::{
    BeagleInstance, BufferId, Flags, ImplementationManager, InstanceConfig, InstanceSpec,
    Operation, ScalingMode,
};
use beagle_phylo::likelihood::log_likelihood;
use beagle_phylo::models::{aminoacid, codon, nucleotide};
use beagle_phylo::simulate::simulate_patterns;
use beagle_phylo::{Alphabet, ReversibleModel, SitePatterns, SiteRates, Tree};

/// Which substitution model family a scenario uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// 4-state HKY85 nucleotide model.
    Nucleotide,
    /// 20-state Poisson amino-acid model.
    AminoAcid,
    /// 61-state GY94-style codon model.
    Codon,
}

impl ModelKind {
    /// State count of the family.
    pub fn state_count(self) -> usize {
        self.alphabet().state_count()
    }

    /// The underlying alphabet.
    pub fn alphabet(self) -> Alphabet {
        match self {
            ModelKind::Nucleotide => Alphabet::Dna,
            ModelKind::AminoAcid => Alphabet::AminoAcid,
            ModelKind::Codon => Alphabet::Codon,
        }
    }

    /// Build a representative model of the family.
    pub fn build(self) -> ReversibleModel {
        match self {
            ModelKind::Nucleotide => nucleotide::hky85(2.0, &[0.3, 0.2, 0.25, 0.25]),
            ModelKind::AminoAcid => aminoacid::poisson(&aminoacid::uniform_frequencies()),
            ModelKind::Codon => codon::gy94(
                codon::CodonModelParams::default(),
                &codon::uniform_codon_frequencies(),
            ),
        }
    }
}

/// A synthetic benchmark scenario.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Model family (fixes the state count).
    pub model: ModelKind,
    /// Number of tip sequences.
    pub taxa: usize,
    /// Target number of unique site patterns.
    pub patterns: usize,
    /// Rate categories.
    pub categories: usize,
    /// RNG seed (scenarios are fully reproducible).
    pub seed: u64,
}

impl Scenario {
    /// A small default scenario.
    pub fn default_nucleotide() -> Self {
        Scenario {
            model: ModelKind::Nucleotide,
            taxa: 16,
            patterns: 1000,
            categories: 4,
            seed: 1,
        }
    }
}

/// A fully materialized problem: tree + model + rates + data.
pub struct Problem {
    /// The (random) tree.
    pub tree: Tree,
    /// The substitution model.
    pub model: ReversibleModel,
    /// Rate heterogeneity.
    pub rates: SiteRates,
    /// Compressed unique site patterns.
    pub patterns: SitePatterns,
}

impl Problem {
    /// Generate the problem a scenario describes.
    pub fn generate(s: &Scenario) -> Problem {
        let mut rng = SmallRng::seed_from_u64(s.seed);
        let tree = Tree::random(s.taxa, 0.1, &mut rng);
        let model = s.model.build();
        let rates = if s.categories > 1 {
            SiteRates::discrete_gamma(0.5, s.categories)
        } else {
            SiteRates::constant()
        };
        let patterns = simulate_patterns(&tree, &model, &rates, s.patterns, &mut rng);
        Problem {
            tree,
            model,
            rates,
            patterns,
        }
    }

    /// Instance configuration for this problem.
    pub fn config(&self) -> InstanceConfig {
        InstanceConfig::for_tree(
            self.tree.taxon_count(),
            self.patterns.pattern_count(),
            self.model.state_count(),
            self.rates.category_count(),
        )
    }

    /// The post-order operation list (optionally with per-op rescaling).
    pub fn operations(&self, scaled: bool) -> Vec<Operation> {
        self.tree
            .operation_schedule()
            .iter()
            .map(|e| {
                let op = Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2);
                if scaled {
                    op.with_scaling(e.destination)
                } else {
                    op
                }
            })
            .collect()
    }

    /// Load all static data (tips, eigen, rates, weights) into an instance
    /// and compute the transition matrices.
    pub fn load(&self, inst: &mut dyn BeagleInstance) {
        let eig = self.model.eigen();
        inst.set_eigen_decomposition(
            0,
            eig.vectors.as_slice(),
            eig.inverse_vectors.as_slice(),
            &eig.values,
        )
        .expect("set eigen");
        inst.set_state_frequencies(0, self.model.frequencies())
            .expect("set freqs");
        inst.set_category_rates(&self.rates.rates)
            .expect("set rates");
        inst.set_category_weights(0, &self.rates.weights)
            .expect("set weights");
        inst.set_pattern_weights(self.patterns.weights())
            .expect("set pattern weights");
        for tip in 0..self.tree.taxon_count() {
            inst.set_tip_states(tip, &self.patterns.tip_states(tip))
                .expect("set tips");
        }
        let (idx, len): (Vec<usize>, Vec<f64>) =
            self.tree.branch_assignments().iter().copied().unzip();
        inst.update_transition_matrices(0, &idx, &len)
            .expect("update matrices");
    }

    /// Full log-likelihood evaluation through the BEAGLE API.
    pub fn evaluate(&self, inst: &mut dyn BeagleInstance, scaled: bool) -> f64 {
        let ops = self.operations(scaled);
        inst.update_partials(&ops).expect("update partials");
        let scaling = if scaled {
            let c = inst.config().scale_buffer_count - 1;
            inst.reset_scale_factors(c).expect("reset scale");
            let bufs: Vec<usize> = ops.iter().map(|o| o.destination).collect();
            inst.accumulate_scale_factors(&bufs, c)
                .expect("accumulate scale");
            ScalingMode::cumulative(c)
        } else {
            ScalingMode::None
        };
        inst.integrate_root(
            BufferId(self.tree.root()),
            BufferId(0),
            BufferId(0),
            scaling,
        )
        .expect("root lnL")
    }

    /// Reference log-likelihood from the pruning oracle.
    pub fn oracle(&self) -> f64 {
        log_likelihood(&self.tree, &self.model, &self.rates, &self.patterns)
    }

    /// Effective flop count of one full partial-likelihoods traversal:
    /// `(n−1)` operations × `categories × patterns × states × (4·states+2)`.
    pub fn traversal_flops(&self) -> f64 {
        let s = self.model.state_count() as f64;
        let ops = (self.tree.taxon_count() - 1) as f64;
        ops * self.rates.category_count() as f64
            * self.patterns.pattern_count() as f64
            * s
            * (4.0 * s + 2.0)
    }
}

/// One throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputReport {
    /// Effective billions of floating-point operations per second for the
    /// partial-likelihoods function.
    pub gflops: f64,
    /// Time per traversal.
    pub per_traversal: Duration,
    /// Log-likelihood from the final evaluation (correctness telltale).
    pub log_likelihood: f64,
    /// Whether timing came from the simulated device clock.
    pub simulated: bool,
}

/// Benchmark the partial-likelihoods function on `inst`: `reps` full
/// traversals, timed with the simulated device clock when the instance has
/// one, the wall clock otherwise.
pub fn benchmark(
    problem: &Problem,
    inst: &mut dyn BeagleInstance,
    reps: usize,
) -> ThroughputReport {
    // Throughput measurement repeats bit-identical traversals on purpose;
    // the incremental memoization layer would skip them all and time
    // nothing. Measure the kernels, not the memo cache.
    inst.set_incremental(false);
    problem.load(inst);
    let ops = problem.operations(false);
    // Warm-up traversal (first-touch allocation, pool spin-up).
    inst.update_partials(&ops).expect("warmup");

    let simulated = inst.simulated_time().is_some();
    inst.reset_simulated_time();
    let start = Instant::now();
    for _ in 0..reps {
        inst.update_partials(&ops).expect("timed traversal");
    }
    let elapsed = inst.simulated_time().unwrap_or_else(|| start.elapsed());
    let lnl = inst
        .integrate_root(
            BufferId(problem.tree.root()),
            BufferId(0),
            BufferId(0),
            ScalingMode::None,
        )
        .expect("root lnL");

    let per_traversal = elapsed / reps as u32;
    let gflops = problem.traversal_flops() / per_traversal.as_secs_f64() / 1e9;
    ThroughputReport {
        gflops,
        per_traversal,
        log_likelihood: lnl,
        simulated,
    }
}

/// A manager with every implementation in the workspace registered:
/// the five CPU models, CUDA, OpenCL-GPU per device, and OpenCL-x86.
///
/// Returned as an [`std::sync::Arc`] so multi-device wrappers
/// ([`beagle_core::PartitionedInstance`]) can keep a handle for failover:
/// rebuilding replacement children after a device dies requires re-asking
/// the manager. Plain call sites are unaffected (`&manager` derefs).
pub fn full_manager() -> std::sync::Arc<ImplementationManager> {
    let mut m = ImplementationManager::new();
    beagle_cpu::register_cpu_factories(&mut m);
    beagle_accel::register_accel_factories(&mut m);
    std::sync::Arc::new(m)
}

/// Like [`full_manager`], but accelerator devices named in `faults` inject
/// that plan's faults into every driver call (see `beagle_accel::fault`).
pub fn full_manager_with_faults(
    faults: &beagle_accel::FaultDirectory,
) -> std::sync::Arc<ImplementationManager> {
    let mut m = ImplementationManager::new();
    beagle_cpu::register_cpu_factories(&mut m);
    beagle_accel::register_accel_factories_with_faults(&mut m, faults);
    std::sync::Arc::new(m)
}

/// Correctness check (genomictest's testing-script role): evaluate on the
/// given instance and compare to the oracle. Returns `(beagle, oracle)`.
pub fn verify(problem: &Problem, inst: &mut dyn BeagleInstance, scaled: bool) -> (f64, f64) {
    problem.load(inst);
    let lnl = problem.evaluate(inst, scaled);
    (lnl, problem.oracle())
}

/// Convenience: the best instance for a problem under the given preference
/// and requirement flags, via the [`InstanceSpec`] front door (so it picks
/// up numerical rescue exactly like any other creation path).
pub fn best_instance(
    problem: &Problem,
    prefs: Flags,
    reqs: Flags,
) -> beagle_core::Result<Box<dyn BeagleInstance>> {
    InstanceSpec::with_config(problem.config())
        .prefer(prefs)
        .require(reqs)
        .instantiate(&full_manager())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_generates_exact_pattern_count() {
        let s = Scenario {
            model: ModelKind::Nucleotide,
            taxa: 8,
            patterns: 333,
            categories: 2,
            seed: 9,
        };
        let p = Problem::generate(&s);
        assert_eq!(p.patterns.pattern_count(), 333);
        assert_eq!(p.config().state_count, 4);
    }

    #[test]
    fn verify_serial_cpu_against_oracle() {
        let s = Scenario {
            model: ModelKind::Nucleotide,
            taxa: 6,
            patterns: 100,
            categories: 2,
            seed: 10,
        };
        let p = Problem::generate(&s);
        let mut inst = best_instance(&p, Flags::NONE, Flags::THREADING_NONE).unwrap();
        let (beagle, oracle) = verify(&p, inst.as_mut(), false);
        assert!((beagle - oracle).abs() < 1e-8, "{beagle} vs {oracle}");
    }

    #[test]
    fn benchmark_reports_positive_throughput() {
        let s = Scenario {
            model: ModelKind::Nucleotide,
            taxa: 8,
            patterns: 600,
            categories: 2,
            seed: 11,
        };
        let p = Problem::generate(&s);
        let mut inst = best_instance(&p, Flags::NONE, Flags::THREADING_THREAD_POOL).unwrap();
        let r = benchmark(&p, inst.as_mut(), 2);
        assert!(r.gflops > 0.0);
        assert!(!r.simulated);
        assert!(r.log_likelihood.is_finite());
    }

    #[test]
    fn gpu_benchmark_uses_simulated_clock() {
        let s = Scenario {
            model: ModelKind::Nucleotide,
            taxa: 8,
            patterns: 500,
            categories: 2,
            seed: 12,
        };
        let p = Problem::generate(&s);
        let mut inst = best_instance(&p, Flags::NONE, Flags::FRAMEWORK_CUDA).unwrap();
        let r = benchmark(&p, inst.as_mut(), 2);
        assert!(r.simulated);
        assert!(r.gflops > 0.0);
    }

    #[test]
    fn flop_convention() {
        let s = Scenario {
            model: ModelKind::Nucleotide,
            taxa: 3,
            patterns: 10,
            categories: 2,
            seed: 13,
        };
        let p = Problem::generate(&s);
        // (3-1 ops) * 2 cats * 10 patterns * 4 states * 18
        assert_eq!(p.traversal_flops(), 2.0 * 2.0 * 10.0 * 4.0 * 18.0);
    }

    #[test]
    fn full_manager_has_all_families() {
        let m = full_manager();
        let names = m.implementation_names();
        assert!(names.iter().any(|n| n.starts_with("CPU-serial")));
        assert!(names.iter().any(|n| n.starts_with("CPU-threadpool")));
        assert!(names.iter().any(|n| n.starts_with("CUDA")));
        assert!(names.iter().any(|n| n.starts_with("OpenCL-GPU")));
        assert!(names.iter().any(|n| n == "OpenCL-x86"));
    }
}
