//! Compile-time audit of the `BeagleInstance: Send + Sync` contract.
//!
//! The instance pool (`beagle_core::pool`) moves instances between worker
//! threads and shares references to its supervision structures across them,
//! which is only sound because the trait carries `Send + Sync` as a
//! supertrait bound. This test makes the audit explicit: every in-tree
//! backend, every wrapper layer, and the pool's own public types must
//! satisfy the bounds *by construction*. A backend that regresses (say, by
//! storing an `Rc` or a `RefCell`) fails this file at compile time, long
//! before any scheduler interleaving could expose it.

use beagle_core::pool::PoolHandle;
use beagle_core::rescue::RescueInstance;
use beagle_core::{
    BeagleInstance, CheckpointedInstance, InstancePool, Lane, MemoInstance, PartitionedInstance,
    PoolError, PoolStats, QueuedInstance, SessionRequest, Ticket,
};

fn assert_send_sync<T: Send + Sync + ?Sized>() {}
fn assert_send<T: Send + ?Sized>() {}

#[test]
fn backends_are_send_sync() {
    assert_send_sync::<beagle_cpu::CpuInstance<f32>>();
    assert_send_sync::<beagle_cpu::CpuInstance<f64>>();
    assert_send_sync::<beagle_accel::AccelInstance<f32, beagle_accel::CudaDialect>>();
    assert_send_sync::<beagle_accel::AccelInstance<f64, beagle_accel::CudaDialect>>();
    assert_send_sync::<beagle_accel::AccelInstance<f32, beagle_accel::OpenClDialect>>();
    assert_send_sync::<beagle_accel::AccelInstance<f64, beagle_accel::OpenClDialect>>();
}

#[test]
fn wrappers_are_send_sync() {
    assert_send_sync::<QueuedInstance>();
    assert_send_sync::<RescueInstance>();
    assert_send_sync::<CheckpointedInstance>();
    assert_send_sync::<MemoInstance>();
    assert_send_sync::<PartitionedInstance>();
}

#[test]
fn trait_objects_are_send_sync() {
    assert_send_sync::<dyn BeagleInstance>();
    assert_send_sync::<Box<dyn BeagleInstance>>();
}

#[test]
fn pool_types_are_sendable() {
    // The pool itself and its handles cross thread boundaries.
    assert_send_sync::<InstancePool>();
    assert_send_sync::<PoolHandle<Box<dyn BeagleInstance>>>();
    assert_send::<Ticket<f64>>();
    assert_send_sync::<SessionRequest>();
    assert_send_sync::<PoolStats>();
    assert_send_sync::<Lane>();
    assert_send_sync::<PoolError>();
}
