//! Differential tests for the instance pool: K independent likelihood
//! sessions scheduled over a pool must be *bit-identical* to the same
//! sessions evaluated serially on a pinned instance — across backend,
//! precision, and queue mode, and including a worker eviction mid-run.
//!
//! The bit-exactness contract every backend already honours (all in-tree
//! implementations produce identical f64 results for the same session) is
//! what makes the pool's dynamic placement safe: it cannot matter which
//! worker serves which session, or whether a session was requeued onto a
//! different implementation after its first worker died.

use std::sync::Arc;

use beagle_accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle_core::{
    BufferId, Flags, ImplementationManager, InstanceSpec, Lane, PoolBuilder, SessionRequest,
};
use genomictest::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};

const SESSIONS: usize = 6;
const RADEON: &str = "OpenCL-GPU (AMD Radeon R9 Nano (simulated))";

fn scenario(seed: u64) -> Scenario {
    Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 200,
        categories: 2,
        seed,
    }
}

/// Materialize one self-contained session from a scenario seed.
fn session(seed: u64) -> SessionRequest {
    let problem = Problem::generate(&scenario(seed));
    let eig = problem.model.eigen();
    SessionRequest {
        tip_states: (0..problem.tree.taxon_count())
            .map(|t| problem.patterns.tip_states(t))
            .collect(),
        pattern_weights: problem.patterns.weights().to_vec(),
        category_rates: problem.rates.rates.clone(),
        category_weights: problem.rates.weights.clone(),
        frequencies: problem.model.frequencies().to_vec(),
        eigen: Some((
            eig.vectors.as_slice().to_vec(),
            eig.inverse_vectors.as_slice().to_vec(),
            eig.values.clone(),
        )),
        matrices: problem.tree.branch_assignments(),
        operations: problem.operations(true),
        root: BufferId(problem.tree.root()),
        scaled: true,
        deadline: None,
    }
}

fn base_spec() -> InstanceSpec {
    InstanceSpec::with_config(Problem::generate(&scenario(0)).config())
}

/// Serial reference: all sessions through one pinned instance, in order.
fn serial_bits(manager: &Arc<ImplementationManager>, spec: &InstanceSpec) -> Vec<u64> {
    let mut inst = spec.instantiate(manager).expect("serial pinned instance");
    (0..SESSIONS as u64)
        .map(|seed| {
            session(seed)
                .evaluate(inst.as_mut())
                .expect("serial evaluation")
                .to_bits()
        })
        .collect()
}

/// Pooled run: same sessions over `workers` pool workers, mixed lanes.
fn pooled_bits(
    manager: &Arc<ImplementationManager>,
    spec: &InstanceSpec,
    pins: &[&str],
    workers: usize,
) -> (Vec<u64>, beagle_core::PoolStats) {
    let pool = PoolBuilder::from_spec(spec.clone())
        .workers(workers)
        .pin(pins.iter().copied())
        .build(manager)
        .expect("pool builds");
    let handle = pool.handle();
    let tickets: Vec<_> = (0..SESSIONS as u64)
        .map(|seed| {
            let lane = if seed % 2 == 0 {
                Lane::Interactive
            } else {
                Lane::Batch
            };
            handle
                .submit_session(lane, session(seed))
                .expect("pool accepts sessions")
        })
        .collect();
    let bits = tickets
        .into_iter()
        .map(|t| {
            t.wait()
                .expect("ticket resolves")
                .expect("session evaluates")
                .to_bits()
        })
        .collect();
    let (drained, _) = pool.shutdown_drain(None);
    assert!(drained, "nothing should be left after all tickets resolved");
    (bits, handle.stats())
}

#[test]
fn pooled_matches_serial_across_backends_precisions_and_queue_modes() {
    let manager = full_manager();
    let cases: &[(&str, Flags, bool)] = &[
        ("CPU-serial", Flags::PRECISION_DOUBLE, false),
        ("CPU-serial", Flags::PRECISION_SINGLE, false),
        ("CPU-SSE", Flags::PRECISION_DOUBLE, true),
        (RADEON, Flags::PRECISION_DOUBLE, false),
        (RADEON, Flags::PRECISION_SINGLE, true),
    ];
    for &(name, precision, queued) in cases {
        let mut spec = base_spec().named(name).require(precision);
        if queued {
            spec = spec.queued();
        }
        let serial = serial_bits(&manager, &spec);
        // Two workers of the same pinned implementation: placement and
        // stealing may shuffle which worker runs what; results may not care.
        let unpinned = {
            let mut s = spec.clone();
            s.implementation = None;
            s
        };
        let (pooled, stats) = pooled_bits(&manager, &unpinned, &[name], 2);
        assert_eq!(
            pooled, serial,
            "pooled vs serial mismatch for {name} (precision {precision:?}, queued={queued})"
        );
        assert_eq!(stats.completed, SESSIONS as u64);
        assert_eq!(stats.evictions, 0, "healthy fleet must not evict");
    }
}

#[test]
fn pooled_sessions_survive_mid_run_worker_eviction_bit_identically() {
    // The Radeon worker's device dies permanently partway through the run:
    // whatever session is on it fails with a permanent fault, the worker is
    // evicted (breaker trips), the session requeues onto another worker, and
    // every ticket still resolves to the bit-exact serial result.
    let reference = serial_bits(&full_manager(), &base_spec().named("CPU-serial"));

    let faults = FaultDirectory::new().with_plan(
        catalog::radeon_r9_nano().name,
        FaultPlan::new(7).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(40)),
    );
    let manager = full_manager_with_faults(&faults);
    let (pooled, stats) = pooled_bits(&manager, &base_spec(), &[RADEON, "CPU-serial"], 2);

    assert_eq!(pooled, reference, "eviction must not change any result");
    assert!(
        stats.evictions >= 1,
        "the dead device must evict its worker (stats: {})",
        stats.to_json()
    );
    assert!(
        stats.requeued >= 1,
        "the interrupted session must requeue (stats: {})",
        stats.to_json()
    );
    assert!(
        stats.rebuilds >= 1,
        "the evicted worker must be replaced (stats: {})",
        stats.to_json()
    );
    assert!(
        !manager.health().available(RADEON),
        "the dead implementation's breaker must be open"
    );
}
