//! Loopback differential suite for the likelihood service: results served
//! over TCP and Unix-domain sockets must be **bit-identical** to the same
//! sessions evaluated in-process — across backend and precision, through a
//! mid-session worker eviction, and across a graceful drain with work in
//! flight. Plus decoder-robustness property tests: arbitrary bytes must
//! produce typed [`WireError`]s, never a panic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use beagle_accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle_core::wire::{self, BusyReason, Frame};
use beagle_core::{
    BufferId, Deadline, Flags, ImplementationManager, InstanceSpec, Lane, SessionRequest,
};
use beagle_server::{Client, ClientError, Endpoint, Server, ServerBuilder};
use genomictest::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};

const SESSIONS: usize = 6;
const RADEON: &str = "OpenCL-GPU (AMD Radeon R9 Nano (simulated))";

fn scenario(seed: u64) -> Scenario {
    Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 200,
        categories: 2,
        seed,
    }
}

/// Materialize one self-contained session from a scenario seed.
fn session_for(scenario: &Scenario) -> SessionRequest {
    let problem = Problem::generate(scenario);
    let eig = problem.model.eigen();
    SessionRequest {
        tip_states: (0..problem.tree.taxon_count())
            .map(|t| problem.patterns.tip_states(t))
            .collect(),
        pattern_weights: problem.patterns.weights().to_vec(),
        category_rates: problem.rates.rates.clone(),
        category_weights: problem.rates.weights.clone(),
        frequencies: problem.model.frequencies().to_vec(),
        eigen: Some((
            eig.vectors.as_slice().to_vec(),
            eig.inverse_vectors.as_slice().to_vec(),
            eig.values.clone(),
        )),
        matrices: problem.tree.branch_assignments(),
        operations: problem.operations(true),
        root: BufferId(problem.tree.root()),
        scaled: true,
        deadline: None,
    }
}

fn session(seed: u64) -> SessionRequest {
    session_for(&scenario(seed))
}

fn base_spec() -> InstanceSpec {
    InstanceSpec::with_config(Problem::generate(&scenario(0)).config())
}

/// Serial in-process reference: all sessions through one pinned instance.
fn serial_bits(manager: &Arc<ImplementationManager>, spec: &InstanceSpec) -> Vec<u64> {
    let mut inst = spec.instantiate(manager).expect("serial pinned instance");
    (0..SESSIONS as u64)
        .map(|seed| {
            session(seed)
                .evaluate(inst.as_mut())
                .expect("serial evaluation")
                .to_bits()
        })
        .collect()
}

/// Remote run over an endpoint: same sessions through a connected client.
fn remote_bits(endpoint: Endpoint) -> Vec<u64> {
    let mut client = Client::connect(endpoint).expect("client connects");
    (0..SESSIONS as u64)
        .map(|seed| {
            let lane = if seed % 2 == 0 {
                Lane::Interactive
            } else {
                Lane::Batch
            };
            client
                .evaluate_patiently(&session(seed), lane, 16)
                .expect("remote evaluation")
                .to_bits()
        })
        .collect()
}

fn tcp_endpoint(server: &Server) -> Endpoint {
    Endpoint::Tcp(server.tcp_addr().expect("tcp listener").to_string())
}

/// Extract an integer field from hand-rolled stats JSON (first occurrence).
fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("{key} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("numeric {key} in {json}"))
}

#[test]
fn tcp_remote_matches_serial_across_backends_and_precisions() {
    let manager = full_manager();
    let cases: &[(&str, Flags, bool)] = &[
        ("CPU-serial", Flags::PRECISION_DOUBLE, false),
        ("CPU-serial", Flags::PRECISION_SINGLE, false),
        ("CPU-SSE", Flags::PRECISION_DOUBLE, true),
        (RADEON, Flags::PRECISION_DOUBLE, false),
        (RADEON, Flags::PRECISION_SINGLE, true),
    ];
    for &(name, precision, queued) in cases {
        let mut spec = base_spec().named(name).require(precision);
        if queued {
            spec = spec.queued();
        }
        let serial = serial_bits(&manager, &spec);
        let unpinned = {
            let mut s = spec.clone();
            s.implementation = None;
            s
        };
        let server = ServerBuilder::from_spec(unpinned)
            .workers(2)
            .pin([name])
            .tcp("127.0.0.1:0")
            .serve(&manager)
            .expect("server starts");
        let remote = remote_bits(tcp_endpoint(&server));
        assert!(server.drain(None), "idle server must drain fully");
        assert_eq!(
            remote, serial,
            "remote vs serial mismatch for {name} (precision {precision:?}, queued={queued})"
        );
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_remote_matches_serial() {
    let manager = full_manager();
    let spec = base_spec().named("CPU-serial");
    let serial = serial_bits(&manager, &spec);
    let path = std::env::temp_dir().join(format!("beagle-serve-unix-{}.sock", std::process::id()));
    let unpinned = {
        let mut s = spec.clone();
        s.implementation = None;
        s
    };
    let server = ServerBuilder::from_spec(unpinned)
        .workers(2)
        .pin(["CPU-serial"])
        .unix(&path)
        .serve(&manager)
        .expect("server starts");
    let remote = remote_bits(Endpoint::Unix(path.clone()));
    assert!(server.drain(None));
    assert_eq!(remote, serial, "unix-socket transport must be bit-exact");
    assert!(!path.exists(), "drain must remove the socket file");
}

#[test]
fn remote_sessions_survive_mid_session_worker_eviction_bit_identically() {
    // The Radeon worker's device dies permanently partway through the run:
    // the session on it is requeued server-side onto another worker, and
    // every client still receives the bit-exact result — eviction is
    // invisible through the wire.
    let reference = serial_bits(&full_manager(), &base_spec().named("CPU-serial"));
    let faults = FaultDirectory::new().with_plan(
        catalog::radeon_r9_nano().name,
        FaultPlan::new(7).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(40)),
    );
    let manager = full_manager_with_faults(&faults);
    let server = ServerBuilder::from_spec(base_spec())
        .workers(2)
        .pin([RADEON, "CPU-serial"])
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let endpoint = tcp_endpoint(&server);

    // Two concurrent client streams keep both workers busy so the Radeon
    // device certainly reaches its 40th call mid-session.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let endpoint = endpoint.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(endpoint).expect("client connects");
                for seed in 0..SESSIONS as u64 {
                    let lnl = client
                        .evaluate_patiently(&session(seed), Lane::Interactive, 16)
                        .expect("remote evaluation survives eviction");
                    assert_eq!(
                        lnl.to_bits(),
                        reference[seed as usize],
                        "eviction must not change result for seed {seed}"
                    );
                }
            });
        }
    });

    let mut client = Client::connect(endpoint).expect("stats client");
    let stats = client.stats().expect("stats snapshot");
    assert!(
        json_u64(&stats, "evictions") >= 1,
        "the dead device must evict its worker: {stats}"
    );
    assert!(
        json_u64(&stats, "requeued") >= 1,
        "the interrupted session must requeue: {stats}"
    );
    assert!(
        !manager.health().available(RADEON),
        "the dead implementation's breaker must be open"
    );
    assert!(server.drain(None));
}

#[test]
fn drain_with_work_in_flight_answers_every_accepted_session() {
    // Four clients submit heavy sessions to a single worker; a fifth client
    // asks for a drain while they are queued/running. Every accepted
    // session must still be answered (no lost in-flight work), and the
    // server must refuse new work afterwards.
    let heavy = Scenario {
        model: ModelKind::Codon,
        taxa: 6,
        patterns: 300,
        categories: 2,
        seed: 5,
    };
    let manager = full_manager();
    let spec = InstanceSpec::with_config(Problem::generate(&heavy).config());
    let mut reference = spec
        .clone()
        .named("CPU-serial")
        .instantiate(&manager)
        .expect("reference instance");
    let expected = session_for(&heavy)
        .evaluate(reference.as_mut())
        .expect("reference evaluation")
        .to_bits();

    let unpinned = spec;
    let server = ServerBuilder::from_spec(unpinned)
        .workers(1)
        .pin(["CPU-serial"])
        .queue_capacity(16)
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let endpoint = tcp_endpoint(&server);

    let request = session_for(&heavy);
    let answered = AtomicUsize::new(0);
    let refused = AtomicUsize::new(0);
    let drained_flag = Mutex::new(None);
    // All four clients connect and hold at the barrier with their session
    // already built, so the submissions are in flight well before the
    // admin's drain 50 ms later.
    let barrier = Barrier::new(5);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let endpoint = endpoint.clone();
            let (answered, refused, barrier) = (&answered, &refused, &barrier);
            let request = request.clone();
            scope.spawn(move || {
                let mut client = Client::connect(endpoint).expect("client connects");
                barrier.wait();
                match client.evaluate(&request, Lane::Batch) {
                    Ok(lnl) => {
                        assert_eq!(lnl.to_bits(), expected, "drained result must be bit-exact");
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    // Submitted after the drain began.
                    Err(ClientError::Busy(BusyReason::Draining)) | Err(ClientError::Io(_)) => {
                        refused.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected client error during drain: {e}"),
                }
            });
        }
        let endpoint = endpoint.clone();
        let (drained_flag, barrier) = (&drained_flag, &barrier);
        scope.spawn(move || {
            let mut admin = Client::connect(endpoint).expect("admin connects");
            barrier.wait();
            // Give the workers time to accept some sessions first.
            std::thread::sleep(Duration::from_millis(50));
            *drained_flag.lock().unwrap() = Some(admin.drain().expect("drain ack"));
        });
    });

    assert!(
        drained_flag.lock().unwrap().expect("drain ran"),
        "an undeadlined drain answers everything"
    );
    assert!(
        answered.load(Ordering::Relaxed) >= 1,
        "at least one session must have been in flight and answered"
    );

    // New work after the drain is refused (the acceptor drops fresh
    // connections, so the client surfaces a transport error or Draining).
    match Client::connect(endpoint).and_then(|mut c| c.evaluate(&session(0), Lane::Interactive)) {
        Err(ClientError::Io(_)) | Err(ClientError::Busy(BusyReason::Draining)) => {}
        Ok(_) => panic!("a drained server must not evaluate new sessions"),
        Err(e) => panic!("unexpected post-drain error: {e}"),
    }

    // Owner-side drain after a remote drain reports the same result and
    // closes the listeners; nothing was lost.
    assert!(server.drain(None));
}

#[test]
fn zero_client_cap_bounces_submissions_with_typed_busy() {
    let manager = full_manager();
    let server = ServerBuilder::from_spec(base_spec())
        .workers(1)
        .pin(["CPU-serial"])
        .max_in_flight(0)
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let mut client = Client::connect(tcp_endpoint(&server)).expect("client connects");
    match client.evaluate(&session(0), Lane::Interactive) {
        Err(ClientError::Busy(BusyReason::ClientCap)) => {}
        other => panic!("expected Busy(ClientCap), got {other:?}"),
    }
    // Admin frames are not subject to the admission cap; the rejection is
    // visible in the snapshot.
    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "busy_client_cap") >= 1, "{stats}");
    assert!(server.drain(None));
}

#[test]
fn pool_full_bounces_are_typed_and_audited_in_stats() {
    // One worker, queue depth 1, six simultaneous heavy submissions: at
    // least one must bounce with Busy(PoolFull), and the pool's own
    // `rejected` counter must record it — auditable via StatsSnapshot
    // end to end.
    let heavy = Scenario {
        model: ModelKind::Codon,
        taxa: 6,
        patterns: 300,
        categories: 2,
        seed: 9,
    };
    let manager = full_manager();
    let spec = InstanceSpec::with_config(Problem::generate(&heavy).config());
    let mut reference = spec
        .clone()
        .named("CPU-serial")
        .instantiate(&manager)
        .expect("reference instance");
    let expected = session_for(&heavy)
        .evaluate(reference.as_mut())
        .expect("reference evaluation")
        .to_bits();

    let server = ServerBuilder::from_spec(spec)
        .workers(1)
        .pin(["CPU-serial"])
        .queue_capacity(1)
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let endpoint = tcp_endpoint(&server);

    let bounced = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);
    let barrier = Barrier::new(6);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let endpoint = endpoint.clone();
            let (bounced, served, barrier) = (&bounced, &served, &barrier);
            let heavy = &heavy;
            scope.spawn(move || {
                let mut client = Client::connect(endpoint).expect("client connects");
                let request = session_for(heavy);
                barrier.wait();
                match client.evaluate(&request, Lane::Batch) {
                    Ok(lnl) => {
                        assert_eq!(lnl.to_bits(), expected);
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ClientError::Busy(BusyReason::PoolFull)) => {
                        bounced.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            });
        }
    });
    assert!(
        served.load(Ordering::Relaxed) >= 1,
        "someone must have been served"
    );
    assert!(
        bounced.load(Ordering::Relaxed) >= 1,
        "a depth-1 queue cannot absorb six simultaneous sessions"
    );
    let mut client = Client::connect(endpoint).expect("stats client");
    let stats = client.stats().expect("stats");
    assert!(
        json_u64(&stats, "rejected") as usize >= bounced.load(Ordering::Relaxed),
        "pool rejected counter must audit the bounces: {stats}"
    );
    assert!(
        json_u64(&stats, "busy_pool_full") as usize >= bounced.load(Ordering::Relaxed),
        "{stats}"
    );
    assert!(server.drain(None));
}

#[test]
fn per_request_deadline_propagates_to_the_remote_watchdog() {
    // The Radeon device stalls 300 ms on every call — far under the 2 s
    // driver-default watchdog, so WITHOUT a per-request deadline nothing
    // would ever time out. With a 50 ms deadline riding the wire, any
    // session placed on the stalled device is cancelled at the deadline,
    // its worker evicted, and the session requeued onto the healthy CPU
    // worker — so every client still gets the bit-exact answer.
    let reference = serial_bits(&full_manager(), &base_spec().named("CPU-serial"));
    let faults = FaultDirectory::new().with_plan(
        catalog::radeon_r9_nano().name,
        FaultPlan::new(11).with_fault(
            FaultKind::Stall(Duration::from_millis(300)),
            false,
            Schedule::EveryN(1),
        ),
    );
    let manager = full_manager_with_faults(&faults);
    let server = ServerBuilder::from_spec(base_spec())
        .workers(2)
        .pin([RADEON, "CPU-serial"])
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let endpoint = tcp_endpoint(&server);

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let endpoint = endpoint.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(endpoint).expect("client connects");
                for seed in 0..4u64 {
                    let mut request = session(seed);
                    request.deadline = Some(Deadline::new(Duration::from_millis(50)));
                    let lnl = client
                        .evaluate_patiently(&request, Lane::Interactive, 16)
                        .expect("deadline-rescued evaluation");
                    assert_eq!(lnl.to_bits(), reference[seed as usize], "seed {seed}");
                }
            });
        }
    });

    let mut client = Client::connect(endpoint).expect("stats client");
    let stats = client.stats().expect("stats");
    assert!(
        json_u64(&stats, "evictions") >= 1,
        "the wire deadline must have cancelled the stalled device: {stats}"
    );
    assert!(server.drain(None));
}

#[test]
fn malformed_session_yields_typed_remote_error_and_connection_survives() {
    let manager = full_manager();
    let server = ServerBuilder::from_spec(base_spec())
        .workers(1)
        .pin(["CPU-serial"])
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let mut client = Client::connect(tcp_endpoint(&server)).expect("client connects");

    let mut bad = session(0);
    bad.frequencies.truncate(2); // 4-state model, 2 frequencies
    match client.evaluate(&bad, Lane::Interactive) {
        Err(ClientError::Remote(e)) => {
            // The same typed BeagleError an in-process evaluation returns.
            let mut inst = base_spec()
                .named("CPU-serial")
                .instantiate(&manager)
                .expect("local instance");
            let local = bad.evaluate(inst.as_mut()).expect_err("locally invalid");
            assert_eq!(
                format!("{e}"),
                format!("{local}"),
                "remote error must mirror the local one"
            );
        }
        other => panic!("expected Remote error, got {other:?}"),
    }
    // A typed evaluation failure must not poison the connection.
    let good = client
        .evaluate(&session(0), Lane::Interactive)
        .expect("connection still usable");
    assert!(good.is_finite());
    assert!(server.drain(None));
}

// ---------------------------------------------------------------------------
// Decoder robustness: WIRE-v1 must answer garbage with typed errors.
// ---------------------------------------------------------------------------

mod decoder_robustness {
    use super::*;
    use proptest::prelude::*;

    fn valid_submit_bytes() -> Vec<u8> {
        wire::encode_frame(
            99,
            &Frame::Submit {
                lane: Lane::Batch,
                session: Box::new(session(3)),
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary bytes never panic the decoder.
        #[test]
        fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
            let bytes: Vec<u8> = raw.iter().flat_map(|x| x.to_le_bytes()).collect();
            let _ = wire::decode_frame(&bytes);
        }

        /// A single corrupted byte in a valid frame either still decodes
        /// (the flip hit a don't-care bit of a payload float) or fails with
        /// a typed error — never a panic, never an allocation bomb.
        #[test]
        fn corrupted_valid_frames_fail_typed(pos_seed in 0u64..u64::MAX, xor in 1u8..=255u8) {
            let mut bytes = valid_submit_bytes();
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] ^= xor;
            let _ = wire::decode_frame(&bytes);
        }

        /// Every truncation of a valid frame fails with a typed error.
        #[test]
        fn truncations_fail_typed(cut_seed in 0u64..u64::MAX) {
            let bytes = valid_submit_bytes();
            let cut = (cut_seed % bytes.len() as u64) as usize;
            prop_assert!(wire::decode_frame(&bytes[..cut]).is_err());
        }
    }
}
