//! `beagle-serve` — the BEAGLE-RS likelihood service daemon.
//!
//! Serves the full implementation registry (CPU + simulated accelerators)
//! over TCP and/or a Unix-domain socket, sized for one instance
//! configuration given on the command line. With `--self-test N` it
//! additionally runs N loopback client sessions, checks them bit-for-bit
//! against an in-process evaluation, prints the stats snapshot, drains,
//! and exits — which is what `scripts/tier1.sh` uses as the server smoke
//! test.
//!
//! ```text
//! beagle-serve [--tcp ADDR] [--unix PATH] [--workers N] [--queue N]
//!              [--max-in-flight N] [--taxa N] [--patterns N]
//!              [--categories N] [--model nucleotide|codon] [--seed S]
//!              [--self-test N]
//! ```
//!
//! With no endpoint flags it listens on `127.0.0.1:7311`.

use std::process::ExitCode;

use beagle_core::{BufferId, InstanceSpec, Lane, SessionRequest};
use beagle_server::{Client, Endpoint, ServerBuilder};
use genomictest::{full_manager, ModelKind, Problem, Scenario};

struct Args {
    tcp: Option<String>,
    unix: Option<String>,
    workers: usize,
    queue: Option<usize>,
    max_in_flight: usize,
    taxa: usize,
    patterns: usize,
    categories: usize,
    model: ModelKind,
    seed: u64,
    self_test: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        unix: None,
        workers: 2,
        queue: None,
        max_in_flight: 4,
        taxa: 8,
        patterns: 200,
        categories: 2,
        model: ModelKind::Nucleotide,
        seed: 7,
        self_test: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--unix" => args.unix = Some(value("--unix")?),
            "--workers" => args.workers = parse(&value("--workers")?)?,
            "--queue" => args.queue = Some(parse(&value("--queue")?)?),
            "--max-in-flight" => args.max_in_flight = parse(&value("--max-in-flight")?)?,
            "--taxa" => args.taxa = parse(&value("--taxa")?)?,
            "--patterns" => args.patterns = parse(&value("--patterns")?)?,
            "--categories" => args.categories = parse(&value("--categories")?)?,
            "--model" => {
                args.model = match value("--model")?.as_str() {
                    "nucleotide" => ModelKind::Nucleotide,
                    "codon" => ModelKind::Codon,
                    other => return Err(format!("unknown model {other:?}")),
                }
            }
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--self-test" => args.self_test = Some(parse(&value("--self-test")?)?),
            "--help" | "-h" => {
                println!(
                    "beagle-serve [--tcp ADDR] [--unix PATH] [--workers N] [--queue N]\n\
                     \x20            [--max-in-flight N] [--taxa N] [--patterns N]\n\
                     \x20            [--categories N] [--model nucleotide|codon] [--seed S]\n\
                     \x20            [--self-test N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.tcp.is_none() && args.unix.is_none() {
        args.tcp = Some(if args.self_test.is_some() {
            "127.0.0.1:0".into()
        } else {
            "127.0.0.1:7311".into()
        });
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

/// Materialize one self-contained session from a scenario seed (the same
/// fixture idiom the differential tests use).
fn session(scenario: &Scenario) -> SessionRequest {
    let problem = Problem::generate(scenario);
    let eig = problem.model.eigen();
    SessionRequest {
        tip_states: (0..problem.tree.taxon_count())
            .map(|t| problem.patterns.tip_states(t))
            .collect(),
        pattern_weights: problem.patterns.weights().to_vec(),
        category_rates: problem.rates.rates.clone(),
        category_weights: problem.rates.weights.clone(),
        frequencies: problem.model.frequencies().to_vec(),
        eigen: Some((
            eig.vectors.as_slice().to_vec(),
            eig.inverse_vectors.as_slice().to_vec(),
            eig.values.clone(),
        )),
        matrices: problem.tree.branch_assignments(),
        operations: problem.operations(true),
        root: BufferId(problem.tree.root()),
        scaled: true,
        deadline: None,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("beagle-serve: {msg} (try --help)");
            return ExitCode::FAILURE;
        }
    };

    let scenario = Scenario {
        model: args.model,
        taxa: args.taxa,
        patterns: args.patterns,
        categories: args.categories,
        seed: args.seed,
    };
    let spec = InstanceSpec::with_config(Problem::generate(&scenario).config());
    let manager = full_manager();

    let mut builder = ServerBuilder::from_spec(spec.clone())
        .workers(args.workers)
        .max_in_flight(args.max_in_flight);
    if let Some(queue) = args.queue {
        builder = builder.queue_capacity(queue);
    }
    if let Some(addr) = &args.tcp {
        builder = builder.tcp(addr.clone());
    }
    if let Some(path) = &args.unix {
        builder = builder.unix(path.clone());
    }
    let server = match builder.serve(&manager) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("beagle-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = server.tcp_addr() {
        println!("listening on tcp://{addr}");
    }
    if let Some(path) = server.unix_path() {
        println!("listening on unix://{}", path.display());
    }

    let Some(rounds) = args.self_test else {
        // Daemon mode: the acceptor threads do all the work; park forever.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    };

    // -- Self-test: loopback round trips vs in-process evaluation. --------
    let endpoint = Endpoint::Tcp(
        server
            .tcp_addr()
            .expect("self-test listens on TCP")
            .to_string(),
    );
    let mut reference = spec
        .instantiate(&manager)
        .expect("in-process reference instance");
    let mut client = match Client::connect(endpoint) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("beagle-serve: self-test connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut mismatches = 0usize;
    for round in 0..rounds {
        let scenario = Scenario {
            seed: args.seed + round as u64,
            ..scenario
        };
        let request = session(&scenario);
        let local = request
            .evaluate(reference.as_mut())
            .expect("in-process evaluation");
        match client.evaluate_patiently(&request, Lane::Interactive, 8) {
            Ok(remote) if remote.to_bits() == local.to_bits() => {
                println!("self-test {round}: lnL {remote:.6} (bit-exact)");
            }
            Ok(remote) => {
                eprintln!("self-test {round}: MISMATCH local {local:e} remote {remote:e}");
                mismatches += 1;
            }
            Err(e) => {
                eprintln!("self-test {round}: FAILED {e}");
                mismatches += 1;
            }
        }
    }
    match client.stats() {
        Ok(stats) => println!("stats: {stats}"),
        Err(e) => eprintln!("stats failed: {e}"),
    }
    let drained = server.drain(None);
    println!("drained: {drained}");
    if mismatches == 0 && drained {
        println!("self-test passed: {rounds} remote sessions bit-identical");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
