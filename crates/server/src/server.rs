//! The likelihood service: listeners, connection handlers, admission
//! control, and drain orchestration around an embedded
//! [`beagle_core::pool::InstancePool`].
//!
//! # Thread model (DESIGN.md §13)
//!
//! * **One acceptor thread per listener** (TCP and/or Unix). Acceptors block
//!   in `accept()`; a drain wakes them with a throwaway self-connection.
//! * **One handler thread per connection**, blocking in [`wire::read_frame`]
//!   on the read half. Decoded `Submit` frames are handed to the pool via
//!   [`PoolHandle::try_submit_session_with`]; the handler immediately goes
//!   back to reading, so one client can pipeline up to its admission cap.
//! * **Pool worker threads** run the sessions. The completion callback runs
//!   on the worker and writes the response frame through a cloned write
//!   half behind a mutex — no thread ever blocks per in-flight session.
//!
//! # Admission control
//!
//! A `Submit` is answered with [`Frame::Busy`] instead of queueing without
//! bound when (in check order) the server is draining
//! ([`BusyReason::Draining`]), the connection already has `max_in_flight`
//! sessions outstanding ([`BusyReason::ClientCap`]), or the pool queue is
//! full ([`BusyReason::PoolFull`] — also counted in the pool's `rejected`
//! statistic, auditable through a `StatsRequest`).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use beagle_core::wire::{self, BusyReason, Frame};
use beagle_core::{
    BeagleError, BeagleInstance, Deadline, Event, EventKind, ImplementationManager, InstancePool,
    InstanceSpec, Lane, PoolBuilder, PoolError, PoolHandle, Recorder, SessionRequest, WireError,
};
use parking_lot::{Condvar, Mutex};

use crate::net::{Endpoint, Stream};

/// Per-server monotonic counters, exposed in the `StatsSnapshot` JSON.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    lost: AtomicU64,
    busy_client_cap: AtomicU64,
    busy_pool_full: AtomicU64,
    busy_draining: AtomicU64,
    wire_errors: AtomicU64,
}

struct Shared {
    handle: PoolHandle<Box<dyn BeagleInstance>>,
    /// The pool itself, consumed by whichever thread runs the drain first
    /// (the owner via [`Server::drain`], or a connection handler serving a
    /// remote [`Frame::Drain`]).
    pool: Mutex<Option<InstancePool>>,
    manager: Arc<ImplementationManager>,
    max_in_flight: usize,
    draining: AtomicBool,
    /// `Some(drained)` once the pool drain finished; late drain requests
    /// wait here instead of racing for the pool.
    drain_done: Mutex<Option<bool>>,
    drain_cv: Condvar,
    in_flight: AtomicUsize,
    counters: Counters,
    recorder: Mutex<Recorder>,
    /// Write-half clones of every live connection, so a drain can shut them
    /// down and unblock their handler threads.
    conns: Mutex<HashMap<u64, Stream>>,
    next_conn: AtomicU64,
}

/// Builder for a [`Server`]: the pool fleet shape plus service knobs.
pub struct ServerBuilder {
    spec: InstanceSpec,
    workers: usize,
    pinned: Vec<String>,
    queue_capacity: Option<usize>,
    max_in_flight: usize,
    journal: bool,
    tcp: Option<String>,
    #[cfg(unix)]
    unix: Option<PathBuf>,
}

impl ServerBuilder {
    /// Start from the spec every pool worker instance is created from.
    pub fn from_spec(spec: InstanceSpec) -> Self {
        Self {
            spec,
            workers: 2,
            pinned: Vec::new(),
            queue_capacity: None,
            max_in_flight: 4,
            journal: true,
            tcp: None,
            #[cfg(unix)]
            unix: None,
        }
    }

    /// Number of pool workers (default 2).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Pin workers to named implementations (see [`PoolBuilder::pin`]).
    pub fn pin<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.pinned = names.into_iter().map(Into::into).collect();
        self
    }

    /// Pool queue capacity; beyond it `Submit`s bounce with
    /// [`BusyReason::PoolFull`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = Some(n);
        self
    }

    /// Per-connection admission cap (default 4). `0` makes every `Submit`
    /// bounce with [`BusyReason::ClientCap`] — useful in tests.
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n;
        self
    }

    /// Record `server_accept` / `server_reject` / `server_drain` events
    /// (default on).
    pub fn journal(mut self, enabled: bool) -> Self {
        self.journal = enabled;
        self
    }

    /// Listen on a TCP address (`"127.0.0.1:0"` picks an ephemeral port).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp = Some(addr.into());
        self
    }

    /// Listen on a Unix-domain socket path. A stale socket file at that
    /// path is removed before binding.
    #[cfg(unix)]
    pub fn unix(mut self, path: impl Into<PathBuf>) -> Self {
        self.unix = Some(path.into());
        self
    }

    /// Build the pool, bind the listeners, and start accepting.
    pub fn serve(self, manager: &Arc<ImplementationManager>) -> Result<Server, BeagleError> {
        #[cfg(unix)]
        let no_endpoint = self.tcp.is_none() && self.unix.is_none();
        #[cfg(not(unix))]
        let no_endpoint = self.tcp.is_none();
        if no_endpoint {
            return Err(BeagleError::InvalidConfiguration(
                "server needs at least one listen endpoint (tcp and/or unix)".into(),
            ));
        }

        let mut builder = PoolBuilder::from_spec(self.spec).workers(self.workers);
        if !self.pinned.is_empty() {
            builder = builder.pin(self.pinned);
        }
        if let Some(cap) = self.queue_capacity {
            builder = builder.queue_capacity(cap);
        }
        let pool = builder.build(manager)?;

        let shared = Arc::new(Shared {
            handle: pool.handle(),
            pool: Mutex::new(Some(pool)),
            manager: Arc::clone(manager),
            max_in_flight: self.max_in_flight,
            draining: AtomicBool::new(false),
            drain_done: Mutex::new(None),
            drain_cv: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            counters: Counters::default(),
            recorder: Mutex::new(Recorder::new(self.journal)),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });

        let bind_err = |what: &str, e: std::io::Error| {
            BeagleError::InvalidConfiguration(format!("bind {what}: {e}"))
        };
        let mut acceptors = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &self.tcp {
            let listener = TcpListener::bind(addr).map_err(|e| bind_err(addr, e))?;
            tcp_addr = Some(listener.local_addr().map_err(|e| bind_err(addr, e))?);
            let shared = Arc::clone(&shared);
            acceptors.push(
                std::thread::Builder::new()
                    .name("beagle-serve-tcp".into())
                    .spawn(move || accept_tcp(listener, shared))
                    .map_err(|e| BeagleError::ResourceExhausted {
                        what: format!("acceptor thread: {e}"),
                    })?,
            );
        }
        #[cfg(unix)]
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = &self.unix {
            let _ = std::fs::remove_file(path);
            let listener =
                UnixListener::bind(path).map_err(|e| bind_err(&path.display().to_string(), e))?;
            unix_path = Some(path.clone());
            let shared = Arc::clone(&shared);
            acceptors.push(
                std::thread::Builder::new()
                    .name("beagle-serve-unix".into())
                    .spawn(move || accept_unix(listener, shared))
                    .map_err(|e| BeagleError::ResourceExhausted {
                        what: format!("acceptor thread: {e}"),
                    })?,
            );
        }

        Ok(Server {
            shared,
            acceptors,
            tcp_addr,
            #[cfg(unix)]
            unix_path,
        })
    }
}

/// A running likelihood service. Dropping it without [`Server::drain`]
/// leaves acceptor threads parked; the process-exit story is the caller's.
pub struct Server {
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    #[cfg(unix)]
    unix_path: Option<PathBuf>,
}

impl Server {
    /// The bound TCP address (with the real port when `:0` was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    #[cfg(unix)]
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The same JSON document a remote `StatsRequest` receives.
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Drain the server's observability journal (accept/reject/drain
    /// events).
    pub fn take_journal(&self) -> Vec<Event> {
        self.shared.recorder.lock().take_journal()
    }

    /// Graceful shutdown: stop admitting, answer every in-flight session,
    /// close the listeners and all connections. Returns whether the pool
    /// drained fully within `deadline` (in-flight sessions cut off by the
    /// deadline have already been answered with a typed error). Safe after
    /// a remote-initiated drain — this then just finishes listener
    /// teardown and reports the drain's result.
    pub fn drain(self, deadline: Option<Deadline>) -> bool {
        let drained = drain_pool(&self.shared, deadline);
        // Wake acceptors parked in accept() with throwaway self-connections
        // (draining is already set, so they exit), then join them so the
        // listener sockets are certainly closed on return.
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        close_all_conns(&self.shared);
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        drained
    }
}

fn accept_tcp(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining.load(Ordering::Acquire) {
                    // Either the drain's wake-up self-connection or a late
                    // client; both just close.
                    break;
                }
                let _ = stream.set_nodelay(true);
                spawn_handler(Stream::Tcp(stream), &shared);
            }
            Err(_) if shared.draining.load(Ordering::Acquire) => break,
            // Transient accept failure (EMFILE, aborted handshake): keep
            // serving.
            Err(_) => {}
        }
    }
}

#[cfg(unix)]
fn accept_unix(listener: UnixListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining.load(Ordering::Acquire) {
                    break;
                }
                spawn_handler(Stream::Unix(stream), &shared);
            }
            Err(_) if shared.draining.load(Ordering::Acquire) => break,
            Err(_) => {}
        }
    }
}

fn spawn_handler(stream: Stream, shared: &Arc<Shared>) {
    let shared = Arc::clone(shared);
    // A failed spawn drops the connection; the client sees EOF and retries.
    let _ = std::thread::Builder::new()
        .name("beagle-serve-conn".into())
        .spawn(move || handle_connection(stream, shared));
}

fn handle_connection(mut reader: Stream, shared: Arc<Shared>) {
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    let Ok(write_half) = reader.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = reader.try_clone() {
        shared.conns.lock().insert(conn_id, clone);
    }
    // This connection's outstanding sessions, for the admission cap.
    let conn_in_flight = Arc::new(AtomicUsize::new(0));

    loop {
        match wire::read_frame(&mut reader) {
            Ok((sid, Frame::Submit { lane, session })) => {
                submit(&shared, &writer, &conn_in_flight, sid, lane, *session);
            }
            Ok((sid, Frame::StatsRequest)) => {
                let json = stats_json(&shared);
                if write_reply(&writer, sid, &Frame::Stats(json)).is_err() {
                    break;
                }
            }
            Ok((sid, Frame::Drain)) => {
                let drained = drain_pool(&shared, None);
                // Ack before closing sockets — ours is among them.
                let _ = write_reply(&writer, sid, &Frame::DrainAck { drained });
                close_all_conns(&shared);
                break;
            }
            Ok((sid, _response_frame)) => {
                // Result/Busy/Error/Stats/DrainAck are server→client only.
                shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_reply(
                    &writer,
                    sid,
                    &Frame::Error(BeagleError::Unsupported(
                        "frame type is not valid client-to-server".into(),
                    )),
                );
                break;
            }
            Err(WireError::Closed) | Err(WireError::Io(_)) => break,
            Err(wire_error) => {
                // Typed decode failure (bad magic, truncation, bomb).
                // Framing is lost, so answer once and hang up.
                shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_reply(
                    &writer,
                    0,
                    &Frame::Error(BeagleError::InvalidConfiguration(format!(
                        "wire: {wire_error}"
                    ))),
                );
                break;
            }
        }
    }

    shared.conns.lock().remove(&conn_id);
    reader.shutdown();
}

fn write_reply(writer: &Arc<Mutex<Stream>>, sid: u64, frame: &Frame) -> Result<(), WireError> {
    wire::write_frame(&mut *writer.lock(), sid, frame)
}

fn reject(shared: &Shared, writer: &Arc<Mutex<Stream>>, sid: u64, reason: BusyReason) {
    shared.recorder.lock().event(EventKind::ServerReject, || {
        format!("session {sid}: {reason}")
    });
    let _ = write_reply(writer, sid, &Frame::Busy(reason));
}

fn submit(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<Stream>>,
    conn_in_flight: &Arc<AtomicUsize>,
    sid: u64,
    lane: Lane,
    session: SessionRequest,
) {
    if shared.draining.load(Ordering::Acquire) {
        shared
            .counters
            .busy_draining
            .fetch_add(1, Ordering::Relaxed);
        reject(shared, writer, sid, BusyReason::Draining);
        return;
    }
    if conn_in_flight.load(Ordering::Acquire) >= shared.max_in_flight {
        shared
            .counters
            .busy_client_cap
            .fetch_add(1, Ordering::Relaxed);
        reject(shared, writer, sid, BusyReason::ClientCap);
        return;
    }

    conn_in_flight.fetch_add(1, Ordering::AcqRel);
    shared.in_flight.fetch_add(1, Ordering::AcqRel);
    let callback = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(writer);
        let conn_in_flight = Arc::clone(conn_in_flight);
        move |outcome: beagle_core::SessionOutcome| {
            let frame = match outcome {
                Ok(Ok(lnl)) => Frame::Result(lnl),
                Ok(Err(e)) => Frame::Error(e),
                Err(_lost) => {
                    shared.counters.lost.fetch_add(1, Ordering::Relaxed);
                    Frame::Error(BeagleError::ResourceExhausted {
                        what: "session dropped during server shutdown".into(),
                    })
                }
            };
            // Book-keep before writing: the client may pipeline its next
            // Submit the instant the reply lands.
            conn_in_flight.fetch_sub(1, Ordering::AcqRel);
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            let _ = write_reply(&writer, sid, &frame);
        }
    };

    match shared
        .handle
        .try_submit_session_with(lane, session, callback)
    {
        Ok(()) => {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            shared.recorder.lock().event(EventKind::ServerAccept, || {
                format!("session {sid} {lane:?}")
            });
        }
        Err(e) => {
            // The rejected callback never fires; undo the booking here.
            conn_in_flight.fetch_sub(1, Ordering::AcqRel);
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            let reason = match e {
                PoolError::Full => {
                    shared
                        .counters
                        .busy_pool_full
                        .fetch_add(1, Ordering::Relaxed);
                    BusyReason::PoolFull
                }
                // ShuttingDown/Lost: the pool is going away under us.
                _ => {
                    shared
                        .counters
                        .busy_draining
                        .fetch_add(1, Ordering::Relaxed);
                    BusyReason::Draining
                }
            };
            reject(shared, writer, sid, reason);
        }
    }
}

/// Run (or wait for) the graceful pool drain. First caller takes the pool
/// and drains it; concurrent callers block until it finishes and report the
/// same result.
fn drain_pool(shared: &Shared, deadline: Option<Deadline>) -> bool {
    shared.draining.store(true, Ordering::Release);
    let pool = shared.pool.lock().take();
    match pool {
        Some(pool) => {
            shared.recorder.lock().event(EventKind::ServerDrain, || {
                format!("in_flight {}", shared.in_flight.load(Ordering::Acquire))
            });
            let (drained, fleet) = pool.shutdown_drain(deadline);
            drop(fleet);
            *shared.drain_done.lock() = Some(drained);
            shared.drain_cv.notify_all();
            drained
        }
        None => {
            let mut done = shared.drain_done.lock();
            while done.is_none() {
                shared.drain_cv.wait(&mut done);
            }
            done.unwrap_or(false)
        }
    }
}

fn close_all_conns(shared: &Shared) {
    for stream in shared.conns.lock().values() {
        stream.shutdown();
    }
}

/// Assemble the `StatsSnapshot` JSON: server counters, pool scheduler
/// stats (including `rejected`), a kernel-statistics sample from one pool
/// worker (null when unavailable, e.g. mid-drain or obs-disabled), and the
/// health registry's breaker states.
fn stats_json(shared: &Shared) -> String {
    let c = &shared.counters;
    let kernels = match shared
        .handle
        .try_submit(Lane::Interactive, |inst: &mut Box<dyn BeagleInstance>| {
            inst.statistics().map(|s| s.to_json())
        }) {
        Ok(ticket) => match ticket.wait() {
            Ok(Some(json)) => json,
            _ => "null".into(),
        },
        Err(_) => "null".into(),
    };
    let health: Vec<String> = shared
        .manager
        .health()
        .snapshot()
        .iter()
        .map(|s| s.to_json())
        .collect();
    format!(
        "{{\"server\":{{\"connections\":{},\"accepted\":{},\"completed\":{},\"lost\":{},\
\"busy_client_cap\":{},\"busy_pool_full\":{},\"busy_draining\":{},\"wire_errors\":{},\
\"in_flight\":{},\"draining\":{}}},\"pool\":{},\"kernels\":{},\"health\":[{}]}}",
        c.connections.load(Ordering::Relaxed),
        c.accepted.load(Ordering::Relaxed),
        c.completed.load(Ordering::Relaxed),
        c.lost.load(Ordering::Relaxed),
        c.busy_client_cap.load(Ordering::Relaxed),
        c.busy_pool_full.load(Ordering::Relaxed),
        c.busy_draining.load(Ordering::Relaxed),
        c.wire_errors.load(Ordering::Relaxed),
        shared.in_flight.load(Ordering::Acquire),
        shared.draining.load(Ordering::Acquire),
        shared.handle.stats().to_json(),
        kernels,
        health.join(",")
    )
}

/// Convenience: serve on an [`Endpoint`] list built elsewhere.
impl ServerBuilder {
    /// Add one endpoint of either transport.
    pub fn endpoint(self, endpoint: &Endpoint) -> Self {
        match endpoint {
            Endpoint::Tcp(addr) => self.tcp(addr.clone()),
            #[cfg(unix)]
            Endpoint::Unix(path) => self.unix(path.clone()),
        }
    }
}
