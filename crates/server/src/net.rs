//! Transport abstraction: one enum over the two std-only stream transports
//! the service speaks (TCP and Unix-domain sockets), so the wire code and
//! the connection handlers are written once.

use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::PathBuf;

/// Where a likelihood service listens (and where a [`crate::Client`]
/// connects).
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `"127.0.0.1:7311"`.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A connected stream over either transport. Both variants support
/// `try_clone`, which is what lets one thread block reading requests while
/// pool workers write responses through a cloned handle.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn connect(endpoint: &Endpoint) -> io::Result<Stream> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                // Request/response RPC: never batch a tiny frame behind
                // Nagle's algorithm.
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Shut down both directions, unblocking any thread parked in a read.
    /// Errors are ignored: the peer may already be gone.
    pub(crate) fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}
