//! Blocking client for the likelihood service: one request in flight at a
//! time, reconnect-with-backoff on transport failure, typed errors
//! mirroring [`BeagleError`] across the wire.

use std::time::Duration;

use beagle_core::wire::{self, BusyReason, Frame};
use beagle_core::{BeagleError, Lane, RetryPolicy, SessionRequest, WireError};

use crate::net::{Endpoint, Stream};

/// What a remote evaluation can fail with, from the client's perspective.
#[derive(Debug)]
pub enum ClientError {
    /// The server refused the session without running it; retry later.
    Busy(BusyReason),
    /// The session ran (or was admitted) and failed with a library error —
    /// the same typed [`BeagleError`] an in-process evaluation returns.
    Remote(BeagleError),
    /// The byte stream failed to decode as WIRE-v1.
    Wire(WireError),
    /// Transport failure after all reconnect attempts.
    Io(String),
    /// The server answered with something the protocol does not allow
    /// here.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy(reason) => write!(f, "server busy: {reason}"),
            ClientError::Remote(e) => write!(f, "remote evaluation failed: {e}"),
            ClientError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ClientError::Io(msg) => write!(f, "transport failed: {msg}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    fn from_wire(e: WireError) -> Self {
        match e {
            WireError::Io(msg) => ClientError::Io(msg),
            WireError::Closed => ClientError::Io("connection closed by server".into()),
            other => ClientError::Wire(other),
        }
    }

    /// Transport failures are worth a reconnect; everything else is not.
    fn is_transient(&self) -> bool {
        matches!(self, ClientError::Io(_))
    }
}

/// A blocking connection to a likelihood service.
///
/// The client keeps **one request in flight**: each call writes a frame and
/// blocks for the matching reply. On transport failure it reconnects with
/// the same exponential full-jitter backoff the library uses for device
/// retries ([`RetryPolicy`]) and re-sends. Re-sending is safe because
/// evaluation is pure — the worst case is the server computing a session
/// twice, never a different answer.
pub struct Client {
    endpoint: Endpoint,
    retry: RetryPolicy,
    stream: Option<Stream>,
    next_session: u64,
    jitter_state: u64,
}

impl Client {
    /// Connect with the default [`RetryPolicy`].
    pub fn connect(endpoint: Endpoint) -> Result<Self, ClientError> {
        Self::connect_with(endpoint, RetryPolicy::default())
    }

    /// Connect with an explicit reconnect policy.
    pub fn connect_with(endpoint: Endpoint, retry: RetryPolicy) -> Result<Self, ClientError> {
        let mut client = Client {
            endpoint,
            retry,
            stream: None,
            next_session: 1,
            jitter_state: 0x9e37_79b9_7f4a_7c15,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The endpoint this client talks to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Evaluate a session remotely. Bit-identical to evaluating the same
    /// session on a local pool of the same implementation.
    pub fn evaluate(&mut self, session: &SessionRequest, lane: Lane) -> Result<f64, ClientError> {
        let reply = self.roundtrip(&Frame::Submit {
            lane,
            session: Box::new(session.clone()),
        })?;
        match reply {
            Frame::Result(lnl) => Ok(lnl),
            Frame::Busy(reason) => Err(ClientError::Busy(reason)),
            Frame::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Protocol("unexpected reply to Submit")),
        }
    }

    /// [`Self::evaluate`], but wait out transient `Busy(ClientCap)` /
    /// `Busy(PoolFull)` rejections with backoff, up to `max_busy_retries`
    /// additional attempts. `Busy(Draining)` is returned immediately — a
    /// draining server will not come back.
    pub fn evaluate_patiently(
        &mut self,
        session: &SessionRequest,
        lane: Lane,
        max_busy_retries: u32,
    ) -> Result<f64, ClientError> {
        let mut attempt = 0;
        loop {
            match self.evaluate(session, lane) {
                Err(ClientError::Busy(BusyReason::ClientCap | BusyReason::PoolFull))
                    if attempt < max_busy_retries =>
                {
                    attempt += 1;
                    let delay = self.backoff(attempt);
                    std::thread::sleep(delay);
                }
                other => return other,
            }
        }
    }

    /// Fetch the server's `StatsSnapshot` JSON (server counters, pool
    /// scheduler stats including rejections, kernel statistics, breaker
    /// states).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Frame::StatsRequest)? {
            Frame::Stats(json) => Ok(json),
            _ => Err(ClientError::Protocol("unexpected reply to StatsRequest")),
        }
    }

    /// Ask the server to drain: it answers all in-flight sessions, acks,
    /// and closes every connection. Returns whether the drain completed
    /// fully.
    pub fn drain(&mut self) -> Result<bool, ClientError> {
        match self.roundtrip(&Frame::Drain)? {
            Frame::DrainAck { drained } => Ok(drained),
            _ => Err(ClientError::Protocol("unexpected reply to Drain")),
        }
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..=self.retry.max_retries {
            if attempt > 0 {
                let delay = self.backoff(attempt);
                std::thread::sleep(delay);
            }
            match Stream::connect(&self.endpoint) {
                Ok(stream) => {
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(format!(
            "connect {}: {}",
            self.endpoint,
            last.map(|e| e.to_string()).unwrap_or_default()
        )))
    }

    /// Exponential backoff with full jitter, mirroring the partitioned
    /// instance's retry sleeps (the splitmix64 there is private, so the
    /// step function is restated here).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let ceiling = self
            .retry
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        if !self.retry.jitter {
            return ceiling;
        }
        self.jitter_state = self.jitter_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(z % nanos)
        }
    }

    fn roundtrip(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        let sid = self.next_session;
        self.next_session += 1;
        let mut last: Option<ClientError> = None;
        for attempt in 0..=self.retry.max_retries {
            if attempt > 0 {
                let delay = self.backoff(attempt);
                std::thread::sleep(delay);
            }
            match self.try_roundtrip(sid, frame) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_transient() => {
                    // Drop the broken stream; the next attempt reconnects
                    // and re-sends (safe: evaluation is pure).
                    self.stream = None;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("retries exhausted")))
    }

    fn try_roundtrip(&mut self, sid: u64, frame: &Frame) -> Result<Frame, ClientError> {
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("just connected");
        wire::write_frame(stream, sid, frame).map_err(ClientError::from_wire)?;
        let (reply_sid, reply) = wire::read_frame(stream).map_err(ClientError::from_wire)?;
        if reply_sid != sid {
            // One in flight + a fresh stream per attempt: a mismatch can
            // only be a server bug, not a stale reply.
            return Err(ClientError::Protocol("reply session id mismatch"));
        }
        Ok(reply)
    }
}
