//! # beagle-server
//!
//! Likelihood-as-a-service for BEAGLE-RS: a std-only (no async runtime)
//! framed binary RPC layer that exposes a [`beagle_core::pool`] instance
//! fleet over TCP and/or Unix-domain sockets.
//!
//! The wire protocol (WIRE-v1) lives in [`beagle_core::wire`]: versioned,
//! length-prefixed frames carrying self-contained
//! [`beagle_core::SessionRequest`]s with every `f64` as a raw bit pattern,
//! so a remote evaluation is **bit-identical** to the same session run
//! in-process. See DESIGN.md §13 for the frame layout and thread model.
//!
//! * [`Server`] / [`ServerBuilder`] — the service: acceptor thread per
//!   listener, handler thread per connection, per-client admission control
//!   ([`beagle_core::wire::BusyReason`]), per-request deadline propagation
//!   into the pool's watchdog, graceful drain.
//! * [`Client`] — blocking caller with reconnect-and-resend backoff and
//!   typed [`ClientError`]s mirroring [`beagle_core::BeagleError`].
//! * [`Endpoint`] — `tcp://addr` or `unix://path`.

mod client;
mod net;
mod server;

pub use client::{Client, ClientError};
pub use net::Endpoint;
pub use server::{Server, ServerBuilder};
