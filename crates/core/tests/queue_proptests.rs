//! Property tests for the eigen/matrix cache: under ANY interleaving of
//! eigen updates, rate updates, matrix requests, and flushes, a queued
//! instance must return exactly the bits an uncached (eager) instance
//! returns — i.e. stale cache reuse is unreachable.

use beagle_core::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use beagle_core::buffers::InstanceBuffers;
use beagle_core::error::Result;
use beagle_core::ops::Operation;
use beagle_core::{Flags, QueuedInstance};
use proptest::prelude::*;

/// A back-end exposing the transition-matrix machinery of the shared buffer
/// arena (the exact code the CPU and simulated-accelerator back-ends
/// delegate to); everything unrelated to matrices is inert.
struct MatrixInstance {
    bufs: InstanceBuffers<f64>,
    details: InstanceDetails,
}

impl MatrixInstance {
    fn new() -> Self {
        let mut config = InstanceConfig::for_tree(4, 8, 4, 2);
        config.eigen_buffer_count = 2;
        Self {
            bufs: InstanceBuffers::new(config).unwrap(),
            details: InstanceDetails {
                implementation_name: "matrix-only".into(),
                resource_name: "host".into(),
                flags: Flags::NONE,
                thread_count: 1,
            },
        }
    }
}

impl BeagleInstance for MatrixInstance {
    fn details(&self) -> &InstanceDetails {
        &self.details
    }
    fn config(&self) -> &InstanceConfig {
        &self.bufs.config
    }
    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        self.bufs.set_tip_states(tip, states)
    }
    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        self.bufs.set_tip_partials(tip, partials)
    }
    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        self.bufs.set_partials(buffer, partials)
    }
    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        self.bufs.get_partials(buffer)
    }
    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        self.bufs.set_pattern_weights(weights)
    }
    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.bufs.set_state_frequencies(index, frequencies)
    }
    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.bufs.set_category_rates(rates)
    }
    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.bufs.set_category_weights(index, weights)
    }
    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.bufs
            .set_eigen_decomposition(index, vectors, inverse_vectors, values)
    }
    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.bufs
            .update_transition_matrices(eigen_index, matrix_indices, branch_lengths)
    }
    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.bufs.set_transition_matrix(index, matrix)
    }
    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.bufs.get_transition_matrix(index)
    }
    fn update_partials(&mut self, _: &[Operation]) -> Result<()> {
        Ok(())
    }
    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        self.bufs.reset_scale_factors(cumulative)
    }
    fn accumulate_scale_factors(&mut self, indices: &[usize], cumulative: usize) -> Result<()> {
        self.bufs.accumulate_scale_factors(indices, cumulative)
    }
    fn integrate_root(
        &mut self,
        _: BufferId,
        _: BufferId,
        _: BufferId,
        _: ScalingMode,
    ) -> Result<f64> {
        Ok(0.0)
    }
    fn integrate_edge(
        &mut self,
        _: BufferId,
        _: BufferId,
        _: BufferId,
        _: BufferId,
        _: BufferId,
        _: ScalingMode,
    ) -> Result<f64> {
        Ok(0.0)
    }
    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        Ok(vec![])
    }
}

/// One step of a random model-update / matrix-request interleaving.
#[derive(Clone, Debug)]
enum Action {
    /// Install eigen system `variant` at eigen buffer `index`.
    SetEigen { index: usize, variant: usize },
    /// Install rates variant `variant`.
    SetRates { variant: usize },
    /// Derive matrices for branch lengths drawn from a small pool (so
    /// repeats — and therefore cache hits — actually happen).
    UpdateMatrices {
        targets: Vec<(usize, usize)>,
        eigen: usize,
    },
    /// Force the queue to flush by reading matrix `index` back.
    Read { index: usize },
}

/// A pool of distinct, valid-enough eigen systems: symmetric-model-like
/// decompositions where variant `v` only shifts the eigenvalues, so every
/// variant produces different matrices.
fn eigen_data(variant: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut vectors = vec![0.0; 16];
    let mut inverse = vec![0.0; 16];
    for i in 0..4 {
        vectors[i * 4 + i] = 1.0;
        inverse[i * 4 + i] = 1.0;
    }
    let shift = 0.25 * variant as f64;
    let values = vec![0.0, -1.0 - shift, -2.0 - shift, -3.0 - shift];
    (vectors, inverse, values)
}

fn rates_data(variant: usize) -> Vec<f64> {
    match variant {
        0 => vec![1.0, 1.0],
        1 => vec![0.5, 1.5],
        _ => vec![0.25, 1.75],
    }
}

/// Branch lengths drawn from a small pool to maximize repeats.
const LENGTH_POOL: [f64; 4] = [0.05, 0.1, 0.2, 0.4];

/// Decode one random word into an [`Action`]. The vendored proptest
/// stand-in has no mapping combinators, so interleavings are generated as
/// `Vec<u64>` and decoded here; every word maps to a valid action.
fn decode(raw: u64) -> Action {
    let mut x = raw / 4;
    match raw % 4 {
        0 => {
            let index = (x % 2) as usize;
            let variant = (x / 2 % 3) as usize;
            Action::SetEigen { index, variant }
        }
        1 => Action::SetRates {
            variant: (x % 3) as usize,
        },
        2 => {
            let count = 1 + (x % 3) as usize;
            x /= 3;
            let eigen = (x % 2) as usize;
            x /= 2;
            let mut targets = Vec::with_capacity(count);
            for _ in 0..count {
                let matrix = 1 + (x % 6) as usize;
                x /= 6;
                let length = (x % LENGTH_POOL.len() as u64) as usize;
                x /= LENGTH_POOL.len() as u64;
                targets.push((matrix, length));
            }
            Action::UpdateMatrices { targets, eigen }
        }
        _ => Action::Read {
            index: 1 + (x % 6) as usize,
        },
    }
}

fn apply(inst: &mut dyn BeagleInstance, action: &Action) -> Option<Vec<u64>> {
    match action {
        Action::SetEigen { index, variant } => {
            let (v, vi, val) = eigen_data(*variant);
            inst.set_eigen_decomposition(*index, &v, &vi, &val).unwrap();
            None
        }
        Action::SetRates { variant } => {
            inst.set_category_rates(&rates_data(*variant)).unwrap();
            None
        }
        Action::UpdateMatrices { targets, eigen } => {
            let indices: Vec<usize> = targets.iter().map(|&(m, _)| m).collect();
            let lengths: Vec<f64> = targets.iter().map(|&(_, l)| LENGTH_POOL[l]).collect();
            inst.update_transition_matrices(*eigen, &indices, &lengths)
                .unwrap();
            None
        }
        Action::Read { index } => {
            let m = inst.get_transition_matrix(*index).unwrap_or_default();
            Some(m.iter().map(|v| v.to_bits()).collect())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The core safety property of the cache: any interleaving of
    /// set_eigen / rate updates / matrix requests / flush-forcing reads
    /// produces bit-identical matrices with and without the cache.
    #[test]
    fn cached_matrices_equal_uncached_under_any_interleaving(
        raw in proptest::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        let actions: Vec<Action> = raw.iter().map(|&r| decode(r)).collect();
        // Both sides start with the same model so matrices are derivable
        // even if the random interleaving never sets eigen 1 or the rates.
        let prelude = [
            Action::SetEigen { index: 0, variant: 0 },
            Action::SetEigen { index: 1, variant: 1 },
            Action::SetRates { variant: 0 },
        ];
        let mut eager: Box<dyn BeagleInstance> = Box::new(MatrixInstance::new());
        let mut queued = QueuedInstance::new(Box::new(MatrixInstance::new()));
        for action in prelude.iter().chain(&actions) {
            let a = apply(eager.as_mut(), action);
            let b = apply(&mut queued, action);
            prop_assert_eq!(a, b, "mid-run read diverged at {:?}", action);
        }
        // Final sweep: every matrix buffer must agree bit-for-bit.
        for index in 1..7 {
            let a = eager.get_transition_matrix(index).unwrap_or_default();
            let b = queued.get_transition_matrix(index).unwrap_or_default();
            let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(ab, bb, "matrix {} diverged", index);
        }
    }

    /// Counter sanity under random interleavings: hits + misses covers every
    /// cacheable request, and the cache never exceeds its capacity.
    #[test]
    fn stats_are_consistent_under_any_interleaving(
        raw in proptest::collection::vec(0u64..u64::MAX, 1..24),
        capacity in 1usize..6,
    ) {
        let actions: Vec<Action> = raw.iter().map(|&r| decode(r)).collect();
        let mut queued =
            QueuedInstance::with_cache_capacity(Box::new(MatrixInstance::new()), capacity);
        let prelude = [
            Action::SetEigen { index: 0, variant: 0 },
            Action::SetEigen { index: 1, variant: 1 },
            Action::SetRates { variant: 0 },
        ];
        let mut requested = 0u64;
        for action in prelude.iter().chain(&actions) {
            if let Action::UpdateMatrices { targets, .. } = action {
                let mut seen = std::collections::HashSet::new();
                if targets.iter().all(|&(m, _)| seen.insert(m)) {
                    requested += targets.len() as u64;
                }
            }
            apply(&mut queued, action);
        }
        queued.flush().unwrap();
        let s = queued.stats();
        prop_assert_eq!(s.eigen_cache_hits + s.eigen_cache_misses, requested);
        // Evictions can only happen once misses exceed capacity.
        prop_assert!(s.eigen_cache_evictions <= s.eigen_cache_misses.saturating_sub(capacity as u64));
    }
}
