//! Hardware resource descriptions.
//!
//! The resource list is how clients discover what they can run on
//! (`beagleGetResourceList`). Each entry describes one device — a CPU, a GPU
//! behind a framework, a manycore accelerator — together with the capability
//! flags implementations on it can honour and nominal performance figures
//! used for default resource ordering.

use crate::flags::Flags;

/// One entry of the resource list.
#[derive(Clone, Debug)]
pub struct ResourceDescription {
    /// Stable display name, e.g. `"NVIDIA Quadro P5000 (simulated)"`.
    pub name: String,
    /// Description of the backing hardware/driver.
    pub description: String,
    /// Flags every implementation on this resource supports.
    pub support_flags: Flags,
    /// Flags implementations on this resource prefer to enable by default.
    pub default_flags: Flags,
    /// Nominal peak single-precision throughput in GFLOPS (0 = unknown);
    /// used only to order resources, never for correctness.
    pub peak_sp_gflops: f64,
    /// Nominal memory bandwidth in GB/s (0 = unknown).
    pub bandwidth_gbs: f64,
}

impl ResourceDescription {
    /// A generic host-CPU resource.
    pub fn host_cpu(threads: usize) -> Self {
        ResourceDescription {
            name: format!("Host CPU ({threads} hardware threads)"),
            description: "host processor, no external framework".into(),
            support_flags: Flags::PROCESSOR_CPU
                | Flags::FRAMEWORK_CPU
                | Flags::PRECISION_SINGLE
                | Flags::PRECISION_DOUBLE,
            default_flags: Flags::PROCESSOR_CPU | Flags::PRECISION_DOUBLE,
            peak_sp_gflops: 0.0,
            bandwidth_gbs: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cpu_supports_both_precisions() {
        let r = ResourceDescription::host_cpu(8);
        assert!(r.support_flags.contains(Flags::PRECISION_SINGLE));
        assert!(r.support_flags.contains(Flags::PRECISION_DOUBLE));
        assert!(r.name.contains("8"));
    }
}
