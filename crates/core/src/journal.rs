//! A replayable journal of instance state, the substrate for failover.
//!
//! Fault-tolerant wrappers ([`crate::multi::PartitionedInstance`], the
//! numerical-rescue layer) need to rebuild an instance from scratch after a
//! device dies, or to re-run the partials traversal with scaling enabled.
//! The BEAGLE API is a flat buffer machine, so the client-visible state of
//! an instance is exactly the sequence of `set_*` / `update_*` calls that
//! produced it. [`StateJournal`] records the *latest* value of every such
//! input (last write wins per buffer index) and can replay them — whole, or
//! sliced to a pattern sub-range — into a fresh instance.
//!
//! Replay order is: tip data → pattern weights → frequencies → category
//! rates/weights → eigen systems → direct matrices → matrix updates →
//! partials operations → scale-factor accumulation. Operations are replayed
//! in the order of their last execution, with superseded writes to the same
//! destination dropped. This reconstructs the final buffer state for the
//! standard BEAGLE client pattern (descendants updated before ancestors);
//! clients that interleave reads with partial rewrites of the same
//! destination would need full-history replay, which no caller does.

use crate::api::{BeagleInstance, InstanceConfig};
use crate::error::Result;
use crate::ops::Operation;
use std::collections::BTreeMap;

/// One eigen system as recorded: `(vectors, inverse_vectors, values)`.
type EigenRecord = (Vec<f64>, Vec<f64>, Vec<f64>);

/// Recorded state of one logical instance, sufficient to rebuild it.
#[derive(Clone, Debug, Default)]
pub struct StateJournal {
    tip_states: BTreeMap<usize, Vec<u32>>,
    /// `patterns × states` per tip (as passed by the client).
    tip_partials: BTreeMap<usize, Vec<f64>>,
    /// Full `categories × patterns × states` buffers set directly.
    partials: BTreeMap<usize, Vec<f64>>,
    pattern_weights: Option<Vec<f64>>,
    frequencies: BTreeMap<usize, Vec<f64>>,
    category_rates: Option<Vec<f64>>,
    category_weights: BTreeMap<usize, Vec<f64>>,
    /// `(vectors, inverse_vectors, values)` per eigen buffer.
    eigens: BTreeMap<usize, EigenRecord>,
    /// Matrices set directly via `set_transition_matrix`.
    matrices: BTreeMap<usize, Vec<f64>>,
    /// Matrices computed from an eigen system: index → (eigen, branch
    /// length). A direct `set_transition_matrix` to the same index clears
    /// the entry (and vice versa), so exactly one source is replayed.
    matrix_updates: BTreeMap<usize, (usize, f64)>,
    /// Partials operations in last-execution order, deduplicated by
    /// destination buffer.
    ops: Vec<Operation>,
    /// Cumulative scale buffer → scale indices accumulated into it since its
    /// last reset.
    scale_accumulations: BTreeMap<usize, Vec<usize>>,
}

impl StateJournal {
    /// Fresh, empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `set_tip_states`.
    pub fn record_tip_states(&mut self, tip: usize, states: &[u32]) {
        self.tip_states.insert(tip, states.to_vec());
        self.tip_partials.remove(&tip);
    }

    /// Record `set_tip_partials`.
    pub fn record_tip_partials(&mut self, tip: usize, partials: &[f64]) {
        self.tip_partials.insert(tip, partials.to_vec());
        self.tip_states.remove(&tip);
    }

    /// Record `set_partials`.
    pub fn record_partials(&mut self, buffer: usize, partials: &[f64]) {
        self.partials.insert(buffer, partials.to_vec());
        // A direct write supersedes any computed value for this buffer.
        self.ops.retain(|op| op.destination != buffer);
    }

    /// Record `set_pattern_weights`.
    pub fn record_pattern_weights(&mut self, weights: &[f64]) {
        self.pattern_weights = Some(weights.to_vec());
    }

    /// Record `set_state_frequencies`.
    pub fn record_frequencies(&mut self, index: usize, frequencies: &[f64]) {
        self.frequencies.insert(index, frequencies.to_vec());
    }

    /// Record `set_category_rates`.
    pub fn record_category_rates(&mut self, rates: &[f64]) {
        self.category_rates = Some(rates.to_vec());
    }

    /// Record `set_category_weights`.
    pub fn record_category_weights(&mut self, index: usize, weights: &[f64]) {
        self.category_weights.insert(index, weights.to_vec());
    }

    /// Record `set_eigen_decomposition`.
    pub fn record_eigen(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) {
        self.eigens.insert(
            index,
            (vectors.to_vec(), inverse_vectors.to_vec(), values.to_vec()),
        );
    }

    /// Record `set_transition_matrix`.
    pub fn record_matrix(&mut self, index: usize, matrix: &[f64]) {
        self.matrices.insert(index, matrix.to_vec());
        self.matrix_updates.remove(&index);
    }

    /// Record `update_transition_matrices`.
    pub fn record_matrix_updates(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) {
        for (&m, &t) in matrix_indices.iter().zip(branch_lengths) {
            self.matrix_updates.insert(m, (eigen_index, t));
            self.matrices.remove(&m);
        }
    }

    /// Record `update_partials`: each operation supersedes any earlier
    /// write to the same destination.
    pub fn record_operations(&mut self, operations: &[Operation]) {
        for op in operations {
            self.ops.retain(|o| o.destination != op.destination);
            self.partials.remove(&op.destination);
            self.ops.push(*op);
        }
    }

    /// Record `reset_scale_factors`.
    pub fn record_scale_reset(&mut self, cumulative: usize) {
        self.scale_accumulations.insert(cumulative, Vec::new());
    }

    /// Record `accumulate_scale_factors`.
    pub fn record_scale_accumulation(&mut self, scale_indices: &[usize], cumulative: usize) {
        self.scale_accumulations
            .entry(cumulative)
            .or_default()
            .extend_from_slice(scale_indices);
    }

    /// The recorded operations, in replay order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// The last recorded full-problem pattern weights, if any were set.
    /// The partitioned parent reads these to recompute the global
    /// log-likelihood reduction in pattern order (see
    /// `PartitionedInstance::integrate_root`).
    pub fn pattern_weights(&self) -> Option<&[f64]> {
        self.pattern_weights.as_deref()
    }

    /// Serialize the journal as text lines into `out` (one record per
    /// line). `f64` values are written as 16-digit hex bit patterns, so a
    /// decoded journal replays **bit-exactly** — the property the durable
    /// checkpoint format ([`crate::checkpoint`]) is built on.
    pub fn encode_into(&self, out: &mut String) {
        use std::fmt::Write;
        fn f64s(out: &mut String, values: &[f64]) {
            for v in values {
                let _ = write!(out, " {:016x}", v.to_bits());
            }
        }
        for (tip, states) in &self.tip_states {
            let _ = write!(out, "tip_states {tip} {}", states.len());
            for s in states {
                let _ = write!(out, " {s}");
            }
            out.push('\n');
        }
        for (tip, partials) in &self.tip_partials {
            let _ = write!(out, "tip_partials {tip} {}", partials.len());
            f64s(out, partials);
            out.push('\n');
        }
        for (buffer, partials) in &self.partials {
            let _ = write!(out, "partials {buffer} {}", partials.len());
            f64s(out, partials);
            out.push('\n');
        }
        if let Some(w) = &self.pattern_weights {
            let _ = write!(out, "pattern_weights {}", w.len());
            f64s(out, w);
            out.push('\n');
        }
        for (i, f) in &self.frequencies {
            let _ = write!(out, "frequencies {i} {}", f.len());
            f64s(out, f);
            out.push('\n');
        }
        if let Some(r) = &self.category_rates {
            let _ = write!(out, "category_rates {}", r.len());
            f64s(out, r);
            out.push('\n');
        }
        for (i, w) in &self.category_weights {
            let _ = write!(out, "category_weights {i} {}", w.len());
            f64s(out, w);
            out.push('\n');
        }
        for (i, (v, iv, ev)) in &self.eigens {
            let _ = write!(out, "eigen {i} {} {} {}", v.len(), iv.len(), ev.len());
            f64s(out, v);
            f64s(out, iv);
            f64s(out, ev);
            out.push('\n');
        }
        for (i, m) in &self.matrices {
            let _ = write!(out, "matrix {i} {}", m.len());
            f64s(out, m);
            out.push('\n');
        }
        for (m, (eigen, t)) in &self.matrix_updates {
            let _ = writeln!(out, "matrix_update {m} {eigen} {:016x}", t.to_bits());
        }
        for op in &self.ops {
            let scale = match op.dest_scale_write {
                Some(s) => s.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "op {} {scale} {} {} {} {}",
                op.destination, op.child1, op.child1_matrix, op.child2, op.child2_matrix
            );
        }
        for (cumulative, indices) in &self.scale_accumulations {
            let _ = write!(out, "scale_acc {cumulative} {}", indices.len());
            for i in indices {
                let _ = write!(out, " {i}");
            }
            out.push('\n');
        }
    }

    /// Rebuild a journal from lines produced by [`Self::encode_into`].
    /// Errors are strings (the checkpoint layer wraps them into
    /// [`crate::BeagleError::CheckpointCorrupt`]).
    pub fn decode_lines(lines: &[&str]) -> std::result::Result<Self, String> {
        fn parse<T: std::str::FromStr>(
            tok: Option<&str>,
            what: &str,
        ) -> std::result::Result<T, String> {
            tok.ok_or_else(|| format!("journal line truncated at {what}"))?
                .parse::<T>()
                .map_err(|_| format!("bad {what} field"))
        }
        fn take_f64s<'t>(
            toks: &mut impl Iterator<Item = &'t str>,
            n: usize,
            what: &str,
        ) -> std::result::Result<Vec<f64>, String> {
            (0..n)
                .map(|_| {
                    let tok = toks
                        .next()
                        .ok_or_else(|| format!("journal line truncated at {what}"))?;
                    u64::from_str_radix(tok, 16)
                        .map(f64::from_bits)
                        .map_err(|_| format!("bad {what} bit pattern"))
                })
                .collect()
        }
        let mut j = StateJournal::new();
        for line in lines {
            let mut t = line.split_ascii_whitespace();
            let Some(tag) = t.next() else { continue };
            match tag {
                "tip_states" => {
                    let tip: usize = parse(t.next(), "tip")?;
                    let n: usize = parse(t.next(), "tip_states length")?;
                    let states: Vec<u32> = (0..n)
                        .map(|_| parse(t.next(), "tip state"))
                        .collect::<std::result::Result<_, _>>()?;
                    j.tip_states.insert(tip, states);
                }
                "tip_partials" => {
                    let tip: usize = parse(t.next(), "tip")?;
                    let n: usize = parse(t.next(), "tip_partials length")?;
                    j.tip_partials
                        .insert(tip, take_f64s(&mut t, n, "tip partials")?);
                }
                "partials" => {
                    let buffer: usize = parse(t.next(), "buffer")?;
                    let n: usize = parse(t.next(), "partials length")?;
                    j.partials.insert(buffer, take_f64s(&mut t, n, "partials")?);
                }
                "pattern_weights" => {
                    let n: usize = parse(t.next(), "pattern_weights length")?;
                    j.pattern_weights = Some(take_f64s(&mut t, n, "pattern weights")?);
                }
                "frequencies" => {
                    let i: usize = parse(t.next(), "frequency index")?;
                    let n: usize = parse(t.next(), "frequencies length")?;
                    j.frequencies
                        .insert(i, take_f64s(&mut t, n, "frequencies")?);
                }
                "category_rates" => {
                    let n: usize = parse(t.next(), "category_rates length")?;
                    j.category_rates = Some(take_f64s(&mut t, n, "category rates")?);
                }
                "category_weights" => {
                    let i: usize = parse(t.next(), "category-weight index")?;
                    let n: usize = parse(t.next(), "category_weights length")?;
                    j.category_weights
                        .insert(i, take_f64s(&mut t, n, "category weights")?);
                }
                "eigen" => {
                    let i: usize = parse(t.next(), "eigen index")?;
                    let nv: usize = parse(t.next(), "eigen vectors length")?;
                    let niv: usize = parse(t.next(), "eigen inverse length")?;
                    let nev: usize = parse(t.next(), "eigen values length")?;
                    let v = take_f64s(&mut t, nv, "eigen vectors")?;
                    let iv = take_f64s(&mut t, niv, "eigen inverse vectors")?;
                    let ev = take_f64s(&mut t, nev, "eigen values")?;
                    j.eigens.insert(i, (v, iv, ev));
                }
                "matrix" => {
                    let i: usize = parse(t.next(), "matrix index")?;
                    let n: usize = parse(t.next(), "matrix length")?;
                    j.matrices.insert(i, take_f64s(&mut t, n, "matrix")?);
                }
                "matrix_update" => {
                    let m: usize = parse(t.next(), "matrix index")?;
                    let eigen: usize = parse(t.next(), "eigen index")?;
                    let bits = t.next().ok_or("journal line truncated at branch length")?;
                    let t_val = u64::from_str_radix(bits, 16)
                        .map(f64::from_bits)
                        .map_err(|_| "bad branch-length bit pattern".to_string())?;
                    j.matrix_updates.insert(m, (eigen, t_val));
                }
                "op" => {
                    let destination: usize = parse(t.next(), "op destination")?;
                    let scale_tok = t.next().ok_or("journal line truncated at op scale")?;
                    let dest_scale_write = if scale_tok == "-" {
                        None
                    } else {
                        Some(scale_tok.parse().map_err(|_| "bad op scale field")?)
                    };
                    let child1: usize = parse(t.next(), "op child1")?;
                    let child1_matrix: usize = parse(t.next(), "op child1 matrix")?;
                    let child2: usize = parse(t.next(), "op child2")?;
                    let child2_matrix: usize = parse(t.next(), "op child2 matrix")?;
                    j.ops.push(Operation {
                        destination,
                        dest_scale_write,
                        child1,
                        child1_matrix,
                        child2,
                        child2_matrix,
                    });
                }
                "scale_acc" => {
                    let cumulative: usize = parse(t.next(), "cumulative scale buffer")?;
                    let n: usize = parse(t.next(), "scale_acc length")?;
                    let indices: Vec<usize> = (0..n)
                        .map(|_| parse(t.next(), "scale index"))
                        .collect::<std::result::Result<_, _>>()?;
                    j.scale_accumulations.insert(cumulative, indices);
                }
                other => return Err(format!("unknown journal record \"{other}\"")),
            }
            if t.next().is_some() {
                return Err(format!("trailing data on journal record \"{tag}\""));
            }
        }
        Ok(j)
    }

    /// Replay the journal into `target`, restricted to the pattern range
    /// `[p0, p1)` of the original instance whose full configuration was
    /// `full`. Pattern-indexed data (tips, weights, direct partials) is
    /// sliced; model parameters and operations replay whole. With
    /// `(0, full.pattern_count)` this rebuilds a same-sized instance.
    pub fn replay_slice(
        &self,
        target: &mut dyn BeagleInstance,
        full: &InstanceConfig,
        p0: usize,
        p1: usize,
    ) -> Result<()> {
        let s = full.state_count;
        for (&tip, states) in &self.tip_states {
            target.set_tip_states(tip, &states[p0..p1])?;
        }
        for (&tip, partials) in &self.tip_partials {
            target.set_tip_partials(tip, &partials[p0 * s..p1 * s])?;
        }
        for (&buffer, data) in &self.partials {
            // Slice each category's pattern block out of the full buffer.
            let mut sub = Vec::with_capacity(full.category_count * (p1 - p0) * s);
            for c in 0..full.category_count {
                let base = (c * full.pattern_count + p0) * s;
                sub.extend_from_slice(&data[base..base + (p1 - p0) * s]);
            }
            target.set_partials(buffer, &sub)?;
        }
        if let Some(w) = &self.pattern_weights {
            target.set_pattern_weights(&w[p0..p1])?;
        }
        for (&i, f) in &self.frequencies {
            target.set_state_frequencies(i, f)?;
        }
        if let Some(r) = &self.category_rates {
            target.set_category_rates(r)?;
        }
        for (&i, w) in &self.category_weights {
            target.set_category_weights(i, w)?;
        }
        for (&i, (v, iv, ev)) in &self.eigens {
            target.set_eigen_decomposition(i, v, iv, ev)?;
        }
        for (&i, m) in &self.matrices {
            target.set_transition_matrix(i, m)?;
        }
        for (&m, &(eigen, t)) in &self.matrix_updates {
            target.update_transition_matrices(eigen, &[m], &[t])?;
        }
        if !self.ops.is_empty() {
            target.update_partials(&self.ops)?;
        }
        for (&cumulative, indices) in &self.scale_accumulations {
            target.reset_scale_factors(cumulative)?;
            if !indices.is_empty() {
                target.accumulate_scale_factors(indices, cumulative)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(dest: usize, c1: usize, c2: usize) -> Operation {
        Operation::new(dest, c1, c1, c2, c2)
    }

    #[test]
    fn operations_dedupe_by_destination() {
        let mut j = StateJournal::new();
        j.record_operations(&[op(4, 0, 1), op(5, 2, 3)]);
        j.record_operations(&[op(4, 1, 2)]);
        let dests: Vec<usize> = j.operations().iter().map(|o| o.destination).collect();
        assert_eq!(
            dests,
            vec![5, 4],
            "superseded write dropped, order = last execution"
        );
        assert_eq!(j.operations()[1].child1, 1, "latest operands kept");
    }

    #[test]
    fn direct_partials_supersede_operations_and_vice_versa() {
        let mut j = StateJournal::new();
        j.record_operations(&[op(4, 0, 1)]);
        j.record_partials(4, &[1.0; 16]);
        assert!(j.operations().is_empty());
        j.record_operations(&[op(4, 0, 1)]);
        assert_eq!(j.operations().len(), 1);
        assert!(j.partials.is_empty());
    }

    #[test]
    fn matrix_sources_are_exclusive() {
        let mut j = StateJournal::new();
        j.record_matrix_updates(0, &[3], &[0.1]);
        j.record_matrix(3, &[0.25; 16]);
        assert!(j.matrix_updates.is_empty());
        j.record_matrix_updates(0, &[3], &[0.2]);
        assert!(j.matrices.is_empty());
        assert_eq!(j.matrix_updates[&3], (0, 0.2));
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let mut j = StateJournal::new();
        j.record_tip_states(0, &[0, 3, u32::MAX]);
        j.record_tip_partials(1, &[0.25, 1e-300, -0.0]);
        j.record_partials(4, &[std::f64::consts::PI, 2.0_f64.sqrt()]);
        j.record_pattern_weights(&[1.0, 2.0, 3.0]);
        j.record_frequencies(0, &[0.1, 0.2, 0.3, 0.4]);
        j.record_category_rates(&[0.5, 1.5]);
        j.record_category_weights(0, &[0.5, 0.5]);
        j.record_eigen(0, &[1.0; 4], &[2.0; 4], &[-0.5, 0.5]);
        j.record_matrix(3, &[0.25; 4]);
        j.record_matrix_updates(0, &[5], &[0.123456789]);
        j.record_operations(&[op(6, 0, 1), op(7, 6, 2).with_scaling(7)]);
        j.record_scale_accumulation(&[6, 7], 9);

        let mut text = String::new();
        j.encode_into(&mut text);
        let lines: Vec<&str> = text.lines().collect();
        let back = StateJournal::decode_lines(&lines).unwrap();

        let mut text2 = String::new();
        back.encode_into(&mut text2);
        assert_eq!(text, text2, "round trip must be bit-exact");
        assert_eq!(back.operations(), j.operations());
        assert_eq!(back.tip_partials[&1], j.tip_partials[&1]);
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        assert!(StateJournal::decode_lines(&["bogus 1 2"]).is_err());
        assert!(StateJournal::decode_lines(&["tip_states 0 3 1 2"]).is_err());
        assert!(StateJournal::decode_lines(&["pattern_weights 1 zz"]).is_err());
        assert!(
            StateJournal::decode_lines(&["tip_states 0 1 7 extra"]).is_err(),
            "trailing tokens are corruption, not noise"
        );
        assert!(StateJournal::decode_lines(&[])
            .unwrap()
            .operations()
            .is_empty());
    }

    #[test]
    fn scale_reset_clears_accumulation() {
        let mut j = StateJournal::new();
        j.record_scale_accumulation(&[1, 2], 9);
        j.record_scale_reset(9);
        j.record_scale_accumulation(&[3], 9);
        assert_eq!(j.scale_accumulations[&9], vec![3]);
    }
}
