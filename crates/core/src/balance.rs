//! Adaptive load balancing across heterogeneous partitions.
//!
//! The ICPP'17 paper's headline capability is splitting one analysis across
//! *heterogeneous* devices with work assigned proportionally to measured
//! throughput. The static half of that already exists
//! ([`crate::multi::weighted_ranges`] plus
//! [`crate::manager::ImplementationManager::benchmark_resources`]); this
//! module closes the loop at runtime:
//!
//! 1. After every fan-out batch ([`crate::multi::PartitionedInstance`]
//!    `update_partials` / root or edge integration), each child's elapsed
//!    time — modeled device time for simulated back-ends, wall time
//!    otherwise — feeds a per-part exponentially weighted moving average of
//!    throughput in patterns per second.
//! 2. Once every part has enough observations, the balancer predicts the
//!    batch makespan of the *current* partition and compares it against the
//!    ideal (work perfectly proportional to throughput). When the ratio —
//!    the **skew** — exceeds a threshold, it proposes new stride-aligned
//!    pattern ranges proportional to the estimated throughputs.
//! 3. The partitioned instance migrates state between children (journal
//!    replay, the same protocol eviction uses) and journals a `rebalance`
//!    observability event.
//!
//! All knobs have `BEAGLE_REBALANCE_*` environment overrides (see
//! [`BalancerConfig::from_env`]), so deployments can tune or disable the
//! loop without code changes.

use std::time::Duration;

/// Pattern-count granularity for partition split points.
///
/// CPU back-ends pad each category row to the SIMD register width (4 f64 /
/// 8 f32 lanes) and tile pattern loops in blocks of 8; a split point inside
/// such a block puts the boundary mid-padding, so a migrated slice starts at
/// a partially filled vector. Aligning split points to the widest stride
/// keeps every migrated slice block-aligned on every back-end.
pub const PATTERN_STRIDE: usize = 8;

/// Samples shorter than this are deferred no-ops (e.g. a queued child's
/// `update_partials` returns before doing any work) and carry no throughput
/// information; [`LoadBalancer::observe`] discards them.
const MIN_SAMPLE: Duration = Duration::from_nanos(200);

/// Tuning knobs for [`LoadBalancer`].
#[derive(Clone, Copy, Debug)]
pub struct BalancerConfig {
    /// EWMA gain in `(0, 1]`: weight of the newest throughput sample.
    pub alpha: f64,
    /// Rebalance when predicted makespan exceeds the ideal by this ratio
    /// (`1.25` = the slowest part is predicted 25% over a perfect split).
    pub skew_threshold: f64,
    /// Observed batches required from *every* part before the first
    /// rebalance may trigger (throughput estimates need to settle).
    pub min_batches: u32,
    /// Split-point alignment in patterns (see [`PATTERN_STRIDE`]).
    pub stride: usize,
    /// Master switch; `false` keeps measuring but never proposes ranges.
    pub enabled: bool,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        Self {
            alpha: 0.4,
            skew_threshold: 1.25,
            min_batches: 2,
            stride: PATTERN_STRIDE,
            enabled: true,
        }
    }
}

impl BalancerConfig {
    /// Defaults overridden by environment variables:
    ///
    /// | variable | meaning |
    /// |---|---|
    /// | `BEAGLE_REBALANCE_ALPHA` | EWMA gain in `(0, 1]` |
    /// | `BEAGLE_REBALANCE_SKEW` | makespan-skew threshold (≥ 1) |
    /// | `BEAGLE_REBALANCE_MIN_BATCHES` | batches per part before acting |
    /// | `BEAGLE_REBALANCE_STRIDE` | split-point alignment in patterns |
    /// | `BEAGLE_REBALANCE_DISABLE` | any value but `0` disables rebalancing |
    ///
    /// Unparseable or out-of-range values fall back to the default (env
    /// tuning must never turn into a panic in a long run).
    pub fn from_env() -> Self {
        Self::default().overridden_by_env()
    }

    /// This configuration with any `BEAGLE_REBALANCE_*` environment
    /// variables applied on top (same variables and validation as
    /// [`Self::from_env`]). The precedence rule for every knob in the
    /// workspace — environment over typed builder value over default — is
    /// documented in [`crate::spec`]; a typed
    /// `InstanceSpec::with_balancer` base goes through here so deployments
    /// can still retune a compiled-in configuration without code changes.
    pub fn overridden_by_env(self) -> Self {
        let mut cfg = self;
        if let Some(a) = env_f64("BEAGLE_REBALANCE_ALPHA") {
            if a > 0.0 && a <= 1.0 {
                cfg.alpha = a;
            }
        }
        if let Some(s) = env_f64("BEAGLE_REBALANCE_SKEW") {
            if s >= 1.0 {
                cfg.skew_threshold = s;
            }
        }
        if let Some(b) = env_u64("BEAGLE_REBALANCE_MIN_BATCHES") {
            if b >= 1 {
                cfg.min_batches = b.min(u32::MAX as u64) as u32;
            }
        }
        if let Some(s) = env_u64("BEAGLE_REBALANCE_STRIDE") {
            if s >= 1 {
                cfg.stride = s as usize;
            }
        }
        if let Ok(v) = std::env::var("BEAGLE_REBALANCE_DISABLE") {
            if v != "0" {
                cfg.enabled = false;
            }
        }
        cfg
    }
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Per-part throughput estimate.
#[derive(Clone, Copy, Debug)]
struct PartEstimate {
    /// EWMA throughput in patterns per second.
    rate: f64,
    /// Accepted observations so far.
    batches: u32,
}

/// An accepted repartitioning decision from [`LoadBalancer::plan`]: the
/// proposed stride-aligned ranges plus the per-part throughput estimates
/// (patterns/second) that justified them. The rates ride along because
/// accepting a plan resets the settle counters, so
/// [`LoadBalancer::throughputs`] reads `None` until the new layout has
/// re-settled — but the migration itself still needs the weights.
pub type RebalancePlan = (Vec<(usize, usize)>, Vec<f64>);

/// Measured-throughput repartitioning: per-part EWMA throughput estimates
/// plus the skew test that decides when re-splitting pays.
///
/// Pure bookkeeping — it never touches instances. The owner
/// ([`crate::multi::PartitionedInstance`]) feeds [`LoadBalancer::observe`]
/// after each batch, asks [`LoadBalancer::plan`] whether to migrate, and
/// keeps part indices in sync on eviction via [`LoadBalancer::remove_part`].
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    config: BalancerConfig,
    parts: Vec<PartEstimate>,
    rebalances: u64,
}

impl LoadBalancer {
    /// A balancer for `parts` partitions.
    pub fn new(parts: usize, config: BalancerConfig) -> Self {
        Self {
            config,
            parts: vec![
                PartEstimate {
                    rate: 0.0,
                    batches: 0
                };
                parts
            ],
            rebalances: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BalancerConfig {
        &self.config
    }

    /// Partitions currently tracked.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Rebalances proposed so far (i.e. accepted [`LoadBalancer::plan`]s).
    pub fn rebalance_count(&self) -> u64 {
        self.rebalances
    }

    /// Record one batch: part `part` processed `patterns` patterns in
    /// `elapsed`. Degenerate samples (zero patterns, or sub-microsecond
    /// deferred calls that did no real work) are discarded.
    pub fn observe(&mut self, part: usize, patterns: usize, elapsed: Duration) {
        if patterns == 0 || elapsed < MIN_SAMPLE {
            return;
        }
        let rate = patterns as f64 / elapsed.as_secs_f64();
        if !rate.is_finite() || rate <= 0.0 {
            return;
        }
        let e = &mut self.parts[part];
        e.rate = if e.batches == 0 {
            rate
        } else {
            self.config.alpha * rate + (1.0 - self.config.alpha) * e.rate
        };
        e.batches += 1;
    }

    /// Estimated throughput per part (patterns/second), once every part has
    /// at least [`BalancerConfig::min_batches`] accepted observations.
    pub fn throughputs(&self) -> Option<Vec<f64>> {
        if self
            .parts
            .iter()
            .all(|e| e.batches >= self.config.min_batches && e.rate > 0.0)
        {
            Some(self.parts.iter().map(|e| e.rate).collect())
        } else {
            None
        }
    }

    /// Predicted makespan skew of `ranges` under the current throughput
    /// estimates: `max_i(n_i / rate_i)` over the ideal makespan
    /// `Σn / Σrate`. Always ≥ 1; exactly 1 when work is perfectly
    /// proportional to throughput. `None` until every part is estimated.
    pub fn predicted_skew(&self, ranges: &[(usize, usize)]) -> Option<f64> {
        let rates = self.throughputs()?;
        if rates.len() != ranges.len() {
            return None;
        }
        let total_patterns: usize = ranges.iter().map(|(a, b)| b - a).sum();
        let total_rate: f64 = rates.iter().sum();
        let ideal = total_patterns as f64 / total_rate;
        let worst = ranges
            .iter()
            .zip(&rates)
            .map(|(&(a, b), &r)| (b - a) as f64 / r)
            .fold(0.0f64, f64::max);
        Some(worst / ideal)
    }

    /// Decide whether to repartition `patterns` patterns currently split as
    /// `ranges`. Returns the proposed stride-aligned ranges plus the
    /// throughput estimates that justified them when (a) rebalancing is
    /// enabled, (b) every part has settled estimates, (c) the predicted skew
    /// of the current split exceeds the threshold, and (d) the proposal
    /// *strictly improves* the predicted skew — the guard that makes skew
    /// monotonically decreasing under stationary throughputs (no thrash).
    ///
    /// Accepting a plan resets every part's batch counter (the EWMA rates
    /// survive): per-part cost is not perfectly linear in patterns — kernel
    /// launch overheads, padding — so estimates measured at the *old* layout
    /// must re-settle over [`BalancerConfig::min_batches`] fresh batches at
    /// the new one before the balancer may migrate again. Without this
    /// cool-down a fixed per-batch overhead reads as "this part got slower",
    /// and the loop chases its own tail into a degenerate split.
    pub fn plan(&mut self, patterns: usize, ranges: &[(usize, usize)]) -> Option<RebalancePlan> {
        if !self.config.enabled {
            return None;
        }
        let rates = self.throughputs()?;
        let current = self.predicted_skew(ranges)?;
        if current <= self.config.skew_threshold {
            return None;
        }
        let proposed =
            crate::multi::weighted_ranges_aligned(patterns, &rates, self.config.stride).ok()?;
        if proposed == ranges || self.predicted_skew(&proposed)? >= current {
            return None;
        }
        self.rebalances += 1;
        for e in &mut self.parts {
            e.batches = 0;
        }
        Some((proposed, rates))
    }

    /// Drop part `i` (evicted upstream); its estimate goes with it.
    pub fn remove_part(&mut self, i: usize) {
        self.parts.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(b: &mut LoadBalancer, rates: &[f64], batches: u32) {
        for _ in 0..batches {
            for (i, &r) in rates.iter().enumerate() {
                b.observe(i, 1000, Duration::from_secs_f64(1000.0 / r));
            }
        }
    }

    #[test]
    fn observe_tracks_rates() {
        let mut b = LoadBalancer::new(2, BalancerConfig::default());
        feed(&mut b, &[4000.0, 1000.0], 3);
        let thr = b.throughputs().expect("both parts observed");
        assert!((thr[0] - 4000.0).abs() / 4000.0 < 1e-9, "{thr:?}");
        assert!((thr[1] - 1000.0).abs() / 1000.0 < 1e-9, "{thr:?}");
    }

    #[test]
    fn degenerate_samples_discarded() {
        let mut b = LoadBalancer::new(1, BalancerConfig::default());
        b.observe(0, 0, Duration::from_millis(1));
        b.observe(0, 1000, Duration::ZERO);
        b.observe(0, 1000, Duration::from_nanos(50));
        assert!(b.throughputs().is_none());
    }

    #[test]
    fn skew_of_proportional_split_is_one() {
        let mut b = LoadBalancer::new(2, BalancerConfig::default());
        feed(&mut b, &[3000.0, 1000.0], 2);
        let skew = b.predicted_skew(&[(0, 750), (750, 1000)]).unwrap();
        assert!((skew - 1.0).abs() < 1e-9, "{skew}");
    }

    /// Makespan skew of `ranges` under `rates` (the quantity plan() bounds).
    fn skew_of(ranges: &[(usize, usize)], rates: &[f64]) -> f64 {
        let patterns: usize = ranges.iter().map(|(a, b)| b - a).sum();
        let ideal = patterns as f64 / rates.iter().sum::<f64>();
        ranges
            .iter()
            .zip(rates)
            .map(|(&(a, b), &r)| (b - a) as f64 / r)
            .fold(0.0f64, f64::max)
            / ideal
    }

    #[test]
    fn plan_triggers_on_skew_and_improves_it() {
        let mut b = LoadBalancer::new(2, BalancerConfig::default());
        feed(&mut b, &[4000.0, 1000.0], 2);
        let equal = [(0, 500), (500, 1000)];
        let before = b.predicted_skew(&equal).unwrap();
        assert!(before > b.config().skew_threshold, "{before}");
        let (new, rates) = b.plan(1000, &equal).expect("skewed split must replan");
        let after = skew_of(&new, &rates);
        assert!(after < before, "{after} !< {before}");
        // The fast part gets the lion's share, stride-aligned.
        assert!(new[0].1 > 700 && new[0].1 % PATTERN_STRIDE == 0, "{new:?}");
        assert_eq!(b.rebalance_count(), 1);
    }

    /// Accepting a plan resets settling: the balancer will not migrate
    /// again until every part has re-accumulated `min_batches` fresh
    /// observations at the new layout.
    #[test]
    fn accepted_plan_requires_resettling() {
        let mut b = LoadBalancer::new(2, BalancerConfig::default());
        feed(&mut b, &[4000.0, 1000.0], 2);
        let equal = [(0, 500), (500, 1000)];
        let (new, _) = b.plan(1000, &equal).expect("skewed split must replan");
        assert!(
            b.throughputs().is_none(),
            "estimates must re-settle after a migration"
        );
        assert!(b.plan(1000, &equal).is_none(), "no back-to-back migrations");
        // The throughput picture inverts at the new layout; once re-settled
        // the balancer may move again — and the EWMA keeps its memory.
        feed(&mut b, &[1000.0, 4000.0], 2);
        assert!(b.plan(1000, &new).is_some());
        assert_eq!(b.rebalance_count(), 2);
    }

    #[test]
    fn plan_quiet_when_balanced_or_disabled() {
        let mut b = LoadBalancer::new(2, BalancerConfig::default());
        feed(&mut b, &[1000.0, 1000.0], 2);
        assert!(b.plan(1000, &[(0, 500), (500, 1000)]).is_none());

        let mut off = LoadBalancer::new(
            2,
            BalancerConfig {
                enabled: false,
                ..BalancerConfig::default()
            },
        );
        feed(&mut off, &[4000.0, 1000.0], 2);
        assert!(off.plan(1000, &[(0, 500), (500, 1000)]).is_none());
        assert_eq!(off.rebalance_count(), 0);
    }

    #[test]
    fn plan_waits_for_min_batches() {
        let mut b = LoadBalancer::new(
            2,
            BalancerConfig {
                min_batches: 3,
                ..BalancerConfig::default()
            },
        );
        feed(&mut b, &[4000.0, 1000.0], 2);
        assert!(b.plan(1000, &[(0, 500), (500, 1000)]).is_none());
        feed(&mut b, &[4000.0, 1000.0], 1);
        assert!(b.plan(1000, &[(0, 500), (500, 1000)]).is_some());
    }

    #[test]
    fn remove_part_keeps_indices_in_sync() {
        let mut b = LoadBalancer::new(3, BalancerConfig::default());
        feed(&mut b, &[1000.0, 2000.0, 3000.0], 2);
        b.remove_part(1);
        let thr = b.throughputs().unwrap();
        assert_eq!(thr.len(), 2);
        assert!(thr[1] > thr[0]);
    }

    #[test]
    fn ewma_adapts_to_throughput_change() {
        let mut b = LoadBalancer::new(1, BalancerConfig::default());
        feed(&mut b, &[1000.0], 3);
        // The device throttles to a quarter of its speed.
        feed(&mut b, &[250.0], 12);
        let thr = b.throughputs().unwrap();
        assert!(
            thr[0] < 300.0,
            "EWMA should converge to the new rate, got {thr:?}"
        );
    }
}
