//! Deadline budgets for watchdog cancellation.
//!
//! Real accelerator runtimes ship a *driver watchdog*: a kernel that holds
//! the device past a time budget is cancelled and the call returns an
//! error, because a wedged queue would otherwise block every client of the
//! device forever. BEAGLE-RS reproduces that contract as a per-launch
//! [`Deadline`]: a budget threaded from [`crate::InstanceSpec`] through the
//! manager and every wrapper layer down to the per-launch fault checkpoints
//! of the simulated back-ends. A launch that stalls past the budget (a
//! seeded `Stall`/`Hang` fault) is cancelled by the watchdog and surfaces
//! as [`crate::BeagleError::Timeout`] — which the failover layer treats as
//! grounds for eviction, never for in-place retry (see
//! [`crate::BeagleError::is_retryable`]).
//!
//! The budget is **per launch**, not per run: cancelling one hung launch
//! must leave the rest of the budget available for repartitioning the work
//! onto healthy devices and replaying the journal there.

use std::time::Duration;

/// A per-launch watchdog budget.
///
/// Instances without an explicit deadline fall back to
/// [`Deadline::DRIVER_DEFAULT`], mirroring the ~2 s watchdog real display
/// drivers enforce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    budget: Duration,
}

impl Deadline {
    /// The driver-level fallback watchdog applied when the client sets no
    /// explicit deadline (real GPU drivers cancel kernels on this order).
    pub const DRIVER_DEFAULT: Deadline = Deadline {
        budget: Duration::from_secs(2),
    };

    /// A deadline allowing each launch `budget` of device time.
    pub fn new(budget: Duration) -> Self {
        Self { budget }
    }

    /// The per-launch budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Whether a launch that has already taken `elapsed` must be cancelled.
    pub fn exceeded_by(&self, elapsed: Duration) -> bool {
        elapsed >= self.budget
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Self::DRIVER_DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_comparison() {
        let d = Deadline::new(Duration::from_millis(10));
        assert!(!d.exceeded_by(Duration::from_millis(9)));
        assert!(d.exceeded_by(Duration::from_millis(10)));
        assert!(d.exceeded_by(Duration::MAX));
        assert_eq!(d.budget(), Duration::from_millis(10));
    }

    #[test]
    fn default_is_the_driver_watchdog() {
        assert_eq!(Deadline::default(), Deadline::DRIVER_DEFAULT);
        assert_eq!(Deadline::DRIVER_DEFAULT.budget(), Duration::from_secs(2));
    }
}
