//! Kernel-level observability: timers, counters, and an event journal.
//!
//! The paper's central claim is comparative — the same kernel source ranked
//! across heterogeneous back-ends by *measured* throughput — so the library
//! needs a way to observe where time goes. This module provides it:
//!
//! * [`InstanceStats`] — per-instance aggregation of wall time, invocation
//!   counts, bytes moved, and modeled device time per [`KernelClass`]
//!   (partials pp/sp/ss, transition matrices, rescaling, root/edge
//!   integration, queue flushes, pool dispatches), exposed through
//!   [`crate::BeagleInstance::statistics`].
//! * [`Event`] — a ring-buffered journal of notable moments (operation
//!   begin/end, fault injection, numerical rescue, device failover, queue
//!   level batches, dispatch-path selection), dumpable as JSON lines for
//!   offline timeline analysis via [`crate::BeagleInstance::take_journal`].
//! * [`Recorder`] — the per-instance collection point back-ends write to.
//!
//! # Zero cost when disabled
//!
//! Recording is off by default and opt-in per instance (the
//! [`crate::Flags::INSTANCE_STATS`] creation flag, or
//! `InstanceSpec::with_stats`). A disabled recorder reduces every hook to a
//! single branch on a bool — no clock reads, no formatting (event details
//! are closures that never run), no allocation. Compiling with the
//! `obs-disabled` cargo feature removes even that: [`Recorder`] becomes a
//! zero-sized type whose methods are empty and `statistics()` is always
//! `None`, so the instrumentation cannot be measured at all.
//!
//! Events carry a process-global sequence number and a microsecond
//! timestamp from a shared epoch, so journals taken from different layers
//! of a wrapper stack (queue → rescue → back-end) merge into one total
//! order with [`merge_journals`].

use std::fmt;

/// The kernel classes instrumented across every back-end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Partials update with two partials children.
    PartialsPP,
    /// Partials update with one tip-state and one partials child.
    PartialsSP,
    /// Partials update with two tip-state children.
    PartialsSS,
    /// Transition-matrix computation from an eigen system.
    TransitionMatrices,
    /// Scale-factor bookkeeping (reset / accumulate / per-op rescale).
    Rescale,
    /// Root log-likelihood integration.
    RootIntegrate,
    /// Edge log-likelihood integration (including derivative variants).
    EdgeIntegrate,
    /// Operation-queue flush (deferred-execution wrapper).
    QueueFlush,
    /// Thread-pool batch dispatch (CPU and OpenCL-x86 back-ends).
    PoolDispatch,
}

impl KernelClass {
    /// Number of kernel classes (array dimension of [`InstanceStats`]).
    pub const COUNT: usize = 9;

    /// Every class, in counter-array order.
    pub const ALL: [KernelClass; KernelClass::COUNT] = [
        KernelClass::PartialsPP,
        KernelClass::PartialsSP,
        KernelClass::PartialsSS,
        KernelClass::TransitionMatrices,
        KernelClass::Rescale,
        KernelClass::RootIntegrate,
        KernelClass::EdgeIntegrate,
        KernelClass::QueueFlush,
        KernelClass::PoolDispatch,
    ];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::PartialsPP => "partials_pp",
            KernelClass::PartialsSP => "partials_sp",
            KernelClass::PartialsSS => "partials_ss",
            KernelClass::TransitionMatrices => "transition_matrices",
            KernelClass::Rescale => "rescale",
            KernelClass::RootIntegrate => "root_integrate",
            KernelClass::EdgeIntegrate => "edge_integrate",
            KernelClass::QueueFlush => "queue_flush",
            KernelClass::PoolDispatch => "pool_dispatch",
        }
    }

    fn idx(self) -> usize {
        match self {
            KernelClass::PartialsPP => 0,
            KernelClass::PartialsSP => 1,
            KernelClass::PartialsSS => 2,
            KernelClass::TransitionMatrices => 3,
            KernelClass::Rescale => 4,
            KernelClass::RootIntegrate => 5,
            KernelClass::EdgeIntegrate => 6,
            KernelClass::QueueFlush => 7,
            KernelClass::PoolDispatch => 8,
        }
    }
}

/// Aggregated counters for one kernel class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounter {
    /// Number of instrumented invocations.
    pub calls: u64,
    /// Work items processed (operations, matrices, or patterns — whatever
    /// the class naturally counts).
    pub items: u64,
    /// Estimated bytes moved (buffer reads + writes, host↔device copies).
    pub bytes: u64,
    /// Measured host wall time, in nanoseconds.
    pub wall_nanos: u64,
    /// Modeled device time, in nanoseconds (simulated accelerators only;
    /// zero for back-ends measured with the wall clock).
    pub modeled_nanos: u64,
}

impl KernelCounter {
    fn merge(&mut self, other: &KernelCounter) {
        self.calls += other.calls;
        self.items += other.items;
        self.bytes += other.bytes;
        self.wall_nanos += other.wall_nanos;
        self.modeled_nanos += other.modeled_nanos;
    }
}

/// Per-instance kernel statistics, returned by
/// [`crate::BeagleInstance::statistics`]. Wrapper instances merge their own
/// counters with the wrapped instance's, so the client always sees one
/// aggregated view of the whole stack.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// One counter per [`KernelClass`], indexed in [`KernelClass::ALL`]
    /// order.
    pub counters: [KernelCounter; KernelClass::COUNT],
    /// Journal events dropped because the ring buffer was full.
    pub journal_dropped: u64,
    /// Partials operations skipped by the incremental memo layer because
    /// the destination already held the result of bit-identical inputs.
    pub ops_skipped: u64,
    /// Transition-matrix updates skipped by the memo layer.
    pub matrices_skipped: u64,
    /// Root/edge integrations answered from the memo layer's cached value.
    pub integrations_skipped: u64,
    /// Mutating `set_*` calls elided because the new content was
    /// bit-identical to what the buffer already held.
    pub sets_deduped: u64,
    /// Derived transition matrices served from the eigen cache (deferred
    /// execution layer).
    pub eigen_cache_hits: u64,
    /// Eigen-cache misses (matrices actually recomputed).
    pub eigen_cache_misses: u64,
}

impl InstanceStats {
    /// The counter for one kernel class.
    pub fn counter(&self, class: KernelClass) -> &KernelCounter {
        &self.counters[class.idx()]
    }

    #[cfg(not(feature = "obs-disabled"))]
    fn counter_mut(&mut self, class: KernelClass) -> &mut KernelCounter {
        &mut self.counters[class.idx()]
    }

    /// Fold another stats block into this one (wrapper aggregation).
    pub fn merge(&mut self, other: &InstanceStats) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            a.merge(b);
        }
        self.journal_dropped += other.journal_dropped;
        self.ops_skipped += other.ops_skipped;
        self.matrices_skipped += other.matrices_skipped;
        self.integrations_skipped += other.integrations_skipped;
        self.sets_deduped += other.sets_deduped;
        self.eigen_cache_hits += other.eigen_cache_hits;
        self.eigen_cache_misses += other.eigen_cache_misses;
    }

    /// Total measured wall time across all classes, in nanoseconds.
    pub fn total_wall_nanos(&self) -> u64 {
        self.counters.iter().map(|c| c.wall_nanos).sum()
    }

    /// Total modeled device time across all classes, in nanoseconds.
    pub fn total_modeled_nanos(&self) -> u64 {
        self.counters.iter().map(|c| c.modeled_nanos).sum()
    }

    /// Total instrumented invocations across all classes.
    pub fn total_calls(&self) -> u64 {
        self.counters.iter().map(|c| c.calls).sum()
    }

    /// JSON object keyed by kernel-class name (hand-rolled: the offline
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, class) in KernelClass::ALL.iter().enumerate() {
            let c = self.counter(*class);
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"items\":{},\"bytes\":{},\"wall_nanos\":{},\"modeled_nanos\":{}}}",
                class.name(),
                c.calls,
                c.items,
                c.bytes,
                c.wall_nanos,
                c.modeled_nanos
            ));
        }
        out.push_str(&format!(",\"journal_dropped\":{}", self.journal_dropped));
        out.push_str(&format!(
            ",\"ops_skipped\":{},\"matrices_skipped\":{},\"integrations_skipped\":{},\"sets_deduped\":{}",
            self.ops_skipped, self.matrices_skipped, self.integrations_skipped, self.sets_deduped
        ));
        out.push_str(&format!(
            ",\"eigen_cache_hits\":{},\"eigen_cache_misses\":{}}}",
            self.eigen_cache_hits, self.eigen_cache_misses
        ));
        out
    }
}

/// What a journal entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An `update_partials`-family call entered a back-end.
    OperationBegin,
    /// The call completed.
    OperationEnd,
    /// A device fault checkpoint fired (injected corruption or failure).
    FaultInjected,
    /// An unscaled integration failed numerically; rescue is re-running
    /// the traversal with per-destination rescaling.
    RescueTriggered,
    /// The rescaled re-run produced a finite likelihood.
    RescueSucceeded,
    /// A transient child failure was retried in place (multi-device).
    FailoverRetry,
    /// A child device was evicted and survivors rebuilt (multi-device).
    FailoverEviction,
    /// One hazard-free batch of dependency levels was submitted.
    LevelBatch,
    /// The operation queue flushed pending work to the back-end.
    QueueFlush,
    /// An instance resolved its kernel dispatch path at creation.
    DispatchSelected,
    /// A launch stalled past its watchdog budget and was cancelled.
    WatchdogTimeout,
    /// A resource's circuit breaker tripped open (quarantined).
    BreakerOpen,
    /// A quarantined resource's cooldown expired; probing allowed.
    BreakerHalfOpen,
    /// A half-open resource passed its probe and was readmitted.
    BreakerClosed,
    /// A durable checkpoint snapshot was taken.
    CheckpointSaved,
    /// An instance was reconstructed from a checkpoint snapshot.
    CheckpointRestored,
    /// A partitioned instance migrated pattern ranges between children
    /// (adaptive load balancing, or an eviction re-split over survivors).
    Rebalance,
    /// The incremental memo layer proved a call's inputs bit-identical to
    /// what its destinations already hold and skipped the work.
    IncrementalSkip,
    /// An instance-pool worker's back-end was evicted after an evictable
    /// failure (watchdog timeout, permanent device fault).
    PoolWorkerEvicted,
    /// A replacement back-end was built for an evicted pool worker.
    PoolWorkerRebuilt,
    /// An instance pool shut down (detail records drain vs abort and the
    /// number of jobs left behind).
    PoolShutdown,
    /// The likelihood server accepted a session onto its pool.
    ServerAccept,
    /// The likelihood server refused a session (admission control, pool
    /// backpressure, or a drain in progress) with a `Busy` response.
    ServerReject,
    /// The likelihood server began a graceful drain.
    ServerDrain,
}

impl EventKind {
    /// Stable snake_case name (used as the JSON `kind`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::OperationBegin => "operation_begin",
            EventKind::OperationEnd => "operation_end",
            EventKind::FaultInjected => "fault_injected",
            EventKind::RescueTriggered => "rescue_triggered",
            EventKind::RescueSucceeded => "rescue_succeeded",
            EventKind::FailoverRetry => "failover_retry",
            EventKind::FailoverEviction => "failover_eviction",
            EventKind::LevelBatch => "level_batch",
            EventKind::QueueFlush => "queue_flush",
            EventKind::DispatchSelected => "dispatch_selected",
            EventKind::WatchdogTimeout => "watchdog_timeout",
            EventKind::BreakerOpen => "breaker_open",
            EventKind::BreakerHalfOpen => "breaker_half_open",
            EventKind::BreakerClosed => "breaker_closed",
            EventKind::CheckpointSaved => "checkpoint_saved",
            EventKind::CheckpointRestored => "checkpoint_restored",
            EventKind::Rebalance => "rebalance",
            EventKind::IncrementalSkip => "incremental_skip",
            EventKind::PoolWorkerEvicted => "pool_worker_evicted",
            EventKind::PoolWorkerRebuilt => "pool_worker_rebuilt",
            EventKind::PoolShutdown => "pool_shutdown",
            EventKind::ServerAccept => "server_accept",
            EventKind::ServerReject => "server_reject",
            EventKind::ServerDrain => "server_drain",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One journal entry. `seq` is a process-global sequence number and
/// `at_micros` microseconds since a process-global epoch, so entries from
/// independent recorders interleave into one total order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Process-global, strictly increasing sequence number.
    pub seq: u64,
    /// Microseconds since the process-global journal epoch.
    pub at_micros: u64,
    /// What happened.
    pub kind: EventKind,
    /// Free-form detail (implementation name, op counts, fault site, …).
    pub detail: String,
}

impl Event {
    /// One JSON object, suitable as a JSON-lines record.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_micros\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            self.at_micros,
            self.kind.name(),
            json_escape(&self.detail)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a journal as JSON lines (one event per line).
///
/// The ring buffer silently drops the oldest events on overflow, so a dump
/// alone cannot reveal truncation; pass the instance's
/// [`InstanceStats::journal_dropped`] as `dropped_events` and the dump opens
/// with a summary record making the loss visible.
pub fn journal_to_json_lines(events: &[Event], dropped_events: u64) -> String {
    let mut out = format!(
        "{{\"kind\":\"journal_summary\",\"events\":{},\"dropped_events\":{}}}\n",
        events.len(),
        dropped_events
    );
    for e in events {
        out.push_str(&e.to_json_line());
        out.push('\n');
    }
    out
}

/// Merge two journals into sequence order (stable total order across
/// recorders thanks to the global sequence counter).
pub fn merge_journals(mut a: Vec<Event>, b: Vec<Event>) -> Vec<Event> {
    a.extend(b);
    a.sort_by_key(|e| e.seq);
    a
}

/// Default ring-buffer capacity of a recorder's event journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

#[cfg(not(feature = "obs-disabled"))]
mod imp {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    /// Process-global journal epoch: set on first use, shared by every
    /// recorder so timestamps are comparable across instances.
    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// Microseconds since the process-global journal epoch.
    pub fn now_micros() -> u64 {
        epoch().elapsed().as_micros() as u64
    }

    fn next_seq() -> u64 {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        SEQ.fetch_add(1, Ordering::Relaxed)
    }

    /// A running wall-clock measurement; obtained from [`Recorder::start`]
    /// and settled by [`Recorder::finish`]. Inert when recording is off.
    #[must_use]
    pub struct Stopwatch(Option<Instant>);

    /// The per-instance collection point: kernel counters plus the
    /// ring-buffered event journal. Every hook is a no-op (one branch on a
    /// bool) when the recorder is disabled.
    #[derive(Default)]
    pub struct Recorder {
        enabled: bool,
        stats: InstanceStats,
        journal: VecDeque<Event>,
        capacity: usize,
    }

    impl Recorder {
        /// A recorder; `enabled` decides whether hooks record anything.
        pub fn new(enabled: bool) -> Self {
            Self {
                enabled,
                stats: InstanceStats::default(),
                journal: VecDeque::new(),
                capacity: DEFAULT_JOURNAL_CAPACITY,
            }
        }

        /// A permanently disabled recorder (the default for instances
        /// created without [`crate::Flags::INSTANCE_STATS`]).
        pub fn disabled() -> Self {
            Self::new(false)
        }

        /// Whether hooks record anything.
        pub fn is_enabled(&self) -> bool {
            self.enabled
        }

        /// Begin a wall-clock measurement (reads the clock only when
        /// enabled).
        pub fn start(&self) -> Stopwatch {
            Stopwatch(self.enabled.then(Instant::now))
        }

        /// Settle a measurement into `class`, adding `items` work items and
        /// `bytes` moved.
        pub fn finish(&mut self, sw: Stopwatch, class: KernelClass, items: u64, bytes: u64) {
            let Some(t0) = sw.0 else { return };
            let c = self.stats.counter_mut(class);
            c.calls += 1;
            c.items += items;
            c.bytes += bytes;
            c.wall_nanos += t0.elapsed().as_nanos() as u64;
        }

        /// Count an invocation without timing it (e.g. pool dispatches).
        pub fn tally(&mut self, class: KernelClass, items: u64, bytes: u64) {
            if !self.enabled {
                return;
            }
            let c = self.stats.counter_mut(class);
            c.calls += 1;
            c.items += items;
            c.bytes += bytes;
        }

        /// Add wall time to `class` without a stopwatch (pre-measured
        /// durations, e.g. a share of a batched dispatch).
        pub fn add_wall(&mut self, class: KernelClass, wall: Duration) {
            if self.enabled {
                self.stats.counter_mut(class).wall_nanos += wall.as_nanos() as u64;
            }
        }

        /// Add modeled device time to `class` (simulated accelerators).
        pub fn add_modeled(&mut self, class: KernelClass, modeled: Duration) {
            if self.enabled {
                self.stats.counter_mut(class).modeled_nanos += modeled.as_nanos() as u64;
            }
        }

        /// Append a journal event. `detail` is a closure so the disabled
        /// path never formats anything.
        pub fn event(&mut self, kind: EventKind, detail: impl FnOnce() -> String) {
            if !self.enabled {
                return;
            }
            if self.journal.len() >= self.capacity {
                self.journal.pop_front();
                self.stats.journal_dropped += 1;
            }
            self.journal.push_back(Event {
                seq: next_seq(),
                at_micros: now_micros(),
                kind,
                detail: detail(),
            });
        }

        /// Snapshot the counters; `None` when recording is disabled.
        pub fn stats(&self) -> Option<InstanceStats> {
            self.enabled.then(|| self.stats.clone())
        }

        /// Drain the journal (oldest first).
        pub fn take_journal(&mut self) -> Vec<Event> {
            self.journal.drain(..).collect()
        }
    }
}

#[cfg(feature = "obs-disabled")]
mod imp {
    use super::*;
    use std::time::Duration;

    /// Inert stopwatch (instrumentation compiled out).
    #[must_use]
    pub struct Stopwatch;

    /// Zero-sized recorder: every method is empty and `statistics()` is
    /// always `None`, so the instrumentation is unmeasurable.
    #[derive(Default)]
    pub struct Recorder;

    impl Recorder {
        /// Compiled-out recorder; `enabled` is ignored.
        pub fn new(_enabled: bool) -> Self {
            Recorder
        }

        /// Compiled-out recorder.
        pub fn disabled() -> Self {
            Recorder
        }

        /// Always false.
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// No-op.
        pub fn start(&self) -> Stopwatch {
            Stopwatch
        }

        /// No-op.
        pub fn finish(&mut self, _sw: Stopwatch, _class: KernelClass, _items: u64, _bytes: u64) {}

        /// No-op.
        pub fn tally(&mut self, _class: KernelClass, _items: u64, _bytes: u64) {}

        /// No-op.
        pub fn add_wall(&mut self, _class: KernelClass, _wall: Duration) {}

        /// No-op.
        pub fn add_modeled(&mut self, _class: KernelClass, _modeled: Duration) {}

        /// No-op.
        pub fn event(&mut self, _kind: EventKind, _detail: impl FnOnce() -> String) {}

        /// Always `None`.
        pub fn stats(&self) -> Option<InstanceStats> {
            None
        }

        /// Always empty.
        pub fn take_journal(&mut self) -> Vec<Event> {
            Vec::new()
        }
    }
}

pub use imp::{Recorder, Stopwatch};

#[cfg(all(test, not(feature = "obs-disabled")))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        let sw = r.start();
        r.finish(sw, KernelClass::PartialsPP, 10, 100);
        r.tally(KernelClass::PoolDispatch, 1, 0);
        r.event(EventKind::QueueFlush, || {
            unreachable!("detail must not run")
        });
        assert!(r.stats().is_none());
        assert!(r.take_journal().is_empty());
    }

    #[test]
    fn enabled_recorder_aggregates_per_class() {
        let mut r = Recorder::new(true);
        let sw = r.start();
        r.finish(sw, KernelClass::PartialsPP, 3, 64);
        r.tally(KernelClass::PartialsPP, 2, 32);
        r.add_modeled(KernelClass::PartialsPP, Duration::from_nanos(500));
        let s = r.stats().unwrap();
        let c = s.counter(KernelClass::PartialsPP);
        assert_eq!(c.calls, 2);
        assert_eq!(c.items, 5);
        assert_eq!(c.bytes, 96);
        assert_eq!(c.modeled_nanos, 500);
        assert_eq!(s.counter(KernelClass::Rescale), &KernelCounter::default());
    }

    #[test]
    fn events_are_globally_ordered() {
        let mut a = Recorder::new(true);
        let mut b = Recorder::new(true);
        a.event(EventKind::OperationBegin, || "first".into());
        b.event(EventKind::QueueFlush, || "second".into());
        a.event(EventKind::OperationEnd, || "third".into());
        let merged = merge_journals(a.take_journal(), b.take_journal());
        assert_eq!(merged.len(), 3);
        assert!(merged.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(merged[1].kind, EventKind::QueueFlush);
    }

    #[test]
    fn journal_ring_drops_oldest() {
        let mut r = Recorder::new(true);
        for i in 0..(DEFAULT_JOURNAL_CAPACITY + 5) {
            r.event(EventKind::LevelBatch, || format!("e{i}"));
        }
        let s = r.stats().unwrap();
        assert_eq!(s.journal_dropped, 5);
        let j = r.take_journal();
        assert_eq!(j.len(), DEFAULT_JOURNAL_CAPACITY);
        assert_eq!(j.first().unwrap().detail, "e5");
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let mut r = Recorder::new(true);
        r.event(EventKind::FaultInjected, || "site=\"copy\"\nline".into());
        let j = r.take_journal();
        let line = j[0].to_json_line();
        assert!(line.contains("\\\"copy\\\""));
        assert!(line.contains("\\n"));
        let stats = InstanceStats::default().to_json();
        assert!(stats.starts_with('{') && stats.ends_with('}'));
        for class in KernelClass::ALL {
            assert!(stats.contains(class.name()));
        }
        for key in [
            "ops_skipped",
            "matrices_skipped",
            "integrations_skipped",
            "sets_deduped",
            "eigen_cache_hits",
            "eigen_cache_misses",
        ] {
            assert!(stats.contains(key), "missing {key} in {stats}");
        }
    }

    #[test]
    fn journal_dump_reports_dropped_events() {
        let mut r = Recorder::new(true);
        for i in 0..(DEFAULT_JOURNAL_CAPACITY + 3) {
            r.event(EventKind::LevelBatch, || format!("e{i}"));
        }
        let dropped = r.stats().unwrap().journal_dropped;
        let dump = journal_to_json_lines(&r.take_journal(), dropped);
        let first = dump.lines().next().unwrap();
        assert!(first.contains("\"kind\":\"journal_summary\""));
        assert!(first.contains("\"dropped_events\":3"));
        assert_eq!(dump.lines().count(), DEFAULT_JOURNAL_CAPACITY + 1);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = InstanceStats::default();
        a.counter_mut(KernelClass::Rescale).calls = 2;
        let mut b = InstanceStats::default();
        b.counter_mut(KernelClass::Rescale).calls = 3;
        b.journal_dropped = 1;
        a.merge(&b);
        assert_eq!(a.counter(KernelClass::Rescale).calls, 5);
        assert_eq!(a.journal_dropped, 1);
        assert_eq!(a.total_calls(), 5);
    }
}
