//! Durable checkpoint/restore: crash-consistent snapshots of instance state.
//!
//! The [`crate::journal::StateJournal`] already captures everything needed
//! to rebuild an instance in-process (failover uses it to repartition after
//! an eviction). This module makes that state *durable*: a [`Checkpoint`]
//! serializes the journal together with the instance's sizing
//! ([`crate::InstanceConfig`]) and creation provenance (preference /
//! requirement flags, rescue setting, pinned implementation name) into a
//! versioned text snapshot that survives the process. A fresh process loads
//! the snapshot, re-creates the instance through its own
//! [`crate::ImplementationManager`], and replays the journal — producing
//! log-likelihoods **bit-exact** with the run that wrote the snapshot
//! (every `f64` is stored as its 16-digit hex bit pattern, never formatted
//! decimally).
//!
//! Partitioned instances checkpoint through the same path: the parent's
//! whole-problem journal is what gets serialized, so a snapshot taken
//! *after* any number of adaptive rebalances
//! ([`crate::balance::LoadBalancer`]) carries no partition geometry at all.
//! Restore re-creates one instance (or a fresh partition) through the new
//! process's manager and replays the full-problem state — the rebalance
//! history affects *where* work ran, never *what* state was recorded, which
//! is what keeps restore bit-exact (see `tests/balance.rs`).
//!
//! # Format
//!
//! ```text
//! BEAGLE-CKPT v1
//! config <tips> <partials> <compact> <states> <patterns> <eigen> <matrices> <categories> <scales>
//! provenance <prefs-hex> <reqs-hex> <rescue 0|1>
//! implementation <name>          (only when creation was pinned by name)
//! journal
//! <journal records, one per line>
//! end
//! hash <fnv1a64-hex>
//! ```
//!
//! The trailing hash covers every byte above it. Any validation failure —
//! bad magic, unknown version, truncation, hash mismatch — surfaces as
//! [`BeagleError::CheckpointCorrupt`]; a corrupt snapshot is *reported*,
//! never silently replayed. Filesystem failures surface separately as
//! [`BeagleError::CheckpointIo`]. [`Checkpoint::save`] writes to a
//! temporary sibling file and renames it into place, so a crash mid-write
//! leaves the previous snapshot intact.
//!
//! # The wrapper
//!
//! [`CheckpointedInstance`] journals every mutating call and answers
//! [`crate::BeagleInstance::checkpoint`]. The manager installs it as the
//! *outermost* wrapper when [`crate::InstanceSpec::checkpointed`] is set,
//! so a snapshot reflects exactly the calls the client made (an inner
//! operation queue flushes on its own checkpoint forward, and
//! [`crate::multi::PartitionedInstance`] answers from its failover
//! journal).

use std::path::Path;

use crate::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use crate::error::{BeagleError, Result};
use crate::flags::Flags;
use crate::journal::StateJournal;
use crate::manager::ImplementationManager;
use crate::obs::{self, EventKind, Recorder};
use crate::ops::Operation;
use crate::spec::InstanceSpec;

/// Magic + version line opening every snapshot.
const MAGIC: &str = "BEAGLE-CKPT v1";

/// How the checkpointed instance was created, so restore can rebuild the
/// same wrapper stack on the same (or an equivalent) resource.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Preference flags the instance was created with.
    pub preferences: Flags,
    /// Requirement flags the instance was created with.
    pub requirements: Flags,
    /// Whether the numerical-rescue wrapper was enabled.
    pub rescue: bool,
    /// The pinned implementation name, when creation bypassed ranking.
    pub implementation: Option<String>,
}

/// A durable snapshot of one instance's replayable state.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Sizing of the instance that wrote the snapshot.
    pub config: InstanceConfig,
    /// How that instance was created.
    pub provenance: Provenance,
    /// The recorded state to replay.
    pub journal: StateJournal,
}

/// FNV-1a 64-bit over `bytes` (hand-rolled; the environment has no digest
/// crates). Not cryptographic — it detects corruption, not tampering.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corrupt(msg: impl Into<String>) -> BeagleError {
    BeagleError::CheckpointCorrupt(msg.into())
}

impl Checkpoint {
    /// Serialize to the versioned text format, hash trailer included.
    pub fn encode(&self) -> String {
        let c = &self.config;
        let mut out = format!(
            "{MAGIC}\nconfig {} {} {} {} {} {} {} {} {}\nprovenance {:x} {:x} {}\n",
            c.tip_count,
            c.partials_buffer_count,
            c.compact_buffer_count,
            c.state_count,
            c.pattern_count,
            c.eigen_buffer_count,
            c.matrix_buffer_count,
            c.category_count,
            c.scale_buffer_count,
            self.provenance.preferences.0,
            self.provenance.requirements.0,
            self.provenance.rescue as u8,
        );
        if let Some(name) = &self.provenance.implementation {
            out.push_str("implementation ");
            out.push_str(name);
            out.push('\n');
        }
        out.push_str("journal\n");
        self.journal.encode_into(&mut out);
        out.push_str("end\n");
        let hash = fnv1a64(out.as_bytes());
        out.push_str(&format!("hash {hash:016x}\n"));
        out
    }

    /// Parse and validate a snapshot. Every validation failure is
    /// [`BeagleError::CheckpointCorrupt`].
    pub fn decode(text: &str) -> Result<Self> {
        // The hash line covers everything before it, so find and verify it
        // before parsing anything else.
        let body_end = text
            .rfind("\nhash ")
            .ok_or_else(|| corrupt("missing hash trailer"))?
            + 1;
        let (body, trailer) = text.split_at(body_end);
        let stated = trailer
            .strip_prefix("hash ")
            .and_then(|t| u64::from_str_radix(t.trim(), 16).ok())
            .ok_or_else(|| corrupt("malformed hash trailer"))?;
        let actual = fnv1a64(body.as_bytes());
        if stated != actual {
            return Err(corrupt(format!(
                "hash mismatch: snapshot says {stated:016x}, content hashes to {actual:016x}"
            )));
        }

        let mut lines = body.lines();
        if lines.next() != Some(MAGIC) {
            return Err(corrupt(format!("bad magic (expected \"{MAGIC}\")")));
        }
        let config_line = lines
            .next()
            .ok_or_else(|| corrupt("truncated before config"))?;
        let fields: Vec<usize> = config_line
            .strip_prefix("config ")
            .ok_or_else(|| corrupt("missing config line"))?
            .split_ascii_whitespace()
            .map(|t| t.parse().map_err(|_| corrupt("bad config field")))
            .collect::<Result<_>>()?;
        let [tips, partials, compact, states, patterns, eigen, matrices, categories, scales] =
            fields[..]
        else {
            return Err(corrupt(format!(
                "config needs 9 fields, got {}",
                fields.len()
            )));
        };
        let config = InstanceConfig {
            tip_count: tips,
            partials_buffer_count: partials,
            compact_buffer_count: compact,
            state_count: states,
            pattern_count: patterns,
            eigen_buffer_count: eigen,
            matrix_buffer_count: matrices,
            category_count: categories,
            scale_buffer_count: scales,
        };
        config
            .validate()
            .map_err(|e| corrupt(format!("config fails validation: {e}")))?;

        let prov_line = lines
            .next()
            .ok_or_else(|| corrupt("truncated before provenance"))?;
        let mut prov_tok = prov_line
            .strip_prefix("provenance ")
            .ok_or_else(|| corrupt("missing provenance line"))?
            .split_ascii_whitespace();
        let mut flag_bits = || -> Result<Flags> {
            prov_tok
                .next()
                .and_then(|t| u64::from_str_radix(t, 16).ok())
                .map(Flags)
                .ok_or_else(|| corrupt("bad provenance flags"))
        };
        let preferences = flag_bits()?;
        let requirements = flag_bits()?;
        let rescue = match prov_tok.next() {
            Some("0") => false,
            Some("1") => true,
            _ => return Err(corrupt("bad provenance rescue field")),
        };

        let mut implementation = None;
        let mut line = lines
            .next()
            .ok_or_else(|| corrupt("truncated before journal"))?;
        if let Some(name) = line.strip_prefix("implementation ") {
            implementation = Some(name.to_string());
            line = lines
                .next()
                .ok_or_else(|| corrupt("truncated before journal"))?;
        }
        if line != "journal" {
            return Err(corrupt("missing journal section"));
        }
        let mut journal_lines = Vec::new();
        let mut terminated = false;
        for l in lines {
            if l == "end" {
                terminated = true;
                break;
            }
            journal_lines.push(l);
        }
        if !terminated {
            return Err(corrupt("journal section not terminated by \"end\""));
        }
        let journal = StateJournal::decode_lines(&journal_lines).map_err(corrupt)?;
        Ok(Checkpoint {
            config,
            provenance: Provenance {
                preferences,
                requirements,
                rescue,
                implementation,
            },
            journal,
        })
    }

    /// Write the snapshot to `path` durably: the bytes land in a temporary
    /// sibling file first and are renamed into place, so a crash mid-write
    /// cannot leave a half-written snapshot under the final name.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let io = |e: std::io::Error| BeagleError::CheckpointIo(format!("{}: {e}", path.display()));
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        std::fs::write(&tmp, self.encode()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Read and validate a snapshot from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| BeagleError::CheckpointIo(format!("{}: {e}", path.display())))?;
        Self::decode(&text)
    }

    /// Rebuild a live instance from this snapshot on `manager`: re-create
    /// with the recorded sizing and provenance, replay the journal into it,
    /// and hand back a [`CheckpointedInstance`] already carrying the
    /// journal — so the restored instance can itself checkpoint again.
    pub fn restore(&self, manager: &ImplementationManager) -> Result<CheckpointedInstance> {
        let mut spec = InstanceSpec::with_config(self.config)
            .prefer(self.provenance.preferences)
            .require(self.provenance.requirements);
        spec.rescue = self.provenance.rescue;
        if let Some(name) = &self.provenance.implementation {
            spec = spec.named(name.clone());
        }
        let mut inner = manager.create_from_spec(&spec)?;
        self.journal
            .replay_slice(inner.as_mut(), &self.config, 0, self.config.pattern_count)?;
        let mut wrapped = CheckpointedInstance::with_journal(
            inner,
            self.config,
            self.provenance.clone(),
            self.journal.clone(),
        );
        wrapped.recorder.event(EventKind::CheckpointRestored, || {
            format!(
                "config={}x{} ops={} rescue={}",
                self.config.tip_count,
                self.config.pattern_count,
                self.journal.operations().len(),
                self.provenance.rescue
            )
        });
        Ok(wrapped)
    }
}

/// The journaling wrapper behind [`crate::InstanceSpec::checkpointed`]:
/// records every mutating call in a [`StateJournal`] and snapshots it (with
/// sizing and provenance) on [`BeagleInstance::checkpoint`]. All calls are
/// forwarded unchanged, so wrapping is semantically invisible.
pub struct CheckpointedInstance {
    inner: Box<dyn BeagleInstance>,
    config: InstanceConfig,
    provenance: Provenance,
    journal: StateJournal,
    recorder: Recorder,
}

impl CheckpointedInstance {
    /// Wrap `inner`, journaling from a clean slate.
    pub fn new(
        inner: Box<dyn BeagleInstance>,
        config: InstanceConfig,
        provenance: Provenance,
    ) -> Self {
        Self::with_journal(inner, config, provenance, StateJournal::new())
    }

    /// Wrap `inner` with pre-seeded state (the restore path: the journal of
    /// the snapshot being restored).
    pub fn with_journal(
        inner: Box<dyn BeagleInstance>,
        config: InstanceConfig,
        provenance: Provenance,
        journal: StateJournal,
    ) -> Self {
        let recorder = Recorder::new(inner.statistics().is_some());
        Self {
            inner,
            config,
            provenance,
            journal,
            recorder,
        }
    }

    /// The wrapped instance (checkpoint bookkeeping is discarded).
    pub fn into_inner(self) -> Box<dyn BeagleInstance> {
        self.inner
    }
}

impl BeagleInstance for CheckpointedInstance {
    fn details(&self) -> &InstanceDetails {
        self.inner.details()
    }

    fn config(&self) -> &InstanceConfig {
        self.inner.config()
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        self.journal.record_tip_states(tip, states);
        self.inner.set_tip_states(tip, states)
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        self.journal.record_tip_partials(tip, partials);
        self.inner.set_tip_partials(tip, partials)
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        self.journal.record_partials(buffer, partials);
        self.inner.set_partials(buffer, partials)
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        self.inner.get_partials(buffer)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        self.journal.record_pattern_weights(weights);
        self.inner.set_pattern_weights(weights)
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.journal.record_frequencies(index, frequencies);
        self.inner.set_state_frequencies(index, frequencies)
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.journal.record_category_rates(rates);
        self.inner.set_category_rates(rates)
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.journal.record_category_weights(index, weights);
        self.inner.set_category_weights(index, weights)
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.journal
            .record_eigen(index, vectors, inverse_vectors, values);
        self.inner
            .set_eigen_decomposition(index, vectors, inverse_vectors, values)
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.journal
            .record_matrix_updates(eigen_index, matrix_indices, branch_lengths);
        self.inner
            .update_transition_matrices(eigen_index, matrix_indices, branch_lengths)
    }

    fn update_transition_derivatives(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        d1_indices: &[usize],
        d2_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        // Derivative matrices are scratch outputs for branch optimization;
        // the primary matrices are journaled above, which is what replay
        // needs.
        self.journal
            .record_matrix_updates(eigen_index, matrix_indices, branch_lengths);
        self.inner.update_transition_derivatives(
            eigen_index,
            matrix_indices,
            d1_indices,
            d2_indices,
            branch_lengths,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn integrate_edge_derivatives(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        d1_matrix: BufferId,
        d2_matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<(f64, f64, f64)> {
        self.inner.integrate_edge_derivatives(
            parent,
            child,
            matrix,
            d1_matrix,
            d2_matrix,
            category_weights,
            frequencies,
            scaling,
        )
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.journal.record_matrix(index, matrix);
        self.inner.set_transition_matrix(index, matrix)
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.inner.get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        self.journal.record_operations(operations);
        self.inner.update_partials(operations)
    }

    fn update_partials_by_levels(&mut self, levels: &[Vec<Operation>]) -> Result<()> {
        for level in levels {
            self.journal.record_operations(level);
        }
        self.inner.update_partials_by_levels(levels)
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        self.journal.record_scale_reset(cumulative);
        self.inner.reset_scale_factors(cumulative)
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        self.journal
            .record_scale_accumulation(scale_indices, cumulative);
        self.inner
            .accumulate_scale_factors(scale_indices, cumulative)
    }

    fn integrate_root(
        &mut self,
        root: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        self.inner
            .integrate_root(root, category_weights, frequencies, scaling)
    }

    fn integrate_edge(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        self.inner.integrate_edge(
            parent,
            child,
            matrix,
            category_weights,
            frequencies,
            scaling,
        )
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        self.inner.get_site_log_likelihoods()
    }

    fn wait_for_computation(&mut self) -> Result<()> {
        self.inner.wait_for_computation()
    }

    fn simulated_time(&self) -> Option<std::time::Duration> {
        self.inner.simulated_time()
    }

    fn peek_simulated_time(&self) -> Option<std::time::Duration> {
        self.inner.peek_simulated_time()
    }

    fn reset_simulated_time(&mut self) {
        self.inner.reset_simulated_time()
    }

    fn queue_stats(&self) -> Option<crate::queue::QueueStats> {
        self.inner.queue_stats()
    }

    fn statistics(&self) -> Option<obs::InstanceStats> {
        let mut stats = self.inner.statistics()?;
        if let Some(own) = self.recorder.stats() {
            stats.merge(&own);
        }
        Some(stats)
    }

    fn take_journal(&mut self) -> Vec<obs::Event> {
        obs::merge_journals(self.inner.take_journal(), self.recorder.take_journal())
    }

    fn set_deadline(&mut self, deadline: Option<crate::deadline::Deadline>) {
        self.inner.set_deadline(deadline);
    }

    fn checkpoint(&mut self) -> Option<Checkpoint> {
        // Inner layers with pending work (an operation queue) flush on this
        // forward; their own snapshot is discarded in favour of ours, which
        // covers the whole stack.
        self.inner.checkpoint();
        let ckpt = Checkpoint {
            config: self.config,
            provenance: self.provenance.clone(),
            journal: self.journal.clone(),
        };
        self.recorder.event(EventKind::CheckpointSaved, || {
            format!(
                "config={}x{} ops={}",
                self.config.tip_count,
                self.config.pattern_count,
                self.journal.operations().len()
            )
        });
        Some(ckpt)
    }

    fn set_incremental(&mut self, enabled: bool) {
        self.inner.set_incremental(enabled);
    }

    fn memo_stats(&self) -> Option<crate::memo::MemoStats> {
        self.inner.memo_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut journal = StateJournal::new();
        journal.record_tip_states(0, &[0, 1, 2, 3]);
        journal.record_tip_states(1, &[3, 2, 1, 0]);
        journal.record_pattern_weights(&[1.0, 2.0, 1.0, 1.0]);
        journal.record_frequencies(0, &[0.25; 4]);
        journal.record_operations(&[Operation::new(2, 0, 0, 1, 1)]);
        Checkpoint {
            config: InstanceConfig::for_tree(2, 4, 4, 1),
            provenance: Provenance {
                preferences: Flags::PROCESSOR_CPU | Flags::COMPUTATION_ASYNCH,
                requirements: Flags::PRECISION_DOUBLE,
                rescue: true,
                implementation: Some("CPU with spaces".into()),
            },
            journal,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = sample();
        let text = ckpt.encode();
        let back = Checkpoint::decode(&text).unwrap();
        assert_eq!(back.config, ckpt.config);
        assert_eq!(back.provenance, ckpt.provenance);
        assert_eq!(back.encode(), text, "re-encode is byte-identical");
    }

    #[test]
    fn no_implementation_line_when_unpinned() {
        let mut ckpt = sample();
        ckpt.provenance.implementation = None;
        let text = ckpt.encode();
        assert!(!text.contains("implementation"));
        let back = Checkpoint::decode(&text).unwrap();
        assert_eq!(back.provenance.implementation, None);
    }

    #[test]
    fn corruption_is_detected_not_replayed() {
        let text = sample().encode();
        // Flip one byte in the journal body.
        let idx = text.find("tip_states").unwrap();
        let mut bad = text.clone().into_bytes();
        bad[idx + 12] ^= 0x01;
        let err = Checkpoint::decode(std::str::from_utf8(&bad).unwrap());
        assert!(
            matches!(err, Err(BeagleError::CheckpointCorrupt(ref m)) if m.contains("hash")),
            "{err:?}"
        );
        // Truncation loses the trailer.
        let err = Checkpoint::decode(&text[..text.len() / 2]);
        assert!(
            matches!(err, Err(BeagleError::CheckpointCorrupt(_))),
            "{err:?}"
        );
        // Wrong magic.
        let err = Checkpoint::decode(&text.replace("BEAGLE-CKPT v1", "BEAGLE-CKPT v9"));
        assert!(
            matches!(err, Err(BeagleError::CheckpointCorrupt(_))),
            "{err:?}"
        );
        // A forged hash over tampered content still mismatches.
        let tampered = text.replace("provenance", "provenance ");
        let err = Checkpoint::decode(&tampered);
        assert!(
            matches!(err, Err(BeagleError::CheckpointCorrupt(_))),
            "{err:?}"
        );
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "beagle-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.ckpt");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.encode(), ckpt.encode());
        assert!(
            !dir.join("snap.ckpt.tmp").exists(),
            "temporary file renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_not_corruption() {
        let err = Checkpoint::load("/nonexistent/beagle-nowhere.ckpt");
        assert!(matches!(err, Err(BeagleError::CheckpointIo(_))), "{err:?}");
    }
}
