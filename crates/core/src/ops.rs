//! Partial-likelihood operation descriptors.
//!
//! `update_partials` takes a list of these, in an order the client guarantees
//! to be dependency-safe (children before parents — i.e. post-order). The
//! threading back-ends additionally analyse the list for operations that are
//! *independent* of each other and may run concurrently (the paper's
//! "futures" model).

/// One partial-likelihoods evaluation:
/// `partials[destination] = (M[matrix1] · partials[child1]) ⊙ (M[matrix2] · partials[child2])`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Operation {
    /// Partials buffer written.
    pub destination: usize,
    /// If `Some(s)`, rescale the freshly computed partials and write the
    /// per-pattern log scale factors to scale buffer `s`.
    pub dest_scale_write: Option<usize>,
    /// First child partials buffer (may be a compact tip-state buffer).
    pub child1: usize,
    /// Transition matrix for the child-1 branch.
    pub child1_matrix: usize,
    /// Second child partials buffer.
    pub child2: usize,
    /// Transition matrix for the child-2 branch.
    pub child2_matrix: usize,
}

impl Operation {
    /// Convenience constructor for the common unscaled case.
    pub fn new(
        destination: usize,
        child1: usize,
        child1_matrix: usize,
        child2: usize,
        child2_matrix: usize,
    ) -> Self {
        Self {
            destination,
            dest_scale_write: None,
            child1,
            child1_matrix,
            child2,
            child2_matrix,
        }
    }

    /// Enable rescaling into scale buffer `s`.
    pub fn with_scaling(mut self, s: usize) -> Self {
        self.dest_scale_write = Some(s);
        self
    }
}

/// Group a dependency-ordered operation list into *levels*: all operations in
/// one level are mutually independent (none reads another's destination) and
/// depend only on earlier levels. This is the concurrency structure the
/// futures threading model exploits.
pub fn dependency_levels(operations: &[Operation]) -> Vec<Vec<Operation>> {
    use std::collections::HashMap;
    // level_of[buffer] = earliest level at which the buffer's value is ready.
    let mut level_of: HashMap<usize, usize> = HashMap::new();
    let mut levels: Vec<Vec<Operation>> = Vec::new();
    for &op in operations {
        let dep = |b: &usize| level_of.get(b).map(|&l| l + 1).unwrap_or(0);
        let level = dep(&op.child1).max(dep(&op.child2));
        if level == levels.len() {
            levels.push(Vec::new());
        }
        levels[level].push(op);
        level_of.insert(op.destination, level);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(dest: usize, c1: usize, c2: usize) -> Operation {
        Operation::new(dest, c1, c1, c2, c2)
    }

    #[test]
    fn independent_ops_share_a_level() {
        // Two cherries feeding a root: ops (4 <- 0,1), (5 <- 2,3), (6 <- 4,5)
        let levels = dependency_levels(&[op(4, 0, 1), op(5, 2, 3), op(6, 4, 5)]);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 2);
        assert_eq!(levels[1].len(), 1);
        assert_eq!(levels[1][0].destination, 6);
    }

    #[test]
    fn ladder_is_fully_sequential() {
        // Caterpillar: each op depends on the previous destination.
        let ops = [op(5, 0, 1), op(6, 5, 2), op(7, 6, 3), op(8, 7, 4)];
        let levels = dependency_levels(&ops);
        assert_eq!(levels.len(), 4);
        assert!(levels.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn balanced_tree_has_log_depth() {
        // 8 tips (0..8), internals 8..15 in post-order by pairs.
        let ops = [
            op(8, 0, 1),
            op(9, 2, 3),
            op(10, 4, 5),
            op(11, 6, 7),
            op(12, 8, 9),
            op(13, 10, 11),
            op(14, 12, 13),
        ];
        let levels = dependency_levels(&ops);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].len(), 4);
        assert_eq!(levels[1].len(), 2);
        assert_eq!(levels[2].len(), 1);
    }

    #[test]
    fn scaling_builder() {
        let o = Operation::new(3, 0, 0, 1, 1).with_scaling(7);
        assert_eq!(o.dest_scale_write, Some(7));
    }
}
