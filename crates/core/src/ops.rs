//! Partial-likelihood operation descriptors.
//!
//! `update_partials` takes a list of these, in an order the client guarantees
//! to be dependency-safe (children before parents — i.e. post-order). The
//! threading back-ends additionally analyse the list for operations that are
//! *independent* of each other and may run concurrently (the paper's
//! "futures" model).

/// One partial-likelihoods evaluation:
/// `partials[destination] = (M[matrix1] · partials[child1]) ⊙ (M[matrix2] · partials[child2])`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Operation {
    /// Partials buffer written.
    pub destination: usize,
    /// If `Some(s)`, rescale the freshly computed partials and write the
    /// per-pattern log scale factors to scale buffer `s`.
    pub dest_scale_write: Option<usize>,
    /// First child partials buffer (may be a compact tip-state buffer).
    pub child1: usize,
    /// Transition matrix for the child-1 branch.
    pub child1_matrix: usize,
    /// Second child partials buffer.
    pub child2: usize,
    /// Transition matrix for the child-2 branch.
    pub child2_matrix: usize,
}

impl Operation {
    /// Convenience constructor for the common unscaled case.
    pub fn new(
        destination: usize,
        child1: usize,
        child1_matrix: usize,
        child2: usize,
        child2_matrix: usize,
    ) -> Self {
        Self {
            destination,
            dest_scale_write: None,
            child1,
            child1_matrix,
            child2,
            child2_matrix,
        }
    }

    /// Enable rescaling into scale buffer `s`.
    pub fn with_scaling(mut self, s: usize) -> Self {
        self.dest_scale_write = Some(s);
        self
    }
}

/// Group a dependency-ordered operation list into *levels*: all operations in
/// one level are mutually independent (none reads another's destination) and
/// depend only on earlier levels. This is the concurrency structure the
/// futures threading model exploits.
pub fn dependency_levels(operations: &[Operation]) -> Vec<Vec<Operation>> {
    use std::collections::HashMap;
    // level_of[buffer] = earliest level at which the buffer's value is ready.
    let mut level_of: HashMap<usize, usize> = HashMap::new();
    let mut levels: Vec<Vec<Operation>> = Vec::new();
    for &op in operations {
        let dep = |b: &usize| level_of.get(b).map(|&l| l + 1).unwrap_or(0);
        let level = dep(&op.child1).max(dep(&op.child2));
        if level == levels.len() {
            levels.push(Vec::new());
        }
        levels[level].push(op);
        level_of.insert(op.destination, level);
    }
    levels
}

/// Split a sequential operation list into *hazard-free segments*: within one
/// segment no buffer is written twice (WAW) and no buffer is written after an
/// earlier operation read it (WAR), and no scale buffer is written twice —
/// exactly the conditions under which [`dependency_levels`] scheduling of the
/// segment is equivalent to sequential execution. A single tree traversal is
/// one segment; merged batches of repeated traversals (as an operation queue
/// accumulates across MCMC iterations) split at each rewrite boundary.
pub fn hazard_free_segments(operations: &[Operation]) -> Vec<Vec<Operation>> {
    use std::collections::HashSet;
    let mut segments: Vec<Vec<Operation>> = Vec::new();
    let mut current: Vec<Operation> = Vec::new();
    let mut written: HashSet<usize> = HashSet::new();
    let mut read: HashSet<usize> = HashSet::new();
    let mut scaled: HashSet<usize> = HashSet::new();
    for &op in operations {
        let waw = written.contains(&op.destination);
        let war = read.contains(&op.destination);
        let scale_conflict = op.dest_scale_write.is_some_and(|s| scaled.contains(&s));
        if (waw || war || scale_conflict) && !current.is_empty() {
            segments.push(std::mem::take(&mut current));
            written.clear();
            read.clear();
            scaled.clear();
        }
        written.insert(op.destination);
        read.insert(op.child1);
        read.insert(op.child2);
        if let Some(s) = op.dest_scale_write {
            scaled.insert(s);
        }
        current.push(op);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(dest: usize, c1: usize, c2: usize) -> Operation {
        Operation::new(dest, c1, c1, c2, c2)
    }

    #[test]
    fn independent_ops_share_a_level() {
        // Two cherries feeding a root: ops (4 <- 0,1), (5 <- 2,3), (6 <- 4,5)
        let levels = dependency_levels(&[op(4, 0, 1), op(5, 2, 3), op(6, 4, 5)]);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 2);
        assert_eq!(levels[1].len(), 1);
        assert_eq!(levels[1][0].destination, 6);
    }

    #[test]
    fn ladder_is_fully_sequential() {
        // Caterpillar: each op depends on the previous destination.
        let ops = [op(5, 0, 1), op(6, 5, 2), op(7, 6, 3), op(8, 7, 4)];
        let levels = dependency_levels(&ops);
        assert_eq!(levels.len(), 4);
        assert!(levels.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn balanced_tree_has_log_depth() {
        // 8 tips (0..8), internals 8..15 in post-order by pairs.
        let ops = [
            op(8, 0, 1),
            op(9, 2, 3),
            op(10, 4, 5),
            op(11, 6, 7),
            op(12, 8, 9),
            op(13, 10, 11),
            op(14, 12, 13),
        ];
        let levels = dependency_levels(&ops);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].len(), 4);
        assert_eq!(levels[1].len(), 2);
        assert_eq!(levels[2].len(), 1);
    }

    #[test]
    fn scaling_builder() {
        let o = Operation::new(3, 0, 0, 1, 1).with_scaling(7);
        assert_eq!(o.dest_scale_write, Some(7));
    }

    #[test]
    fn empty_list_has_no_levels() {
        assert!(dependency_levels(&[]).is_empty());
        assert!(hazard_free_segments(&[]).is_empty());
    }

    #[test]
    fn single_chain_is_one_op_per_level() {
        let ops = [op(2, 0, 1), op(3, 2, 1), op(4, 3, 0)];
        let levels = dependency_levels(&ops);
        assert_eq!(levels.len(), 3);
        for (i, level) in levels.iter().enumerate() {
            assert_eq!(level.len(), 1);
            assert_eq!(level[0], ops[i]);
        }
    }

    #[test]
    fn diamond_dependencies_meet_at_the_join() {
        // One shared child feeds two independent parents which then join:
        //   4 <- (0,1), 5 <- (4,2), 6 <- (4,3), 7 <- (5,6).
        let ops = [op(4, 0, 1), op(5, 4, 2), op(6, 4, 3), op(7, 5, 6)];
        let levels = dependency_levels(&ops);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![ops[0]]);
        assert_eq!(
            levels[1],
            vec![ops[1], ops[2]],
            "both diamond arms share a level"
        );
        assert_eq!(levels[2], vec![ops[3]]);
    }

    #[test]
    fn scaling_indices_do_not_affect_leveling() {
        let plain = [op(4, 0, 1), op(5, 2, 3), op(6, 4, 5)];
        let scaled: Vec<Operation> = plain
            .iter()
            .map(|o| o.with_scaling(o.destination))
            .collect();
        let lp = dependency_levels(&plain);
        let ls = dependency_levels(&scaled);
        assert_eq!(lp.len(), ls.len());
        for (a, b) in lp.iter().zip(&ls) {
            let da: Vec<usize> = a.iter().map(|o| o.destination).collect();
            let db: Vec<usize> = b.iter().map(|o| o.destination).collect();
            assert_eq!(da, db);
        }
        // And the scale targets survive scheduling untouched.
        assert_eq!(ls[1][0].dest_scale_write, Some(6));
    }

    #[test]
    fn single_traversal_is_one_hazard_free_segment() {
        let ops = [op(4, 0, 1), op(5, 2, 3), op(6, 4, 5)];
        let segments = hazard_free_segments(&ops);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0], ops.to_vec());
    }

    #[test]
    fn repeated_traversals_split_at_rewrite_boundaries() {
        // The same traversal queued twice: the second rewrite of buffer 4 is
        // a WAW hazard and must start a new segment.
        let t = [op(4, 0, 1), op(5, 2, 3), op(6, 4, 5)];
        let merged: Vec<Operation> = t.iter().chain(t.iter()).copied().collect();
        let segments = hazard_free_segments(&merged);
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0], t.to_vec());
        assert_eq!(segments[1], t.to_vec());
    }

    #[test]
    fn write_after_read_splits_a_segment() {
        // op reads buffer 4, then a later op overwrites 4: scheduling both in
        // one leveled batch could reorder them, so they must split.
        let ops = [op(5, 4, 0), op(4, 1, 2)];
        let segments = hazard_free_segments(&ops);
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0][0].destination, 5);
        assert_eq!(segments[1][0].destination, 4);
    }

    #[test]
    fn scale_buffer_reuse_splits_a_segment() {
        // Distinct destinations but the same scale target: the second write
        // to scale buffer 9 starts a new segment.
        let ops = [
            op(4, 0, 1).with_scaling(9),
            op(5, 2, 3).with_scaling(9),
            op(6, 4, 5),
        ];
        let segments = hazard_free_segments(&ops);
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].len(), 1);
        assert_eq!(segments[1].len(), 2);
    }
}
