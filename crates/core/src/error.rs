//! Error type for the BEAGLE-RS API.
//!
//! The C BEAGLE API signals errors through negative return codes
//! (`BEAGLE_ERROR_OUT_OF_RANGE`, …); this is the idiomatic Rust rendering.
//!
//! # Taxonomy
//!
//! The variants fall into four families, and every recovery layer in the
//! workspace keys off the family rather than the individual variant:
//!
//! * **Argument errors** — [`BeagleError::OutOfRange`],
//!   [`BeagleError::DimensionMismatch`], [`BeagleError::InvalidConfiguration`].
//!   The call itself was malformed; retrying it unchanged can never help.
//! * **Capability errors** — [`BeagleError::NoImplementationFound`],
//!   [`BeagleError::Unsupported`]. The registry/implementation cannot do what
//!   was asked. Creation-time fallback chains (`manager`) may route around
//!   them by picking a different implementation, but the *call* is not
//!   retryable.
//! * **Runtime faults** — [`BeagleError::NumericalFailure`] (handled by
//!   numerical rescue, not retry), [`BeagleError::Device`] (transient ones
//!   are retried in place, permanent ones evict the device),
//!   [`BeagleError::ResourceExhausted`] (retryable: memory pressure can
//!   clear), [`BeagleError::Timeout`] (a watchdog cancelled a launch that
//!   exceeded its deadline budget — *evictable but never retryable*:
//!   re-issuing work to a wedged device only burns more of the deadline),
//!   and [`BeagleError::ChildCreationFailed`] (a multi-device creation
//!   failure attributable to one device slot).
//! * **Durability errors** — [`BeagleError::CheckpointCorrupt`] (a snapshot
//!   failed validation: bad magic/version, truncation, or content-hash
//!   mismatch — it must be reported, never silently replayed) and
//!   [`BeagleError::CheckpointIo`] (the filesystem failed while reading or
//!   writing a snapshot).
//!
//! [`BeagleError::is_retryable`] is the single predicate the retry layers
//! consult; the eviction predicate (`multi::is_evictable`) additionally
//! treats permanent device faults and timeouts as grounds for removing a
//! device from a partitioned instance.

use std::fmt;

/// What went wrong on a hardware device (classification mirrors the failure
/// modes of real accelerator runtimes: launch errors, allocation errors, and
/// whole-device loss, plus silent data corruption detected after the fact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceErrorKind {
    /// A kernel launch (or enqueued command) failed.
    LaunchFailed,
    /// A device-memory allocation or host↔device copy failed.
    AllocationFailed,
    /// The device itself is gone (hung, reset, or removed from the bus).
    DeviceLost,
    /// Device results were detected to be corrupted (bad DMA, flaky VRAM).
    MemoryCorruption,
}

impl fmt::Display for DeviceErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeviceErrorKind::LaunchFailed => "kernel launch failed",
            DeviceErrorKind::AllocationFailed => "device allocation failed",
            DeviceErrorKind::DeviceLost => "device lost",
            DeviceErrorKind::MemoryCorruption => "device memory corruption",
        })
    }
}

/// Errors returned by API calls and instance creation.
#[derive(Debug, Clone, PartialEq)]
pub enum BeagleError {
    /// An index was outside its buffer/table range.
    OutOfRange {
        /// Which kind of index was out of range (e.g. "partials buffer").
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        limit: usize,
    },
    /// A slice argument had the wrong length.
    DimensionMismatch {
        /// What was being set (e.g. "tip partials").
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Received length.
        got: usize,
    },
    /// Instance configuration itself is invalid (zero patterns, etc.).
    InvalidConfiguration(String),
    /// No registered implementation satisfies the requirement flags.
    NoImplementationFound,
    /// The selected implementation does not support the requested feature.
    /// Carries enough context (including the implementation name where
    /// known) to be actionable from a rescue/failover audit log.
    Unsupported(String),
    /// A floating-point failure surfaced (NaN likelihood without scaling, …).
    NumericalFailure(String),
    /// A hardware device misbehaved. `transient` distinguishes failures
    /// worth retrying in place (a dropped launch) from ones that require
    /// evicting the device (a lost device, persistent corruption).
    Device {
        /// Failure classification.
        kind: DeviceErrorKind,
        /// Whether retrying the same call on the same device may succeed.
        transient: bool,
        /// Name of the device that failed.
        device: String,
    },
    /// A finite resource (device memory, worker slots) ran out.
    ResourceExhausted {
        /// Which resource was exhausted.
        what: String,
    },
    /// A launch (or other device call) exceeded its deadline budget and was
    /// cancelled by the watchdog. Not retryable — re-issuing work to a
    /// wedged device only burns more of the remaining budget — but
    /// evictable: the failover layer treats it like a permanent fault.
    Timeout {
        /// What was cancelled (site and device).
        what: String,
    },
    /// A durable checkpoint failed validation on restore: missing or
    /// garbled header, unsupported version, truncation, or content-hash
    /// mismatch. The snapshot must not be replayed.
    CheckpointCorrupt(String),
    /// The filesystem failed while reading or writing a checkpoint.
    CheckpointIo(String),
    /// Creating one child of a multi-device instance failed; reports which
    /// device slot and flag selection was responsible.
    ChildCreationFailed {
        /// Index of the child in the device list passed to creation.
        child: usize,
        /// Human-readable description of the (preference, requirement) pair.
        device: String,
        /// The underlying failure.
        source: Box<BeagleError>,
    },
}

impl BeagleError {
    /// Whether retrying the failed call, unchanged, has a chance of
    /// succeeding. True for transient device faults and resource exhaustion
    /// (memory pressure can clear); false for everything else — bad
    /// arguments stay bad, lost devices stay lost, and a [`Self::Timeout`]
    /// means the device is wedged: retrying in place would spend the rest
    /// of the deadline budget on a launch that already failed to finish, so
    /// timeouts go straight to eviction instead.
    pub fn is_retryable(&self) -> bool {
        match self {
            BeagleError::Device { transient, .. } => *transient,
            BeagleError::ResourceExhausted { .. } => true,
            BeagleError::Timeout { .. } => false,
            _ => false,
        }
    }
}

impl fmt::Display for BeagleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeagleError::OutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            BeagleError::DimensionMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what} has length {got}, expected {expected}")
            }
            BeagleError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
            BeagleError::NoImplementationFound => {
                write!(f, "no implementation satisfies the resource requirements")
            }
            BeagleError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            BeagleError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
            BeagleError::Device {
                kind,
                transient,
                device,
            } => {
                let class = if *transient { "transient" } else { "permanent" };
                write!(f, "{class} device error on {device}: {kind}")
            }
            BeagleError::ResourceExhausted { what } => {
                write!(f, "resource exhausted: {what}")
            }
            BeagleError::Timeout { what } => {
                write!(f, "deadline exceeded: {what}")
            }
            BeagleError::CheckpointCorrupt(msg) => {
                write!(f, "corrupt checkpoint: {msg}")
            }
            BeagleError::CheckpointIo(msg) => {
                write!(f, "checkpoint i/o error: {msg}")
            }
            BeagleError::ChildCreationFailed {
                child,
                device,
                source,
            } => {
                write!(f, "creating child {child} ({device}) failed: {source}")
            }
        }
    }
}

impl std::error::Error for BeagleError {}

/// Convenience alias used across all BEAGLE-RS crates.
pub type Result<T> = std::result::Result<T, BeagleError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = BeagleError::OutOfRange {
            what: "partials buffer",
            index: 9,
            limit: 4,
        };
        assert!(e.to_string().contains("partials buffer index 9"));
        let e = BeagleError::DimensionMismatch {
            what: "weights",
            expected: 10,
            got: 3,
        };
        assert!(e.to_string().contains("length 3, expected 10"));
        let e = BeagleError::Device {
            kind: DeviceErrorKind::DeviceLost,
            transient: false,
            device: "Quadro P5000".into(),
        };
        assert!(e
            .to_string()
            .contains("permanent device error on Quadro P5000"));
        let e = BeagleError::ChildCreationFailed {
            child: 2,
            device: "prefs NONE / reqs FRAMEWORK_CUDA".into(),
            source: Box::new(BeagleError::NoImplementationFound),
        };
        assert!(e.to_string().contains("child 2"));
        assert!(e.to_string().contains("FRAMEWORK_CUDA"));
    }

    #[test]
    fn retryability_classification() {
        let transient = BeagleError::Device {
            kind: DeviceErrorKind::LaunchFailed,
            transient: true,
            device: "gpu".into(),
        };
        assert!(transient.is_retryable());
        let permanent = BeagleError::Device {
            kind: DeviceErrorKind::DeviceLost,
            transient: false,
            device: "gpu".into(),
        };
        assert!(!permanent.is_retryable());
        assert!(BeagleError::ResourceExhausted {
            what: "device memory".into()
        }
        .is_retryable());
        assert!(!BeagleError::NoImplementationFound.is_retryable());
        assert!(!BeagleError::NumericalFailure("NaN".into()).is_retryable());
        // A timeout means the device is wedged: never retried in place
        // (the failover layer evicts instead).
        assert!(!BeagleError::Timeout {
            what: "kernel launch on gpu".into()
        }
        .is_retryable());
        assert!(!BeagleError::CheckpointCorrupt("hash mismatch".into()).is_retryable());
        assert!(!BeagleError::CheckpointIo("read failed".into()).is_retryable());
    }

    #[test]
    fn timeout_and_checkpoint_display() {
        let e = BeagleError::Timeout {
            what: "kernel launch on Quadro".into(),
        };
        assert!(e.to_string().contains("deadline exceeded"));
        let e = BeagleError::CheckpointCorrupt("hash mismatch at line 40".into());
        assert!(e.to_string().contains("corrupt checkpoint"));
        let e = BeagleError::CheckpointIo("permission denied".into());
        assert!(e.to_string().contains("checkpoint i/o"));
    }
}
