//! Error type for the BEAGLE-RS API.
//!
//! The C BEAGLE API signals errors through negative return codes
//! (`BEAGLE_ERROR_OUT_OF_RANGE`, …); this is the idiomatic Rust rendering.

use std::fmt;

/// Errors returned by API calls and instance creation.
#[derive(Debug, Clone, PartialEq)]
pub enum BeagleError {
    /// An index was outside its buffer/table range.
    OutOfRange {
        /// Which kind of index was out of range (e.g. "partials buffer").
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        limit: usize,
    },
    /// A slice argument had the wrong length.
    DimensionMismatch {
        /// What was being set (e.g. "tip partials").
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Received length.
        got: usize,
    },
    /// Instance configuration itself is invalid (zero patterns, etc.).
    InvalidConfiguration(String),
    /// No registered implementation satisfies the requirement flags.
    NoImplementationFound,
    /// The selected implementation does not support the requested feature.
    Unsupported(&'static str),
    /// A floating-point failure surfaced (NaN likelihood without scaling, …).
    NumericalFailure(String),
}

impl fmt::Display for BeagleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeagleError::OutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            BeagleError::DimensionMismatch { what, expected, got } => {
                write!(f, "{what} has length {got}, expected {expected}")
            }
            BeagleError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
            BeagleError::NoImplementationFound => {
                write!(f, "no implementation satisfies the resource requirements")
            }
            BeagleError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            BeagleError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for BeagleError {}

/// Convenience alias used across all BEAGLE-RS crates.
pub type Result<T> = std::result::Result<T, BeagleError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = BeagleError::OutOfRange { what: "partials buffer", index: 9, limit: 4 };
        assert!(e.to_string().contains("partials buffer index 9"));
        let e = BeagleError::DimensionMismatch { what: "weights", expected: 10, got: 3 };
        assert!(e.to_string().contains("length 3, expected 10"));
    }
}
