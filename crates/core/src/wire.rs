//! WIRE-v1: the versioned, length-prefixed binary protocol the likelihood
//! service (`crates/server`) speaks over TCP and Unix sockets.
//!
//! Every frame is
//!
//! ```text
//! ┌───────────┬─────────┬────────────┬───────────────┬───────────────┬─────────┐
//! │ magic     │ version │ frame type │ session id    │ payload len   │ payload │
//! │ "BGLW" ×4 │ u8 = 1  │ u8         │ u64 LE        │ u32 LE        │ …       │
//! └───────────┴─────────┴────────────┴───────────────┴───────────────┴─────────┘
//! ```
//!
//! (18 header bytes, then `payload len` payload bytes). All integers are
//! little-endian; every `f64` travels as its IEEE-754 bit pattern
//! ([`f64::to_bits`]), so a likelihood computed remotely is **bit-identical**
//! to the same session evaluated in-process — the differential suites assert
//! exactly that.
//!
//! The decoder is total: truncated, oversized, bad-magic, wrong-version, and
//! malformed frames all come back as a typed [`WireError`], never a panic —
//! a listener must survive a port scanner. Claimed lengths are validated
//! against the bytes actually present *before* any allocation, so a frame
//! that lies about its size cannot allocate gigabytes.

use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

use crate::api::BufferId;
use crate::deadline::Deadline;
use crate::error::{BeagleError, DeviceErrorKind};
use crate::ops::Operation;
use crate::pool::{Lane, SessionRequest};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"BGLW";
/// Protocol version this module encodes and the only one it accepts.
pub const VERSION: u8 = 1;
/// Fixed header size (magic + version + type + session id + payload len).
pub const HEADER_LEN: usize = 4 + 1 + 1 + 8 + 4;
/// Hard cap on a frame's payload. A header claiming more is rejected with
/// [`WireError::Oversized`] before anything is read or allocated.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Nesting bound when decoding recursive [`BeagleError::ChildCreationFailed`]
/// chains: deeper frames are [`WireError::Malformed`], not a stack overflow.
const MAX_ERROR_DEPTH: usize = 8;

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why a frame could not be decoded (or moved over a socket).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte was not [`VERSION`].
    BadVersion(u8),
    /// The frame-type byte maps to no known [`FrameType`].
    UnknownFrameType(u8),
    /// The buffer (or stream) ended before the bytes the frame claimed.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The header claimed a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Claimed payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// Structurally invalid payload (bad tag, bad UTF-8, trailing bytes…).
    Malformed(&'static str),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// An OS-level socket failure, stringly (keeps the type `Clone + Eq`).
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: payload {len} exceeds cap {max}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Frame types and bodies.
// ---------------------------------------------------------------------------

/// The frame-type byte. Client→server: `Submit`, `StatsRequest`, `Drain`.
/// Server→client: everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// A likelihood session to evaluate.
    Submit = 1,
    /// The session's root log-likelihood (bit pattern).
    Result = 2,
    /// The server refused the session without queueing it.
    Busy = 3,
    /// The session ran and failed; carries the typed [`BeagleError`].
    Error = 4,
    /// Ask for a [`FrameType::Stats`] snapshot.
    StatsRequest = 5,
    /// JSON snapshot: server counters + pool stats + kernels + health.
    Stats = 6,
    /// Ask the server to drain: finish in-flight work, then shut down.
    Drain = 7,
    /// Drain finished; reports whether every queued session completed.
    DrainAck = 8,
}

impl FrameType {
    fn from_u8(byte: u8) -> Result<Self, WireError> {
        Ok(match byte {
            1 => FrameType::Submit,
            2 => FrameType::Result,
            3 => FrameType::Busy,
            4 => FrameType::Error,
            5 => FrameType::StatsRequest,
            6 => FrameType::Stats,
            7 => FrameType::Drain,
            8 => FrameType::DrainAck,
            other => return Err(WireError::UnknownFrameType(other)),
        })
    }
}

/// Why the server answered [`Frame::Busy`] instead of queueing a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum BusyReason {
    /// This client already has its maximum number of sessions in flight.
    ClientCap = 0,
    /// The pool's bounded queue was full ([`crate::pool::PoolError::Full`]).
    PoolFull = 1,
    /// The server is draining and accepts no new work.
    Draining = 2,
}

impl BusyReason {
    fn from_u8(byte: u8) -> Result<Self, WireError> {
        Ok(match byte {
            0 => BusyReason::ClientCap,
            1 => BusyReason::PoolFull,
            2 => BusyReason::Draining,
            _ => return Err(WireError::Malformed("unknown busy reason")),
        })
    }
}

impl fmt::Display for BusyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BusyReason::ClientCap => "per-client in-flight cap reached",
            BusyReason::PoolFull => "pool queue full",
            BusyReason::Draining => "server draining",
        })
    }
}

/// A decoded frame body. The session id travels in the header (see
/// [`read_frame`] / [`write_frame`]), not here.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Evaluate `session` on `lane`.
    Submit {
        /// Scheduling lane for the embedded pool.
        lane: Lane,
        /// The self-contained session (its optional per-request
        /// [`SessionRequest::deadline`] rides along). Boxed so the frame
        /// enum stays small for the common response variants.
        session: Box<SessionRequest>,
    },
    /// Root log-likelihood, bit-exact.
    Result(f64),
    /// Session refused; retry later (or elsewhere).
    Busy(BusyReason),
    /// Session failed with a typed library error.
    Error(BeagleError),
    /// Request a stats snapshot.
    StatsRequest,
    /// Stats snapshot as a JSON document.
    Stats(String),
    /// Request a graceful drain.
    Drain,
    /// Drain completed. `drained` is false if the drain deadline expired
    /// with sessions still queued (their clients got [`Frame::Error`]s).
    DrainAck {
        /// Did every accepted session finish?
        drained: bool,
    },
}

impl Frame {
    /// The type byte this body encodes as.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Submit { .. } => FrameType::Submit,
            Frame::Result(_) => FrameType::Result,
            Frame::Busy(_) => FrameType::Busy,
            Frame::Error(_) => FrameType::Error,
            Frame::StatsRequest => FrameType::StatsRequest,
            Frame::Stats(_) => FrameType::Stats,
            Frame::Drain => FrameType::Drain,
            Frame::DrainAck { .. } => FrameType::DrainAck,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_vec_f64(buf: &mut Vec<u8>, v: &[f64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_f64(buf, x);
    }
}

fn put_vec_u32(buf: &mut Vec<u8>, v: &[u32]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_u32(buf, x);
    }
}

fn encode_session(buf: &mut Vec<u8>, s: &SessionRequest) {
    put_u32(buf, s.tip_states.len() as u32);
    for tip in &s.tip_states {
        put_vec_u32(buf, tip);
    }
    put_vec_f64(buf, &s.pattern_weights);
    put_vec_f64(buf, &s.category_rates);
    put_vec_f64(buf, &s.category_weights);
    put_vec_f64(buf, &s.frequencies);
    match &s.eigen {
        Some((vectors, inverse, values)) => {
            buf.push(1);
            put_vec_f64(buf, vectors);
            put_vec_f64(buf, inverse);
            put_vec_f64(buf, values);
        }
        None => buf.push(0),
    }
    put_u32(buf, s.matrices.len() as u32);
    for &(index, length) in &s.matrices {
        put_u64(buf, index as u64);
        put_f64(buf, length);
    }
    put_u32(buf, s.operations.len() as u32);
    for op in &s.operations {
        put_u64(buf, op.destination as u64);
        match op.dest_scale_write {
            Some(scale) => {
                buf.push(1);
                put_u64(buf, scale as u64);
            }
            None => {
                buf.push(0);
                put_u64(buf, 0);
            }
        }
        put_u64(buf, op.child1 as u64);
        put_u64(buf, op.child1_matrix as u64);
        put_u64(buf, op.child2 as u64);
        put_u64(buf, op.child2_matrix as u64);
    }
    put_u64(buf, s.root.0 as u64);
    buf.push(s.scaled as u8);
    // Deadline budget in microseconds; 0 means "no per-request deadline"
    // (a zero-budget deadline is not representable on the wire — it would
    // cancel every call anyway).
    put_u64(buf, s.deadline.map_or(0, |d| d.budget().as_micros() as u64));
}

fn encode_error(buf: &mut Vec<u8>, e: &BeagleError) {
    match e {
        BeagleError::OutOfRange { what, index, limit } => {
            buf.push(0);
            put_str(buf, what);
            put_u64(buf, *index as u64);
            put_u64(buf, *limit as u64);
        }
        BeagleError::DimensionMismatch {
            what,
            expected,
            got,
        } => {
            buf.push(1);
            put_str(buf, what);
            put_u64(buf, *expected as u64);
            put_u64(buf, *got as u64);
        }
        BeagleError::InvalidConfiguration(msg) => {
            buf.push(2);
            put_str(buf, msg);
        }
        BeagleError::NoImplementationFound => buf.push(3),
        BeagleError::Unsupported(msg) => {
            buf.push(4);
            put_str(buf, msg);
        }
        BeagleError::NumericalFailure(msg) => {
            buf.push(5);
            put_str(buf, msg);
        }
        BeagleError::Device {
            kind,
            transient,
            device,
        } => {
            buf.push(6);
            buf.push(match kind {
                DeviceErrorKind::LaunchFailed => 0,
                DeviceErrorKind::AllocationFailed => 1,
                DeviceErrorKind::DeviceLost => 2,
                DeviceErrorKind::MemoryCorruption => 3,
            });
            buf.push(*transient as u8);
            put_str(buf, device);
        }
        BeagleError::ResourceExhausted { what } => {
            buf.push(7);
            put_str(buf, what);
        }
        BeagleError::Timeout { what } => {
            buf.push(8);
            put_str(buf, what);
        }
        BeagleError::CheckpointCorrupt(msg) => {
            buf.push(9);
            put_str(buf, msg);
        }
        BeagleError::CheckpointIo(msg) => {
            buf.push(10);
            put_str(buf, msg);
        }
        BeagleError::ChildCreationFailed {
            child,
            device,
            source,
        } => {
            buf.push(11);
            put_u64(buf, *child as u64);
            put_str(buf, device);
            encode_error(buf, source);
        }
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    match frame {
        Frame::Submit { lane, session } => {
            buf.push(match lane {
                Lane::Interactive => 0,
                Lane::Batch => 1,
            });
            encode_session(&mut buf, session);
        }
        Frame::Result(lnl) => put_f64(&mut buf, *lnl),
        Frame::Busy(reason) => buf.push(*reason as u8),
        Frame::Error(e) => encode_error(&mut buf, e),
        Frame::StatsRequest | Frame::Drain => {}
        Frame::Stats(json) => put_str(&mut buf, json),
        Frame::DrainAck { drained } => buf.push(*drained as u8),
    }
    buf
}

/// Encode one complete frame (header + payload) into a byte vector.
pub fn encode_frame(session_id: u64, frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(frame.frame_type() as u8);
    put_u64(&mut buf, session_id);
    put_u32(&mut buf, payload.len() as u32);
    buf.extend_from_slice(&payload);
    buf
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a byte slice. Every read
/// validates availability first, so decoding cannot panic; length-prefixed
/// collections validate `count × element size ≤ remaining` *before*
/// allocating.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.remaining() < n {
            Err(WireError::Truncated {
                needed: n,
                got: self.remaining(),
            })
        } else {
            Ok(())
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.need(n)?;
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte not 0 or 1")),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed("index exceeds usize"))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length prefix for a collection of `elem_size`-byte elements, checked
    /// against the bytes actually left in the buffer.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        let bytes = count.saturating_mul(elem_size);
        self.need(bytes)?;
        Ok(count)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.len_prefix(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string not UTF-8"))
    }

    fn vec_f64(&mut self) -> Result<Vec<f64>, WireError> {
        let count = self.len_prefix(8)?;
        (0..count).map(|_| self.f64()).collect()
    }

    fn vec_u32(&mut self) -> Result<Vec<u32>, WireError> {
        let count = self.len_prefix(4)?;
        (0..count).map(|_| self.u32()).collect()
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

/// Remote errors arrive with owned strings where the in-process error type
/// holds `&'static str` diagnostics. The strings are tiny (field names like
/// "partials buffer") and error frames are rare, so leaking them restores
/// the exact in-process type; [`MAX_PAYLOAD`] bounds what a hostile peer
/// could make us retain per frame.
fn leak_str(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn decode_error(c: &mut Cursor<'_>, depth: usize) -> Result<BeagleError, WireError> {
    if depth > MAX_ERROR_DEPTH {
        return Err(WireError::Malformed("error chain nested too deep"));
    }
    Ok(match c.u8()? {
        0 => BeagleError::OutOfRange {
            what: leak_str(c.string()?),
            index: c.usize()?,
            limit: c.usize()?,
        },
        1 => BeagleError::DimensionMismatch {
            what: leak_str(c.string()?),
            expected: c.usize()?,
            got: c.usize()?,
        },
        2 => BeagleError::InvalidConfiguration(c.string()?),
        3 => BeagleError::NoImplementationFound,
        4 => BeagleError::Unsupported(c.string()?),
        5 => BeagleError::NumericalFailure(c.string()?),
        6 => {
            let kind = match c.u8()? {
                0 => DeviceErrorKind::LaunchFailed,
                1 => DeviceErrorKind::AllocationFailed,
                2 => DeviceErrorKind::DeviceLost,
                3 => DeviceErrorKind::MemoryCorruption,
                _ => return Err(WireError::Malformed("unknown device error kind")),
            };
            BeagleError::Device {
                kind,
                transient: c.bool()?,
                device: c.string()?,
            }
        }
        7 => BeagleError::ResourceExhausted { what: c.string()? },
        8 => BeagleError::Timeout { what: c.string()? },
        9 => BeagleError::CheckpointCorrupt(c.string()?),
        10 => BeagleError::CheckpointIo(c.string()?),
        11 => BeagleError::ChildCreationFailed {
            child: c.usize()?,
            device: c.string()?,
            source: Box::new(decode_error(c, depth + 1)?),
        },
        _ => return Err(WireError::Malformed("unknown error tag")),
    })
}

fn decode_session(c: &mut Cursor<'_>) -> Result<SessionRequest, WireError> {
    // Tip vectors: at least a 4-byte length each.
    let tips = c.len_prefix(4)?;
    let tip_states = (0..tips)
        .map(|_| c.vec_u32())
        .collect::<Result<Vec<_>, _>>()?;
    let pattern_weights = c.vec_f64()?;
    let category_rates = c.vec_f64()?;
    let category_weights = c.vec_f64()?;
    let frequencies = c.vec_f64()?;
    let eigen = if c.bool()? {
        Some((c.vec_f64()?, c.vec_f64()?, c.vec_f64()?))
    } else {
        None
    };
    let n_matrices = c.len_prefix(16)?;
    let matrices = (0..n_matrices)
        .map(|_| Ok((c.usize()?, c.f64()?)))
        .collect::<Result<Vec<_>, WireError>>()?;
    // 49 bytes per operation: dest + flag + scale + 4 indices.
    let n_ops = c.len_prefix(49)?;
    let operations = (0..n_ops)
        .map(|_| {
            let destination = c.usize()?;
            let has_scale = c.bool()?;
            let scale = c.usize()?;
            Ok(Operation {
                destination,
                dest_scale_write: has_scale.then_some(scale),
                child1: c.usize()?,
                child1_matrix: c.usize()?,
                child2: c.usize()?,
                child2_matrix: c.usize()?,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let root = BufferId(c.usize()?);
    let scaled = c.bool()?;
    let deadline_micros = c.u64()?;
    Ok(SessionRequest {
        tip_states,
        pattern_weights,
        category_rates,
        category_weights,
        frequencies,
        eigen,
        matrices,
        operations,
        root,
        scaled,
        deadline: (deadline_micros > 0)
            .then(|| Deadline::new(Duration::from_micros(deadline_micros))),
    })
}

fn decode_payload(frame_type: FrameType, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor::new(payload);
    let frame = match frame_type {
        FrameType::Submit => {
            let lane = match c.u8()? {
                0 => Lane::Interactive,
                1 => Lane::Batch,
                _ => return Err(WireError::Malformed("unknown lane")),
            };
            Frame::Submit {
                lane,
                session: Box::new(decode_session(&mut c)?),
            }
        }
        FrameType::Result => Frame::Result(c.f64()?),
        FrameType::Busy => Frame::Busy(BusyReason::from_u8(c.u8()?)?),
        FrameType::Error => Frame::Error(decode_error(&mut c, 0)?),
        FrameType::StatsRequest => Frame::StatsRequest,
        FrameType::Stats => Frame::Stats(c.string()?),
        FrameType::Drain => Frame::Drain,
        FrameType::DrainAck => Frame::DrainAck { drained: c.bool()? },
    };
    c.finish()?;
    Ok(frame)
}

/// Parse and validate the 18-byte header. Returns the frame type, session
/// id, and claimed payload length.
pub fn decode_header(header: &[u8]) -> Result<(FrameType, u64, u32), WireError> {
    let mut c = Cursor::new(header);
    let magic = c.take(4)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic([
            magic[0], magic[1], magic[2], magic[3],
        ]));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let frame_type = FrameType::from_u8(c.u8()?)?;
    let session_id = c.u64()?;
    let len = c.u32()?;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok((frame_type, session_id, len))
}

/// Decode one complete frame from the front of `bytes`. Returns the session
/// id, the frame, and the number of bytes consumed (so concatenated frames
/// decode sequentially). Never panics, whatever the input.
pub fn decode_frame(bytes: &[u8]) -> Result<(u64, Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let (frame_type, session_id, len) = decode_header(&bytes[..HEADER_LEN])?;
    let total = HEADER_LEN + len as usize;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    let frame = decode_payload(frame_type, &bytes[HEADER_LEN..total])?;
    Ok((session_id, frame, total))
}

// ---------------------------------------------------------------------------
// Stream I/O.
// ---------------------------------------------------------------------------

fn io_err(e: std::io::Error) -> WireError {
    WireError::Io(e.to_string())
}

/// Read exactly `buf.len()` bytes. `at_boundary` distinguishes a clean EOF
/// before any byte (a closed connection) from one mid-frame (truncation).
fn read_exact_or(
    reader: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated {
                        needed: buf.len(),
                        got: filled,
                    }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(())
}

/// Read one frame from a stream. [`WireError::Closed`] means the peer hung
/// up cleanly between frames; every other error is a real protocol or
/// socket failure.
pub fn read_frame(reader: &mut impl Read) -> Result<(u64, Frame), WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(reader, &mut header, true)?;
    let (frame_type, session_id, len) = decode_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    read_exact_or(reader, &mut payload, false)?;
    Ok((session_id, decode_payload(frame_type, &payload)?))
}

/// Write one frame to a stream and flush it.
pub fn write_frame(
    writer: &mut impl Write,
    session_id: u64,
    frame: &Frame,
) -> Result<(), WireError> {
    let bytes = encode_frame(session_id, frame);
    writer.write_all(&bytes).map_err(io_err)?;
    writer.flush().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> SessionRequest {
        SessionRequest {
            tip_states: vec![vec![0, 1, 2, crate::GAP_STATE], vec![3, 2, 1, 0]],
            pattern_weights: vec![1.0, 2.0, 1.0, 3.0],
            category_rates: vec![0.5, 1.5],
            category_weights: vec![0.5, 0.5],
            frequencies: vec![0.1, 0.2, 0.3, 0.4],
            eigen: Some((vec![1.0; 16], vec![2.0; 16], vec![0.0, -1.0, -2.0, -3.0])),
            matrices: vec![(0, 0.1), (1, 0.25)],
            operations: vec![
                Operation::new(2, 0, 0, 1, 1),
                Operation::new(3, 2, 0, 1, 1).with_scaling(3),
            ],
            root: BufferId(3),
            scaled: true,
            deadline: Some(Deadline::new(Duration::from_millis(250))),
        }
    }

    fn round_trip(frame: &Frame, sid: u64) -> (u64, Frame) {
        let bytes = encode_frame(sid, frame);
        let (got_sid, got, consumed) = decode_frame(&bytes).expect("round trip decodes");
        assert_eq!(consumed, bytes.len(), "frame must consume exactly itself");
        (got_sid, got)
    }

    #[test]
    fn submit_round_trips_bit_exactly() {
        let session = sample_session();
        let (sid, frame) = round_trip(
            &Frame::Submit {
                lane: Lane::Batch,
                session: Box::new(session.clone()),
            },
            42,
        );
        assert_eq!(sid, 42);
        let Frame::Submit { lane, session: got } = frame else {
            panic!("wrong frame type");
        };
        assert_eq!(lane, Lane::Batch);
        assert_eq!(got.tip_states, session.tip_states);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got.pattern_weights), bits(&session.pattern_weights));
        assert_eq!(bits(&got.frequencies), bits(&session.frequencies));
        assert_eq!(
            bits(&got.eigen.as_ref().unwrap().0),
            bits(&session.eigen.as_ref().unwrap().0)
        );
        assert_eq!(got.matrices, session.matrices);
        assert_eq!(got.operations, session.operations);
        assert_eq!(got.root, session.root);
        assert_eq!(got.scaled, session.scaled);
        assert_eq!(
            got.deadline.unwrap().budget(),
            Duration::from_millis(250),
            "per-request deadline must survive the wire"
        );
    }

    #[test]
    fn result_preserves_bit_pattern() {
        // A likelihood with a messy mantissa — the exact bits must survive.
        let lnl = -12345.678901234567_f64;
        let (_, frame) = round_trip(&Frame::Result(lnl), 7);
        let Frame::Result(got) = frame else {
            panic!("wrong frame type");
        };
        assert_eq!(got.to_bits(), lnl.to_bits());
    }

    #[test]
    fn every_error_variant_round_trips() {
        let errors = vec![
            BeagleError::OutOfRange {
                what: "partials buffer",
                index: 9,
                limit: 4,
            },
            BeagleError::DimensionMismatch {
                what: "tip partials",
                expected: 800,
                got: 400,
            },
            BeagleError::InvalidConfiguration("zero patterns".into()),
            BeagleError::NoImplementationFound,
            BeagleError::Unsupported("derivatives on CPU-serial".into()),
            BeagleError::NumericalFailure("NaN at root".into()),
            BeagleError::Device {
                kind: DeviceErrorKind::DeviceLost,
                transient: false,
                device: "Radeon".into(),
            },
            BeagleError::ResourceExhausted {
                what: "device memory".into(),
            },
            BeagleError::Timeout {
                what: "update_partials on Quadro".into(),
            },
            BeagleError::CheckpointCorrupt("hash mismatch".into()),
            BeagleError::CheckpointIo("disk full".into()),
            BeagleError::ChildCreationFailed {
                child: 1,
                device: "prefer=CUDA require=GPU".into(),
                source: Box::new(BeagleError::NoImplementationFound),
            },
        ];
        for e in errors {
            let (_, frame) = round_trip(&Frame::Error(e.clone()), 1);
            let Frame::Error(got) = frame else {
                panic!("wrong frame type");
            };
            assert_eq!(format!("{got}"), format!("{e}"), "error must survive");
        }
    }

    #[test]
    fn admin_frames_round_trip() {
        for (frame, sid) in [
            (Frame::StatsRequest, 1),
            (Frame::Stats("{\"pool\":{}}".into()), 2),
            (Frame::Drain, 3),
            (Frame::DrainAck { drained: true }, 4),
            (Frame::Busy(BusyReason::PoolFull), 5),
        ] {
            let (got_sid, got) = round_trip(&frame, sid);
            assert_eq!(got_sid, sid);
            assert_eq!(got.frame_type(), frame.frame_type());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_frame(1, &Frame::Drain);
        bytes[0] = b'X';
        assert!(matches!(decode_frame(&bytes), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_frame(1, &Frame::Drain);
        bytes[4] = 99;
        assert_eq!(decode_frame(&bytes).unwrap_err(), WireError::BadVersion(99));
    }

    #[test]
    fn unknown_frame_type_is_rejected() {
        let mut bytes = encode_frame(1, &Frame::Drain);
        bytes[5] = 200;
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            WireError::UnknownFrameType(200)
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode_frame(
            11,
            &Frame::Submit {
                lane: Lane::Interactive,
                session: Box::new(sample_session()),
            },
        );
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_claim_is_rejected_before_allocation() {
        let mut bytes = encode_frame(1, &Frame::Drain);
        let huge = (MAX_PAYLOAD + 1).to_le_bytes();
        bytes[14..18].copy_from_slice(&huge);
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            WireError::Oversized {
                len: MAX_PAYLOAD + 1,
                max: MAX_PAYLOAD,
            }
        );
    }

    #[test]
    fn lying_interior_length_cannot_allocate() {
        // A Stats frame whose string claims 4 GiB but whose payload is tiny:
        // the length check must fire before the allocation.
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX);
        payload.extend_from_slice(b"tiny");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(FrameType::Stats as u8);
        put_u64(&mut bytes, 1);
        put_u32(&mut bytes, payload.len() as u32);
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload_and_junk = encode_frame(1, &Frame::DrainAck { drained: false });
        // Grow the declared payload by one junk byte.
        payload_and_junk.push(0xAB);
        let len = 2u32.to_le_bytes();
        payload_and_junk[14..18].copy_from_slice(&len);
        assert_eq!(
            decode_frame(&payload_and_junk).unwrap_err(),
            WireError::Malformed("trailing bytes after payload")
        );
    }

    #[test]
    fn concatenated_frames_decode_sequentially() {
        let mut bytes = encode_frame(1, &Frame::Result(1.5));
        bytes.extend_from_slice(&encode_frame(2, &Frame::Drain));
        let (sid1, _, used) = decode_frame(&bytes).unwrap();
        let (sid2, _, _) = decode_frame(&bytes[used..]).unwrap();
        assert_eq!((sid1, sid2), (1, 2));
    }

    #[test]
    fn stream_round_trip_over_a_buffer() {
        let frame = Frame::Submit {
            lane: Lane::Interactive,
            session: Box::new(sample_session()),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, 9, &frame).unwrap();
        let (sid, got) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(sid, 9);
        assert_eq!(got.frame_type(), FrameType::Submit);
        // A drained stream reports a clean close, not truncation.
        assert_eq!(
            read_frame(&mut [].as_slice()).unwrap_err(),
            WireError::Closed
        );
    }
}
