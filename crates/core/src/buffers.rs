//! Instance data storage, shared by the CPU back-ends.
//!
//! BEAGLE instances act on "flexibly indexed data storage" — numbered
//! partials buffers, compact tip-state buffers, transition matrices, eigen
//! systems, weights, frequencies, and scale factors. This module implements
//! that storage once, generic over precision, together with the non-kernel
//! parts of the API (validated setters/getters). Back-ends own the kernels;
//! they delegate bookkeeping here.
//!
//! Layouts (all row-major, matching the BEAGLE convention):
//! * partials: `[category][pattern][state..state_stride]`
//! * transition matrix: `[category][from_state][to_state..state_stride]`
//! * scale buffers: per-pattern *log* scale factors
//!
//! `state_stride >= state_count` is the padded per-pattern state vector
//! length. [`InstanceBuffers::new`] keeps `state_stride == state_count`
//! (the historical dense layout, used by the accelerator back-ends);
//! [`InstanceBuffers::new_padded`] rounds it up to a SIMD-lane multiple so
//! vector inner loops are remainder-free. Padding lanes hold exact zeros
//! (in partials *and* in every matrix row), so dot products over the full
//! stride equal dot products over the true state count. The padding is
//! invisible at the API boundary: setters pack, getters strip.

use crate::api::InstanceConfig;
use crate::error::{BeagleError, Result};
use crate::real::{narrow_slice, widen_slice, Real};
use crate::GAP_STATE;

/// One stored eigen system, kept in `f64` (matrix exponentiation is done in
/// double precision even for single-precision instances, as BEAGLE does for
/// accuracy; the resulting P matrices are narrowed to `T`).
#[derive(Clone, Debug, Default)]
pub struct EigenSystem {
    /// Row-major right eigenvectors (s×s).
    pub vectors: Vec<f64>,
    /// Row-major inverse eigenvectors (s×s).
    pub inverse_vectors: Vec<f64>,
    /// Eigenvalues (s).
    pub values: Vec<f64>,
}

/// All numbered buffers of one instance.
#[derive(Clone, Debug)]
pub struct InstanceBuffers<T: Real> {
    /// Instance sizing (immutable after creation).
    pub config: InstanceConfig,
    /// Padded per-pattern state vector length (`>= config.state_count`).
    pub state_stride: usize,
    /// Partials buffers; `None` until written. Tips may instead use
    /// `tip_states`.
    pub partials: Vec<Option<Vec<T>>>,
    /// Compact tip states, indexed by partials-buffer id (only `0..tip_count`
    /// may be populated).
    pub tip_states: Vec<Option<Vec<u32>>>,
    /// Transition matrices.
    pub matrices: Vec<Vec<T>>,
    /// Eigen systems.
    pub eigens: Vec<EigenSystem>,
    /// Pattern weights.
    pub pattern_weights: Vec<T>,
    /// Rate-category multipliers.
    pub category_rates: Vec<f64>,
    /// Category-weight buffers.
    pub category_weights: Vec<Vec<T>>,
    /// State-frequency buffers (reuses the eigen buffer count, as BEAGLE does).
    pub frequencies: Vec<Vec<T>>,
    /// Per-pattern log scale factors.
    pub scale_buffers: Vec<Vec<T>>,
    /// Site log-likelihoods from the last root/edge integration.
    pub site_log_likelihoods: Vec<T>,
}

impl<T: Real> InstanceBuffers<T> {
    /// Allocate storage for `config` with the dense layout
    /// (`state_stride == state_count`).
    pub fn new(config: InstanceConfig) -> Result<Self> {
        Self::with_stride(config, config.state_count)
    }

    /// Allocate storage with each pattern's state vector padded to a
    /// multiple of `lanes` (zero-filled padding).
    pub fn new_padded(config: InstanceConfig, lanes: usize) -> Result<Self> {
        let lanes = lanes.max(1);
        Self::with_stride(config, config.state_count.div_ceil(lanes) * lanes)
    }

    fn with_stride(config: InstanceConfig, state_stride: usize) -> Result<Self> {
        config.validate()?;
        debug_assert!(state_stride >= config.state_count);
        let s = config.state_count;
        let padded_matrix_len = config.category_count * s * state_stride;
        // Frequencies are padded to the stride too (with zeros) so root and
        // edge integrations can dot over the full stride.
        let mut freqs = vec![T::ZERO; state_stride];
        freqs[..s].fill(T::from_f64(1.0 / s as f64));
        Ok(Self {
            partials: vec![None; config.partials_buffer_count],
            tip_states: vec![None; config.partials_buffer_count],
            matrices: vec![vec![T::ZERO; padded_matrix_len]; config.matrix_buffer_count],
            eigens: vec![EigenSystem::default(); config.eigen_buffer_count],
            pattern_weights: vec![T::ONE; config.pattern_count],
            category_rates: vec![1.0; config.category_count],
            category_weights: vec![
                vec![
                    T::from_f64(1.0 / config.category_count as f64);
                    config.category_count
                ];
                config.eigen_buffer_count
            ],
            frequencies: vec![freqs; config.eigen_buffer_count],
            scale_buffers: vec![vec![T::ZERO; config.pattern_count]; config.scale_buffer_count],
            site_log_likelihoods: vec![T::ZERO; config.pattern_count],
            config,
            state_stride,
        })
    }

    /// Length of one stored (padded) partials buffer.
    pub fn padded_partials_len(&self) -> usize {
        self.config.category_count * self.config.pattern_count * self.state_stride
    }

    /// Length of one stored (padded) transition matrix.
    pub fn padded_matrix_len(&self) -> usize {
        self.config.category_count * self.config.state_count * self.state_stride
    }

    fn check_index(&self, what: &'static str, index: usize, limit: usize) -> Result<()> {
        if index >= limit {
            Err(BeagleError::OutOfRange { what, index, limit })
        } else {
            Ok(())
        }
    }

    fn check_len(&self, what: &'static str, got: usize, expected: usize) -> Result<()> {
        if got != expected {
            Err(BeagleError::DimensionMismatch {
                what,
                expected,
                got,
            })
        } else {
            Ok(())
        }
    }

    /// Store compact tip states.
    pub fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        self.check_index("tip", tip, self.config.tip_count)?;
        self.check_len("tip states", states.len(), self.config.pattern_count)?;
        for &s in states {
            if s != GAP_STATE && s as usize >= self.config.state_count {
                return Err(BeagleError::OutOfRange {
                    what: "tip state value",
                    index: s as usize,
                    limit: self.config.state_count,
                });
            }
        }
        self.tip_states[tip] = Some(states.to_vec());
        self.partials[tip] = None;
        Ok(())
    }

    /// Store tip partials (`patterns × states`), replicated across categories.
    pub fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        self.check_index("tip", tip, self.config.tip_count)?;
        let per_cat = self.config.pattern_count * self.config.state_count;
        self.check_len("tip partials", partials.len(), per_cat)?;
        let (s, sp) = (self.config.state_count, self.state_stride);
        let mut buf = vec![T::ZERO; self.padded_partials_len()];
        for c in 0..self.config.category_count {
            let cat = &mut buf[c * self.config.pattern_count * sp..];
            for (dst, src) in cat.chunks_exact_mut(sp).zip(partials.chunks_exact(s)) {
                for (d, &x) in dst[..s].iter_mut().zip(src) {
                    *d = T::from_f64(x);
                }
            }
        }
        self.partials[tip] = Some(buf);
        self.tip_states[tip] = None;
        Ok(())
    }

    /// Store a full partials buffer (client layout: dense, unpadded).
    pub fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        self.check_index("partials buffer", buffer, self.config.partials_buffer_count)?;
        self.check_len("partials", partials.len(), self.config.partials_len())?;
        let (s, sp) = (self.config.state_count, self.state_stride);
        if sp == s {
            self.partials[buffer] = Some(narrow_slice(partials));
        } else {
            let mut buf = vec![T::ZERO; self.padded_partials_len()];
            for (dst, src) in buf.chunks_exact_mut(sp).zip(partials.chunks_exact(s)) {
                for (d, &x) in dst[..s].iter_mut().zip(src) {
                    *d = T::from_f64(x);
                }
            }
            self.partials[buffer] = Some(buf);
        }
        Ok(())
    }

    /// Read a partials buffer (dense, unpadded — padding is stripped).
    /// Compact tips are expanded to partials form.
    pub fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        self.check_index("partials buffer", buffer, self.config.partials_buffer_count)?;
        let (s, sp) = (self.config.state_count, self.state_stride);
        if let Some(p) = &self.partials[buffer] {
            if sp == s {
                return Ok(widen_slice(p));
            }
            let mut out = Vec::with_capacity(self.config.partials_len());
            for chunk in p.chunks_exact(sp) {
                out.extend(chunk[..s].iter().map(|x| x.to_f64()));
            }
            return Ok(out);
        }
        if let Some(states) = &self.tip_states[buffer] {
            let (np, nc) = (self.config.pattern_count, self.config.category_count);
            let mut out = vec![0.0; self.config.partials_len()];
            for c in 0..nc {
                for (p, &st) in states.iter().enumerate() {
                    let base = (c * np + p) * s;
                    if st == GAP_STATE {
                        out[base..base + s].fill(1.0);
                    } else {
                        out[base + st as usize] = 1.0;
                    }
                }
            }
            return Ok(out);
        }
        Err(BeagleError::InvalidConfiguration(format!(
            "partials buffer {buffer} has never been written"
        )))
    }

    /// Set pattern weights.
    pub fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        self.check_len("pattern weights", weights.len(), self.config.pattern_count)?;
        self.pattern_weights = narrow_slice(weights);
        Ok(())
    }

    /// Set a frequencies buffer (stored padded to the stride with zeros).
    pub fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.check_index("frequencies buffer", index, self.frequencies.len())?;
        self.check_len("frequencies", frequencies.len(), self.config.state_count)?;
        let mut buf = vec![T::ZERO; self.state_stride];
        for (d, &x) in buf.iter_mut().zip(frequencies) {
            *d = T::from_f64(x);
        }
        self.frequencies[index] = buf;
        Ok(())
    }

    /// Set category rates.
    pub fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.check_len("category rates", rates.len(), self.config.category_count)?;
        self.category_rates = rates.to_vec();
        Ok(())
    }

    /// Set a category-weights buffer.
    pub fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.check_index(
            "category weights buffer",
            index,
            self.category_weights.len(),
        )?;
        self.check_len(
            "category weights",
            weights.len(),
            self.config.category_count,
        )?;
        self.category_weights[index] = narrow_slice(weights);
        Ok(())
    }

    /// Store an eigen system.
    pub fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.check_index("eigen buffer", index, self.eigens.len())?;
        let s = self.config.state_count;
        self.check_len("eigen vectors", vectors.len(), s * s)?;
        self.check_len("inverse eigen vectors", inverse_vectors.len(), s * s)?;
        self.check_len("eigen values", values.len(), s)?;
        self.eigens[index] = EigenSystem {
            vectors: vectors.to_vec(),
            inverse_vectors: inverse_vectors.to_vec(),
            values: values.to_vec(),
        };
        Ok(())
    }

    /// The shared transition-matrix kernel: `P(rate_c · t) = U e^{Λ rate_c t} U⁻¹`
    /// for every listed matrix buffer, computed in `f64` and narrowed to `T`.
    pub fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.check_index("eigen buffer", eigen_index, self.eigens.len())?;
        self.check_len("branch lengths", branch_lengths.len(), matrix_indices.len())?;
        let s = self.config.state_count;
        let eig = self.eigens[eigen_index].clone();
        if eig.values.len() != s {
            return Err(BeagleError::InvalidConfiguration(format!(
                "eigen buffer {eigen_index} has not been set"
            )));
        }
        let sp = self.state_stride;
        for (&m, &t) in matrix_indices.iter().zip(branch_lengths) {
            self.check_index("matrix buffer", m, self.matrices.len())?;
            let rates = self.category_rates.clone();
            let mat = &mut self.matrices[m];
            for (c, &rate) in rates.iter().enumerate() {
                let exps: Vec<f64> = eig.values.iter().map(|&l| (l * rate * t).exp()).collect();
                let block = &mut mat[c * s * sp..(c + 1) * s * sp];
                for i in 0..s {
                    for j in 0..s {
                        let mut acc = 0.0;
                        for k in 0..s {
                            acc +=
                                eig.vectors[i * s + k] * exps[k] * eig.inverse_vectors[k * s + j];
                        }
                        // Round-off can leave tiny negatives; clamp so the
                        // likelihood kernels only ever see probabilities.
                        block[i * sp + j] = T::from_f64(acc.max(0.0));
                    }
                    // Padding columns must stay exact zeros.
                    block[i * sp + s..(i + 1) * sp].fill(T::ZERO);
                }
            }
        }
        Ok(())
    }

    /// Transition matrices together with their first and second derivatives
    /// with respect to the branch length — the quantities Newton–Raphson
    /// branch-length optimizers (GARLI, PhyML) request from BEAGLE:
    ///
    /// ```text
    /// P(r·t)      = U e^{Λ r t} U⁻¹
    /// dP/dt       = U (rΛ) e^{Λ r t} U⁻¹
    /// d²P/dt²     = U (rΛ)² e^{Λ r t} U⁻¹
    /// ```
    ///
    /// `d1_indices` / `d2_indices` name the matrix buffers receiving the
    /// derivatives (same `[category][s][s]` layout as probabilities).
    pub fn update_transition_derivatives(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        d1_indices: &[usize],
        d2_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.check_index("eigen buffer", eigen_index, self.eigens.len())?;
        self.check_len("branch lengths", branch_lengths.len(), matrix_indices.len())?;
        self.check_len("d1 indices", d1_indices.len(), matrix_indices.len())?;
        self.check_len("d2 indices", d2_indices.len(), matrix_indices.len())?;
        let s = self.config.state_count;
        let eig = self.eigens[eigen_index].clone();
        if eig.values.len() != s {
            return Err(BeagleError::InvalidConfiguration(format!(
                "eigen buffer {eigen_index} has not been set"
            )));
        }
        for (((&m, &d1), &d2), &t) in matrix_indices
            .iter()
            .zip(d1_indices)
            .zip(d2_indices)
            .zip(branch_lengths)
        {
            for idx in [m, d1, d2] {
                self.check_index("matrix buffer", idx, self.matrices.len())?;
            }
            if m == d1 || m == d2 || d1 == d2 {
                return Err(BeagleError::InvalidConfiguration(
                    "probability and derivative buffers must be distinct".into(),
                ));
            }
            let rates = self.category_rates.clone();
            let sp = self.state_stride;
            for (c, &rate) in rates.iter().enumerate() {
                // Spectral weights for the three matrices.
                let exps: Vec<f64> = eig.values.iter().map(|&l| (l * rate * t).exp()).collect();
                for (order, target) in [(0u32, m), (1, d1), (2, d2)] {
                    let block_start = c * s * sp;
                    for i in 0..s {
                        for j in 0..s {
                            let mut acc = 0.0;
                            for k in 0..s {
                                let w = (rate * eig.values[k]).powi(order as i32);
                                acc += eig.vectors[i * s + k]
                                    * w
                                    * exps[k]
                                    * eig.inverse_vectors[k * s + j];
                            }
                            // Probabilities are clamped; derivatives may be
                            // legitimately negative.
                            let v = if order == 0 { acc.max(0.0) } else { acc };
                            self.matrices[target][block_start + i * sp + j] = T::from_f64(v);
                        }
                        self.matrices[target][block_start + i * sp + s..block_start + (i + 1) * sp]
                            .fill(T::ZERO);
                    }
                }
            }
        }
        Ok(())
    }

    /// Directly set a transition matrix (client layout: dense, unpadded).
    pub fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.check_index("matrix buffer", index, self.matrices.len())?;
        self.check_len("transition matrix", matrix.len(), self.config.matrix_len())?;
        let (s, sp) = (self.config.state_count, self.state_stride);
        if sp == s {
            self.matrices[index] = narrow_slice(matrix);
        } else {
            let mut buf = vec![T::ZERO; self.padded_matrix_len()];
            for (dst, src) in buf.chunks_exact_mut(sp).zip(matrix.chunks_exact(s)) {
                for (d, &x) in dst[..s].iter_mut().zip(src) {
                    *d = T::from_f64(x);
                }
            }
            self.matrices[index] = buf;
        }
        Ok(())
    }

    /// Read back a transition matrix (dense — padding columns stripped).
    pub fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.check_index("matrix buffer", index, self.matrices.len())?;
        let (s, sp) = (self.config.state_count, self.state_stride);
        if sp == s {
            return Ok(widen_slice(&self.matrices[index]));
        }
        let mut out = Vec::with_capacity(self.config.matrix_len());
        for row in self.matrices[index].chunks_exact(sp) {
            out.extend(row[..s].iter().map(|x| x.to_f64()));
        }
        Ok(out)
    }

    /// Zero a cumulative scale buffer.
    pub fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        self.check_index("scale buffer", cumulative, self.scale_buffers.len())?;
        self.scale_buffers[cumulative].fill(T::ZERO);
        Ok(())
    }

    /// `cumulative[p] += Σ_buffers scale[p]` (log-space accumulation).
    pub fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        self.check_index("scale buffer", cumulative, self.scale_buffers.len())?;
        for &s in scale_indices {
            self.check_index("scale buffer", s, self.scale_buffers.len())?;
            if s == cumulative {
                return Err(BeagleError::InvalidConfiguration(
                    "cumulative scale buffer listed among its own inputs".into(),
                ));
            }
        }
        for &sidx in scale_indices {
            // Split borrow: scale_indices != cumulative was checked above.
            let (src, dst) = if sidx < cumulative {
                let (a, b) = self.scale_buffers.split_at_mut(cumulative);
                (&a[sidx], &mut b[0])
            } else {
                let (a, b) = self.scale_buffers.split_at_mut(sidx);
                (&b[0], &mut a[cumulative])
            };
            for (d, &x) in dst.iter_mut().zip(src.iter()) {
                *d += x;
            }
        }
        Ok(())
    }

    /// Validate only the index ranges of one operation (no child-existence
    /// check). Used when a batch is validated up front and earlier
    /// operations in the same batch will produce later operands.
    pub fn check_operation_indices(&self, op: &crate::ops::Operation) -> Result<()> {
        let nb = self.config.partials_buffer_count;
        self.check_index("partials buffer (destination)", op.destination, nb)?;
        self.check_index("partials buffer (child1)", op.child1, nb)?;
        self.check_index("partials buffer (child2)", op.child2, nb)?;
        self.check_index("matrix buffer", op.child1_matrix, self.matrices.len())?;
        self.check_index("matrix buffer", op.child2_matrix, self.matrices.len())?;
        if let Some(s) = op.dest_scale_write {
            self.check_index("scale buffer", s, self.scale_buffers.len())?;
        }
        if op.destination == op.child1 || op.destination == op.child2 {
            return Err(BeagleError::Unsupported(
                "in-place partials operations (destination == child)".into(),
            ));
        }
        Ok(())
    }

    /// Validate the index arguments of a root/edge integration call so
    /// back-ends surface [`BeagleError::OutOfRange`] instead of panicking on
    /// a bad client index.
    pub fn check_integration_indices(
        &self,
        buffer_indices: &[usize],
        matrix_indices: &[usize],
        frequencies_index: usize,
        category_weights_index: usize,
        cumulative_scale: Option<usize>,
    ) -> Result<()> {
        for &b in buffer_indices {
            self.check_index("partials buffer", b, self.partials.len())?;
        }
        for &m in matrix_indices {
            self.check_index("matrix buffer", m, self.matrices.len())?;
        }
        self.check_index(
            "frequencies index",
            frequencies_index,
            self.frequencies.len(),
        )?;
        self.check_index(
            "category weights index",
            category_weights_index,
            self.category_weights.len(),
        )?;
        if let Some(c) = cumulative_scale {
            self.check_index("scale buffer", c, self.scale_buffers.len())?;
        }
        Ok(())
    }

    /// Fallible [`Self::child_operand`] for entry points that take a client
    /// buffer index directly (edge integrations), where no prior
    /// `check_operation` has established the invariant.
    pub fn try_child_operand(&self, buffer: usize) -> Result<ChildOperand<'_, T>> {
        self.check_index("partials buffer", buffer, self.partials.len())?;
        if self.partials[buffer].is_none() && self.tip_states[buffer].is_none() {
            return Err(BeagleError::InvalidConfiguration(format!(
                "operand buffer {buffer} has never been computed"
            )));
        }
        Ok(self.child_operand(buffer))
    }

    /// Validate the indices of one operation before kernels run.
    pub fn check_operation(&self, op: &crate::ops::Operation) -> Result<()> {
        self.check_operation_indices(op)?;
        for child in [op.child1, op.child2] {
            if self.partials[child].is_none() && self.tip_states[child].is_none() {
                return Err(BeagleError::InvalidConfiguration(format!(
                    "operation reads buffer {child} before it was computed"
                )));
            }
        }
        Ok(())
    }

    /// Ensure the destination buffer exists and return the operand views a
    /// partials kernel needs. The destination is taken out of the arena
    /// (std::mem::take) so the children can be borrowed simultaneously;
    /// callers must put it back with [`Self::restore_destination`].
    pub fn take_destination(&mut self, dest: usize) -> Vec<T> {
        let len = self.padded_partials_len();
        match self.partials[dest].take() {
            Some(mut v) => {
                debug_assert_eq!(v.len(), len);
                v.iter_mut().for_each(|x| *x = T::ZERO);
                v
            }
            None => vec![T::ZERO; len],
        }
    }

    /// Return a destination buffer taken with [`Self::take_destination`].
    pub fn restore_destination(&mut self, dest: usize, buf: Vec<T>) {
        self.partials[dest] = Some(buf);
    }

    /// Operand view for one child: either expanded partials or compact states.
    pub fn child_operand(&self, buffer: usize) -> ChildOperand<'_, T> {
        if let Some(p) = &self.partials[buffer] {
            ChildOperand::Partials(p)
        } else if let Some(s) = &self.tip_states[buffer] {
            ChildOperand::States(s)
        } else {
            panic!("operand buffer {buffer} not initialized (check_operation missed it)");
        }
    }
}

/// A child buffer as seen by a partials kernel.
#[derive(Clone, Copy)]
pub enum ChildOperand<'a, T: Real> {
    /// Full partials, `[category][pattern][state]`.
    Partials(&'a [T]),
    /// Compact observed states per pattern (`GAP_STATE` = missing).
    States(&'a [u32]),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> InstanceConfig {
        InstanceConfig::for_tree(4, 10, 4, 2)
    }

    #[test]
    fn allocation_sizes() {
        let b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        assert_eq!(b.partials.len(), 7);
        assert_eq!(b.matrices.len(), 7);
        assert_eq!(b.matrices[0].len(), 2 * 16);
        assert_eq!(b.scale_buffers.len(), 8);
    }

    #[test]
    fn tip_states_validation() {
        let mut b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        assert!(b.set_tip_states(0, &[0; 10]).is_ok());
        assert!(b.set_tip_states(0, &[0; 9]).is_err(), "wrong length");
        assert!(b.set_tip_states(9, &[0; 10]).is_err(), "not a tip");
        assert!(b.set_tip_states(0, &[4; 10]).is_err(), "state out of range");
        assert!(
            b.set_tip_states(0, &[GAP_STATE; 10]).is_ok(),
            "gaps allowed"
        );
    }

    #[test]
    fn tip_partials_replicate_categories() {
        let mut b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        let tp: Vec<f64> = (0..40).map(|x| x as f64).collect();
        b.set_tip_partials(1, &tp).unwrap();
        let got = b.get_partials(1).unwrap();
        assert_eq!(got.len(), 80);
        assert_eq!(&got[..40], &tp[..]);
        assert_eq!(&got[40..], &tp[..]);
    }

    #[test]
    fn compact_tip_expansion() {
        let mut b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        let mut states = vec![2u32; 10];
        states[3] = GAP_STATE;
        b.set_tip_states(0, &states).unwrap();
        let p = b.get_partials(0).unwrap();
        // Pattern 0, category 0: one-hot on state 2.
        assert_eq!(&p[0..4], &[0.0, 0.0, 1.0, 0.0]);
        // Pattern 3: all ones (gap).
        assert_eq!(&p[12..16], &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn unwritten_buffer_read_fails() {
        let b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        assert!(b.get_partials(5).is_err());
    }

    #[test]
    fn transition_matrix_identity_at_zero_branch() {
        let mut b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        // JC69 eigen system computed on the fly: use symmetric decomposition
        // of the JC rate matrix; simplest is to set eigenvectors = identity,
        // values = 0, which yields P = V * I * V^-1 = identity for any t.
        let id: Vec<f64> = (0..16)
            .map(|i| if i % 5 == 0 { 1.0 } else { 0.0 })
            .collect();
        b.set_eigen_decomposition(0, &id, &id, &[0.0; 4]).unwrap();
        b.update_transition_matrices(0, &[2], &[0.7]).unwrap();
        let m = b.get_transition_matrix(2).unwrap();
        for c in 0..2 {
            for i in 0..4 {
                for j in 0..4 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!((m[c * 16 + i * 4 + j] - expect).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn category_rates_scale_branch_lengths() {
        let mut b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        // Eigen system for a two-state-style decay on a 4-state identity
        // basis: values = -1 on all states → P = e^{-rate*t} I + ...
        let id: Vec<f64> = (0..16)
            .map(|i| if i % 5 == 0 { 1.0 } else { 0.0 })
            .collect();
        b.set_eigen_decomposition(0, &id, &id, &[-1.0; 4]).unwrap();
        b.set_category_rates(&[1.0, 2.0]).unwrap();
        b.update_transition_matrices(0, &[0], &[0.5]).unwrap();
        let m = b.get_transition_matrix(0).unwrap();
        assert!(
            (m[0] - (-0.5_f64).exp()).abs() < 1e-12,
            "category 0: e^{{-0.5}}"
        );
        assert!(
            (m[16] - (-1.0_f64).exp()).abs() < 1e-12,
            "category 1: e^{{-1.0}}"
        );
    }

    #[test]
    fn scale_accumulation() {
        let mut b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        b.scale_buffers[0] = vec![1.0; 10];
        b.scale_buffers[1] = vec![0.5; 10];
        b.reset_scale_factors(7).unwrap();
        b.accumulate_scale_factors(&[0, 1], 7).unwrap();
        assert!(b.scale_buffers[7].iter().all(|&x| (x - 1.5).abs() < 1e-12));
        // Accumulating again adds on top.
        b.accumulate_scale_factors(&[0], 7).unwrap();
        assert!(b.scale_buffers[7].iter().all(|&x| (x - 2.5).abs() < 1e-12));
        assert!(
            b.accumulate_scale_factors(&[7], 7).is_err(),
            "self-accumulation"
        );
    }

    #[test]
    fn padded_layout_invisible_at_api() {
        // 3 states padded to 4 lanes: stride 4, one zero pad lane.
        let cfg = InstanceConfig::for_tree(4, 5, 3, 2);
        let mut padded = InstanceBuffers::<f64>::new_padded(cfg, 4).unwrap();
        let mut dense = InstanceBuffers::<f64>::new(cfg).unwrap();
        assert_eq!(padded.state_stride, 4);
        assert_eq!(dense.state_stride, 3);

        // Partials round-trip identically despite the internal padding.
        let p: Vec<f64> = (0..cfg.partials_len())
            .map(|i| 0.1 + i as f64 * 0.01)
            .collect();
        padded.set_partials(4, &p).unwrap();
        dense.set_partials(4, &p).unwrap();
        assert_eq!(padded.get_partials(4).unwrap(), p);
        assert_eq!(
            padded.get_partials(4).unwrap(),
            dense.get_partials(4).unwrap()
        );
        // Internal pad lanes are exact zeros.
        let raw = padded.partials[4].as_ref().unwrap();
        for pat in raw.chunks_exact(4) {
            assert_eq!(pat[3], 0.0);
        }

        // Tip partials replicate and strip the same way.
        let tp: Vec<f64> = (0..15).map(|i| i as f64).collect();
        padded.set_tip_partials(1, &tp).unwrap();
        dense.set_tip_partials(1, &tp).unwrap();
        assert_eq!(
            padded.get_partials(1).unwrap(),
            dense.get_partials(1).unwrap()
        );

        // Transition matrices: derived and direct, dense at the API.
        let id: Vec<f64> = (0..9).map(|i| if i % 4 == 0 { 1.0 } else { 0.0 }).collect();
        padded
            .set_eigen_decomposition(0, &id, &id, &[0.0; 3])
            .unwrap();
        dense
            .set_eigen_decomposition(0, &id, &id, &[0.0; 3])
            .unwrap();
        padded.update_transition_matrices(0, &[2], &[0.7]).unwrap();
        dense.update_transition_matrices(0, &[2], &[0.7]).unwrap();
        assert_eq!(
            padded.get_transition_matrix(2).unwrap(),
            dense.get_transition_matrix(2).unwrap()
        );
        // Pad columns of the stored matrix are exact zeros.
        for row in padded.matrices[2].chunks_exact(4) {
            assert_eq!(row[3], 0.0);
        }
        let m: Vec<f64> = (0..cfg.matrix_len()).map(|i| i as f64 * 0.5).collect();
        padded.set_transition_matrix(3, &m).unwrap();
        assert_eq!(padded.get_transition_matrix(3).unwrap(), m);

        // Frequencies are stored stride-length with zero padding.
        padded.set_state_frequencies(0, &[0.2, 0.3, 0.5]).unwrap();
        assert_eq!(padded.frequencies[0].len(), 4);
        assert_eq!(padded.frequencies[0][3], 0.0);
    }

    #[test]
    fn operation_validation() {
        use crate::ops::Operation;
        let mut b = InstanceBuffers::<f64>::new(cfg()).unwrap();
        b.set_tip_states(0, &[0; 10]).unwrap();
        b.set_tip_states(1, &[1; 10]).unwrap();
        let ok = Operation::new(4, 0, 0, 1, 1);
        assert!(b.check_operation(&ok).is_ok());
        let bad_dest = Operation::new(99, 0, 0, 1, 1);
        assert!(b.check_operation(&bad_dest).is_err());
        let unwritten_child = Operation::new(4, 2, 2, 1, 1);
        assert!(b.check_operation(&unwritten_child).is_err());
    }
}
