//! Capability / preference / requirement flags.
//!
//! Mirrors the `BEAGLE_FLAG_*` bitmask of the C API: a client describes what
//! it *requires* and what it *prefers*, and the implementation manager picks
//! the best matching back-end. Implementations report the flags they actually
//! honoured in [`crate::api::InstanceDetails`].

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// A set of capability flags (bitmask newtype).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags(pub u64);

macro_rules! flags {
    ($($(#[$doc:meta])* $name:ident = $bit:expr;)*) => {
        impl Flags {
            $( $(#[$doc])* pub const $name: Flags = Flags(1 << $bit); )*

            /// Name/value table for formatting.
            const TABLE: &'static [(&'static str, u64)] = &[
                $( (stringify!($name), 1 << $bit), )*
            ];
        }
    };
}

flags! {
    /// Single-precision (f32) computation.
    PRECISION_SINGLE = 0;
    /// Double-precision (f64) computation.
    PRECISION_DOUBLE = 1;
    /// Runs on a conventional CPU.
    PROCESSOR_CPU = 2;
    /// Runs on a GPU device.
    PROCESSOR_GPU = 3;
    /// Runs on a manycore (Xeon Phi class) processor.
    PROCESSOR_PHI = 4;
    /// Uses the (simulated) CUDA framework.
    FRAMEWORK_CUDA = 5;
    /// Uses the (simulated) OpenCL framework.
    FRAMEWORK_OPENCL = 6;
    /// Plain host code, no external framework.
    FRAMEWORK_CPU = 7;
    /// No vectorization.
    VECTOR_NONE = 8;
    /// SSE-style short-vector arithmetic.
    VECTOR_SSE = 9;
    /// Single-threaded execution.
    THREADING_NONE = 10;
    /// C++-threads style: asynchronous futures, one per tree operation.
    THREADING_FUTURES = 11;
    /// C++-threads style: threads created and joined per API call.
    THREADING_THREAD_CREATE = 12;
    /// C++-threads style: persistent thread pool (the paper's winner).
    THREADING_THREAD_POOL = 13;
    /// Manual per-operation rescaling is available.
    SCALING_MANUAL = 14;
    /// Implementation may pad patterns to a work-group multiple.
    PATTERN_PADDING = 15;
    /// Eager execution: every API call runs to completion before returning
    /// (the default). Mutually exclusive with `COMPUTATION_ASYNCH`.
    COMPUTATION_SYNCH = 16;
    /// Deferred execution: mutating calls enqueue onto an operation queue
    /// that is flushed in dependency-level batches when a result is needed.
    /// Handled by the implementation manager (see `crate::queue`), not by
    /// individual back-end factories.
    COMPUTATION_ASYNCH = 17;
    /// AVX2+FMA wide-vector arithmetic (runtime-detected).
    VECTOR_AVX2 = 18;
    /// Collect per-kernel timing/counter statistics and an event journal
    /// for this instance (see `crate::obs`). Handled at creation by the
    /// implementation manager and factories, not a hardware capability.
    INSTANCE_STATS = 19;
    /// Pin this instance to the scalar kernel path, bypassing SIMD
    /// dispatch (A/B comparisons, numerical triage). The typed form of the
    /// `BEAGLE_FORCE_SCALAR` environment variable, which still overrides it
    /// when set (see `crate::spec` for the precedence rules). Handled at
    /// creation like `INSTANCE_STATS`: forwarded to factories, never
    /// ranked or filtered on.
    KERNEL_SCALAR = 20;
}

impl Flags {
    /// The empty flag set.
    pub const NONE: Flags = Flags(0);

    /// True if every bit of `other` is present in `self`.
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is present in `self`.
    pub fn intersects(self, other: Flags) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of set bits (used for preference scoring).
    pub fn bit_count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no flags are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The set difference: every bit of `self` that is not in `other`.
    pub fn without(self, other: Flags) -> Flags {
        Flags(self.0 & !other.0)
    }
}

impl BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

impl BitOrAssign for Flags {
    fn bitor_assign(&mut self, rhs: Flags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Flags {
    type Output = Flags;
    fn bitand(self, rhs: Flags) -> Flags {
        Flags(self.0 & rhs.0)
    }
}

impl fmt::Debug for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "NONE");
        }
        let mut first = true;
        for &(name, bit) in Flags::TABLE {
            if self.0 & bit != 0 {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_intersects() {
        let f = Flags::PROCESSOR_CPU | Flags::PRECISION_DOUBLE;
        assert!(f.contains(Flags::PROCESSOR_CPU));
        assert!(f.contains(Flags::PROCESSOR_CPU | Flags::PRECISION_DOUBLE));
        assert!(!f.contains(Flags::PROCESSOR_GPU));
        assert!(f.intersects(Flags::PROCESSOR_GPU | Flags::PRECISION_DOUBLE));
        assert!(!f.intersects(Flags::PROCESSOR_GPU));
    }

    #[test]
    fn empty_set_behaviour() {
        assert!(Flags::NONE.is_empty());
        assert!(Flags::PROCESSOR_CPU.contains(Flags::NONE));
        assert!(!Flags::NONE.intersects(Flags::PROCESSOR_CPU));
    }

    #[test]
    fn debug_lists_names() {
        let f = Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_GPU;
        let s = format!("{f:?}");
        assert!(s.contains("FRAMEWORK_OPENCL") && s.contains("PROCESSOR_GPU"));
        assert_eq!(format!("{:?}", Flags::NONE), "NONE");
    }

    #[test]
    fn all_flags_distinct() {
        let mut seen = std::collections::HashSet::new();
        for &(_, bit) in Flags::TABLE {
            assert!(seen.insert(bit), "duplicate flag bit {bit}");
        }
    }
}
