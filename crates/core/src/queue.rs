//! Deferred execution: the operation queue and the eigen/matrix cache.
//!
//! BEAGLE's accelerator back-ends get much of their throughput from keeping
//! the device busy: work is queued host-side and launched in whole
//! dependency levels, and repeated MCMC proposals reuse cached
//! eigen-decomposition products instead of re-deriving every transition
//! matrix. [`QueuedInstance`] brings both behaviours to any
//! [`BeagleInstance`]:
//!
//! * **Operation queue** — mutating calls (`set_*`, `update_*`, scale-factor
//!   bookkeeping) enqueue instead of executing. The queue flushes when a
//!   result is demanded (partials/matrix read-back, root/edge integration,
//!   [`BeagleInstance::wait_for_computation`], the simulated clock). At
//!   flush, runs of consecutive `update_partials` calls are merged, split
//!   into hazard-free segments ([`crate::ops::hazard_free_segments`]),
//!   scheduled with [`crate::ops::dependency_levels`], and submitted through
//!   [`BeagleInstance::update_partials_by_levels`] — one batched submission
//!   per level (one simulated stream on accelerators, one pool dispatch on
//!   threaded CPUs).
//! * **Eigen cache** — [`EigenCache`] memoizes the transition matrices
//!   derived from each (eigen system, category rates, branch length)
//!   combination. A cache hit re-installs the exact bytes the back-end
//!   produced last time via `set_transition_matrix`, so queued and eager
//!   execution stay bit-for-bit identical. Entries are invalidated whenever
//!   `set_eigen_decomposition` changes an eigen system's data or
//!   `set_category_rates` changes the rates; invalidation compares the full
//!   f64 bit patterns, never a lossy hash, so stale reuse is unreachable.
//!
//! Execution mode is selected at instance creation:
//! [`crate::Flags::COMPUTATION_ASYNCH`] in the preference or requirement
//! flags makes [`crate::ImplementationManager`] wrap the back-end instance
//! in a `QueuedInstance`; the default (or an explicit
//! [`crate::Flags::COMPUTATION_SYNCH`]) stays eager.
//!
//! Deferred-error semantics: enqueueing never fails, so argument errors
//! (bad index, wrong length) surface at the flush point — the call that
//! demanded the result. A flush aborts at the first error and discards the
//! rest of the queue.
//!
//! Interaction with the load balancer
//! ([`crate::balance::LoadBalancer`]): when a partitioned child is queued,
//! its `update_partials` call returns after enqueueing, so the parent's
//! per-call wall/simulated timing would measure nothing. That is why
//! [`crate::multi::PartitionedInstance`] accumulates each child's elapsed
//! time across the whole batch and feeds the balancer one observation per
//! batch at integration time — the integrate is a result-demanding call
//! that flushes the queue, so the batched observation captures the real
//! (flushed) cost of a queued child just as it does an eager one.

use std::collections::{HashMap, HashSet, VecDeque};

use parking_lot::Mutex;

use crate::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use crate::error::Result;
use crate::flags::Flags;
use crate::obs::{self, EventKind, KernelClass, Recorder};
use crate::ops::{dependency_levels, hazard_free_segments, Operation};

/// Counters exposed by a [`QueuedInstance`] (and forwarded through wrapper
/// instances via [`BeagleInstance::queue_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Times the queue was flushed with at least one pending item.
    pub flushes: u64,
    /// Hazard-free operation batches submitted across all flushes.
    pub batches_submitted: u64,
    /// Dependency levels submitted across all batches.
    pub levels_submitted: u64,
    /// Partial-likelihood operations enqueued by the client.
    pub ops_enqueued: u64,
    /// Partial-likelihood operations actually submitted to the back-end.
    pub ops_submitted: u64,
    /// Transition matrices served from the eigen cache.
    pub eigen_cache_hits: u64,
    /// Transition matrices computed by the back-end and inserted.
    pub eigen_cache_misses: u64,
    /// Invalidation events (eigen data or category rates changed).
    pub eigen_cache_invalidations: u64,
    /// Entries dropped because the cache reached capacity.
    pub eigen_cache_evictions: u64,
}

/// Default bound on cached transition matrices. An MCMC run proposes a new
/// branch length almost every iteration; without a cap the cache would grow
/// with the chain. 1024 codon-model f64 matrices ≈ 30 MB.
pub const DEFAULT_EIGEN_CACHE_CAPACITY: usize = 1024;

/// Memo table for derived transition matrices, keyed by
/// (eigen buffer, branch length) and guarded by the exact bit patterns of
/// the eigen data and category rates that produced each entry.
pub struct EigenCache {
    /// Bit patterns of (vectors ‖ inverse_vectors ‖ values) last installed
    /// at each eigen index. Comparison is exact, not hashed.
    eigen_seen: HashMap<usize, Vec<u64>>,
    /// Bit patterns of the current category rates.
    rates_seen: Vec<u64>,
    /// (eigen index, branch-length bits) → matrix read back after computing.
    entries: HashMap<(usize, u64), Vec<f64>>,
    /// Recency order for capacity eviction (least-recently used at the
    /// front; hits and re-inserts move their key to the back).
    order: VecDeque<(usize, u64)>,
    capacity: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

impl EigenCache {
    /// An empty cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            eigen_seen: HashMap::new(),
            rates_seen: Vec::new(),
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        }
    }

    fn bits(parts: &[&[f64]]) -> Vec<u64> {
        parts
            .iter()
            .flat_map(|p| p.iter().map(|v| v.to_bits()))
            .collect()
    }

    /// Record new eigen data for `index`; drops that index's entries when
    /// the data actually changed.
    pub fn note_eigen(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) {
        let key = Self::bits(&[vectors, inverse_vectors, values]);
        if self.eigen_seen.get(&index) == Some(&key) {
            return;
        }
        self.eigen_seen.insert(index, key);
        self.invalidations += 1;
        self.entries.retain(|&(e, _), _| e != index);
        self.order.retain(|&(e, _)| e != index);
    }

    /// Record new category rates; drops every entry when they changed
    /// (the rates enter every derived matrix).
    pub fn note_rates(&mut self, rates: &[f64]) {
        let key = Self::bits(&[rates]);
        if self.rates_seen == key {
            return;
        }
        self.rates_seen = key;
        self.invalidations += 1;
        self.entries.clear();
        self.order.clear();
    }

    /// The cached matrix for (eigen `index`, branch length `t`), if
    /// present. A hit refreshes the entry's recency, so a steadily reused
    /// branch length survives capacity eviction (LRU, not FIFO).
    pub fn lookup(&mut self, index: usize, t: f64) -> Option<&Vec<f64>> {
        let key = (index, t.to_bits());
        if !self.entries.contains_key(&key) {
            return None;
        }
        self.hits += 1;
        self.touch(key);
        self.entries.get(&key)
    }

    /// Move `key` to the most-recently-used end of the eviction order.
    fn touch(&mut self, key: (usize, u64)) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }

    /// Insert a freshly computed matrix, evicting the least-recently-used
    /// entry at capacity.
    pub fn insert(&mut self, index: usize, t: f64, matrix: Vec<f64>) {
        self.misses += 1;
        let key = (index, t.to_bits());
        if self.entries.insert(key, matrix).is_none() {
            self.order.push_back(key);
        } else {
            self.touch(key);
        }
        while self.entries.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
                self.evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One deferred API call.
enum Pending {
    TipStates {
        tip: usize,
        states: Vec<u32>,
    },
    TipPartials {
        tip: usize,
        partials: Vec<f64>,
    },
    Partials {
        buffer: usize,
        partials: Vec<f64>,
    },
    PatternWeights(Vec<f64>),
    StateFrequencies {
        index: usize,
        frequencies: Vec<f64>,
    },
    CategoryRates(Vec<f64>),
    CategoryWeights {
        index: usize,
        weights: Vec<f64>,
    },
    Eigen {
        index: usize,
        vectors: Vec<f64>,
        inverse_vectors: Vec<f64>,
        values: Vec<f64>,
    },
    Matrices {
        eigen_index: usize,
        matrix_indices: Vec<usize>,
        branch_lengths: Vec<f64>,
    },
    SetMatrix {
        index: usize,
        matrix: Vec<f64>,
    },
    UpdatePartials(Vec<Operation>),
    ResetScale(usize),
    AccumulateScale {
        scale_indices: Vec<usize>,
        cumulative: usize,
    },
}

struct State {
    inner: Box<dyn BeagleInstance>,
    pending: Vec<Pending>,
    cache: EigenCache,
    stats: QueueStats,
    recorder: Recorder,
}

impl State {
    fn snapshot(&self) -> QueueStats {
        let mut s = self.stats;
        s.eigen_cache_hits = self.cache.hits;
        s.eigen_cache_misses = self.cache.misses;
        s.eigen_cache_invalidations = self.cache.invalidations;
        s.eigen_cache_evictions = self.cache.evictions;
        s
    }

    fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let items = self.pending.len();
        let sw = self.recorder.start();
        let result = self.flush_pending();
        self.recorder
            .finish(sw, KernelClass::QueueFlush, items as u64, 0);
        self.recorder.event(EventKind::QueueFlush, || {
            format!("flush items={items} ok={}", result.is_ok())
        });
        result
    }

    fn flush_pending(&mut self) -> Result<()> {
        self.stats.flushes += 1;
        let pending = std::mem::take(&mut self.pending);
        let result = self.run_pending(&pending);
        if result.is_err() {
            // A failover layer above may retry a transient device fault by
            // re-issuing the failed call; keep the work so that retry can
            // re-submit it. Replay is idempotent: partials rewrite their
            // destination buffers and the other items re-apply in recorded
            // order.
            self.pending = pending;
        }
        result
    }

    fn run_pending(&mut self, pending: &[Pending]) -> Result<()> {
        let mut batch: Vec<Operation> = Vec::new();
        for item in pending {
            if let Pending::UpdatePartials(ops) = item {
                batch.extend(ops.iter().copied());
            } else {
                self.submit_batch(&mut batch)?;
                self.apply(item)?;
            }
        }
        self.submit_batch(&mut batch)
    }

    /// Schedule and submit an accumulated run of partials operations.
    fn submit_batch(&mut self, batch: &mut Vec<Operation>) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        for segment in hazard_free_segments(batch) {
            let levels = dependency_levels(&segment);
            self.stats.batches_submitted += 1;
            self.stats.levels_submitted += levels.len() as u64;
            self.stats.ops_submitted += segment.len() as u64;
            self.recorder.event(EventKind::LevelBatch, || {
                format!("levels={} ops={}", levels.len(), segment.len())
            });
            self.inner.update_partials_by_levels(&levels)?;
        }
        batch.clear();
        Ok(())
    }

    fn apply(&mut self, item: &Pending) -> Result<()> {
        match item {
            Pending::TipStates { tip, states } => self.inner.set_tip_states(*tip, states),
            Pending::TipPartials { tip, partials } => self.inner.set_tip_partials(*tip, partials),
            Pending::Partials { buffer, partials } => self.inner.set_partials(*buffer, partials),
            Pending::PatternWeights(w) => self.inner.set_pattern_weights(w),
            Pending::StateFrequencies { index, frequencies } => {
                self.inner.set_state_frequencies(*index, frequencies)
            }
            Pending::CategoryRates(rates) => {
                self.cache.note_rates(rates);
                self.inner.set_category_rates(rates)
            }
            Pending::CategoryWeights { index, weights } => {
                self.inner.set_category_weights(*index, weights)
            }
            Pending::Eigen {
                index,
                vectors,
                inverse_vectors,
                values,
            } => {
                self.cache
                    .note_eigen(*index, vectors, inverse_vectors, values);
                self.inner
                    .set_eigen_decomposition(*index, vectors, inverse_vectors, values)
            }
            Pending::Matrices {
                eigen_index,
                matrix_indices,
                branch_lengths,
            } => self.apply_matrices(*eigen_index, matrix_indices, branch_lengths),
            Pending::SetMatrix { index, matrix } => {
                self.inner.set_transition_matrix(*index, matrix)
            }
            Pending::UpdatePartials(_) => unreachable!("handled by the batch path"),
            Pending::ResetScale(c) => self.inner.reset_scale_factors(*c),
            Pending::AccumulateScale {
                scale_indices,
                cumulative,
            } => self
                .inner
                .accumulate_scale_factors(scale_indices, *cumulative),
        }
    }

    /// Cache-mediated `update_transition_matrices`: hits re-install the
    /// memoized matrix, misses go to the back-end in one batched call and
    /// are read back into the cache.
    fn apply_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        // A repeated target inside one call is order-sensitive (last write
        // wins); bypass the cache rather than reorder. Length mismatches are
        // the back-end's error to report.
        let mut seen = HashSet::new();
        let duplicates = matrix_indices.iter().any(|i| !seen.insert(*i));
        if duplicates || matrix_indices.len() != branch_lengths.len() {
            return self.inner.update_transition_matrices(
                eigen_index,
                matrix_indices,
                branch_lengths,
            );
        }
        let mut miss_indices = Vec::new();
        let mut miss_lengths = Vec::new();
        for (&mi, &t) in matrix_indices.iter().zip(branch_lengths) {
            if let Some(matrix) = self.cache.lookup(eigen_index, t) {
                self.inner.set_transition_matrix(mi, matrix)?;
            } else {
                miss_indices.push(mi);
                miss_lengths.push(t);
            }
        }
        if !miss_indices.is_empty() {
            self.inner
                .update_transition_matrices(eigen_index, &miss_indices, &miss_lengths)?;
            for (&mi, &t) in miss_indices.iter().zip(&miss_lengths) {
                let matrix = self.inner.get_transition_matrix(mi)?;
                self.cache.insert(eigen_index, t, matrix);
            }
        }
        Ok(())
    }
}

/// A [`BeagleInstance`] wrapper that defers mutating calls onto an operation
/// queue and serves repeated transition-matrix requests from an
/// [`EigenCache`]. See the module docs for semantics.
///
/// Interior mutability: the read methods of the trait take `&self`, but a
/// flush mutates the wrapped instance, so the queue state lives in a
/// `Mutex` (the trait requires `Send + Sync` so [`crate::pool`] can share
/// instances across worker threads; a `RefCell` would forfeit `Sync`).
/// Exclusive-access paths go through `get_mut`, which takes no lock.
pub struct QueuedInstance {
    state: Mutex<State>,
    details: InstanceDetails,
    config: InstanceConfig,
}

impl QueuedInstance {
    /// Wrap `inner`, deferring all mutating calls until a result is needed.
    pub fn new(inner: Box<dyn BeagleInstance>) -> Self {
        Self::with_cache_capacity(inner, DEFAULT_EIGEN_CACHE_CAPACITY)
    }

    /// Like [`Self::new`] with an explicit eigen-cache bound.
    pub fn with_cache_capacity(inner: Box<dyn BeagleInstance>, capacity: usize) -> Self {
        let mut details = inner.details().clone();
        details.flags = details.flags.without(Flags::COMPUTATION_SYNCH) | Flags::COMPUTATION_ASYNCH;
        let config = *inner.config();
        // Record queue-level kernel stats iff the wrapped instance is
        // recording: its recorder doubles as the opt-in signal, and the two
        // stats blocks merge in `statistics()`.
        let recorder = Recorder::new(inner.statistics().is_some());
        Self {
            state: Mutex::new(State {
                inner,
                pending: Vec::new(),
                cache: EigenCache::new(capacity),
                stats: QueueStats::default(),
                recorder,
            }),
            details,
            config,
        }
    }

    /// Force all pending work through to the back-end.
    pub fn flush(&mut self) -> Result<()> {
        self.state.get_mut().flush()
    }

    /// Counter snapshot (queue + cache).
    pub fn stats(&self) -> QueueStats {
        self.state.lock().snapshot()
    }

    /// Number of deferred calls currently queued.
    pub fn pending_len(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Unwrap, discarding any still-pending work.
    pub fn into_inner(self) -> Box<dyn BeagleInstance> {
        self.state.into_inner().inner
    }

    fn enqueue(&mut self, item: Pending) {
        self.state.get_mut().pending.push(item);
    }
}

impl BeagleInstance for QueuedInstance {
    fn details(&self) -> &InstanceDetails {
        &self.details
    }

    fn config(&self) -> &InstanceConfig {
        &self.config
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        self.enqueue(Pending::TipStates {
            tip,
            states: states.to_vec(),
        });
        Ok(())
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        self.enqueue(Pending::TipPartials {
            tip,
            partials: partials.to_vec(),
        });
        Ok(())
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        self.enqueue(Pending::Partials {
            buffer,
            partials: partials.to_vec(),
        });
        Ok(())
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        let mut st = self.state.lock();
        st.flush()?;
        st.inner.get_partials(buffer)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        self.enqueue(Pending::PatternWeights(weights.to_vec()));
        Ok(())
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.enqueue(Pending::StateFrequencies {
            index,
            frequencies: frequencies.to_vec(),
        });
        Ok(())
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.enqueue(Pending::CategoryRates(rates.to_vec()));
        Ok(())
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.enqueue(Pending::CategoryWeights {
            index,
            weights: weights.to_vec(),
        });
        Ok(())
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.enqueue(Pending::Eigen {
            index,
            vectors: vectors.to_vec(),
            inverse_vectors: inverse_vectors.to_vec(),
            values: values.to_vec(),
        });
        Ok(())
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.enqueue(Pending::Matrices {
            eigen_index,
            matrix_indices: matrix_indices.to_vec(),
            branch_lengths: branch_lengths.to_vec(),
        });
        Ok(())
    }

    fn update_transition_derivatives(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        d1_indices: &[usize],
        d2_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        // Derivative matrices are not cached (three coupled outputs per
        // branch); flush so prior eigen/rate updates are visible, then run.
        let st = self.state.get_mut();
        st.flush()?;
        st.inner.update_transition_derivatives(
            eigen_index,
            matrix_indices,
            d1_indices,
            d2_indices,
            branch_lengths,
        )
    }

    fn integrate_edge_derivatives(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        d1_matrix: BufferId,
        d2_matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<(f64, f64, f64)> {
        let st = self.state.get_mut();
        st.flush()?;
        st.inner.integrate_edge_derivatives(
            parent,
            child,
            matrix,
            d1_matrix,
            d2_matrix,
            category_weights,
            frequencies,
            scaling,
        )
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.enqueue(Pending::SetMatrix {
            index,
            matrix: matrix.to_vec(),
        });
        Ok(())
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        let mut st = self.state.lock();
        st.flush()?;
        st.inner.get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        let st = self.state.get_mut();
        st.stats.ops_enqueued += operations.len() as u64;
        st.pending
            .push(Pending::UpdatePartials(operations.to_vec()));
        Ok(())
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        self.enqueue(Pending::ResetScale(cumulative));
        Ok(())
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        self.enqueue(Pending::AccumulateScale {
            scale_indices: scale_indices.to_vec(),
            cumulative,
        });
        Ok(())
    }

    fn integrate_root(
        &mut self,
        root: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let st = self.state.get_mut();
        st.flush()?;
        st.inner
            .integrate_root(root, category_weights, frequencies, scaling)
    }

    fn integrate_edge(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let st = self.state.get_mut();
        st.flush()?;
        st.inner.integrate_edge(
            parent,
            child,
            matrix,
            category_weights,
            frequencies,
            scaling,
        )
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        let mut st = self.state.lock();
        st.flush()?;
        st.inner.get_site_log_likelihoods()
    }

    fn wait_for_computation(&mut self) -> Result<()> {
        let st = self.state.get_mut();
        st.flush()?;
        st.inner.wait_for_computation()
    }

    fn simulated_time(&self) -> Option<std::time::Duration> {
        let mut st = self.state.lock();
        // The simulated clock only advances when work reaches the device.
        st.flush().ok()?;
        st.inner.simulated_time()
    }

    fn reset_simulated_time(&mut self) {
        let st = self.state.get_mut();
        if st.flush().is_ok() {
            st.inner.reset_simulated_time();
        }
    }

    fn peek_simulated_time(&self) -> Option<std::time::Duration> {
        // No flush: a peek must never execute deferred work. Pending
        // queued cost is simply not visible yet.
        self.state.lock().inner.peek_simulated_time()
    }

    fn queue_stats(&self) -> Option<QueueStats> {
        Some(self.stats())
    }

    fn statistics(&self) -> Option<obs::InstanceStats> {
        let st = self.state.lock();
        let mut stats = st.inner.statistics()?;
        if let Some(own) = st.recorder.stats() {
            stats.merge(&own);
        }
        let snap = st.snapshot();
        stats.eigen_cache_hits += snap.eigen_cache_hits;
        stats.eigen_cache_misses += snap.eigen_cache_misses;
        Some(stats)
    }

    fn take_journal(&mut self) -> Vec<obs::Event> {
        let st = self.state.get_mut();
        obs::merge_journals(st.inner.take_journal(), st.recorder.take_journal())
    }

    fn set_deadline(&mut self, deadline: Option<crate::deadline::Deadline>) {
        self.state.get_mut().inner.set_deadline(deadline);
    }

    fn checkpoint(&mut self) -> Option<crate::checkpoint::Checkpoint> {
        // Pending work must reach the journaling layer below before the
        // snapshot, or queued-but-unflushed operations would be lost.
        let st = self.state.get_mut();
        st.flush().ok()?;
        st.inner.checkpoint()
    }

    fn set_incremental(&mut self, enabled: bool) {
        self.state.get_mut().inner.set_incremental(enabled);
    }

    fn memo_stats(&self) -> Option<crate::memo::MemoStats> {
        // No flush: a counter peek must never execute deferred work.
        self.state.lock().inner.memo_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BeagleError;

    use std::sync::{Arc, Mutex};

    type CallLog = Arc<Mutex<Vec<String>>>;

    /// A back-end that logs every call and derives deterministic matrix
    /// content from (eigen data, rates, branch length), so cache-correctness
    /// is observable.
    struct MockInstance {
        details: InstanceDetails,
        config: InstanceConfig,
        calls: CallLog,
        eigen_sum: HashMap<usize, f64>,
        rates_sum: f64,
        matrices: HashMap<usize, Vec<f64>>,
    }

    impl MockInstance {
        fn new(calls: CallLog) -> Self {
            Self {
                details: InstanceDetails {
                    implementation_name: "mock".into(),
                    resource_name: "mock".into(),
                    flags: Flags::NONE,
                    thread_count: 1,
                },
                config: InstanceConfig::for_tree(4, 10, 4, 1),
                calls,
                eigen_sum: HashMap::new(),
                rates_sum: 0.0,
                matrices: HashMap::new(),
            }
        }

        fn log(&self, entry: impl Into<String>) {
            self.calls.lock().unwrap().push(entry.into());
        }
    }

    impl BeagleInstance for MockInstance {
        fn details(&self) -> &InstanceDetails {
            &self.details
        }
        fn config(&self) -> &InstanceConfig {
            &self.config
        }
        fn set_tip_states(&mut self, tip: usize, _: &[u32]) -> Result<()> {
            self.log(format!("tips:{tip}"));
            Ok(())
        }
        fn set_tip_partials(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_partials(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn get_partials(&self, _: usize) -> Result<Vec<f64>> {
            Ok(vec![])
        }
        fn set_pattern_weights(&mut self, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_state_frequencies(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
            self.log("rates");
            self.rates_sum = rates.iter().sum();
            Ok(())
        }
        fn set_category_weights(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_eigen_decomposition(
            &mut self,
            index: usize,
            vectors: &[f64],
            inverse_vectors: &[f64],
            values: &[f64],
        ) -> Result<()> {
            self.log(format!("eigen:{index}"));
            let sum: f64 = vectors.iter().chain(inverse_vectors).chain(values).sum();
            self.eigen_sum.insert(index, sum);
            Ok(())
        }
        fn update_transition_matrices(
            &mut self,
            eigen_index: usize,
            matrix_indices: &[usize],
            branch_lengths: &[f64],
        ) -> Result<()> {
            self.log(format!("utm:{}", matrix_indices.len()));
            let e = *self
                .eigen_sum
                .get(&eigen_index)
                .ok_or(BeagleError::InvalidConfiguration("eigen never set".into()))?;
            for (&mi, &t) in matrix_indices.iter().zip(branch_lengths) {
                self.matrices.insert(mi, vec![e * t + self.rates_sum; 4]);
            }
            Ok(())
        }
        fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
            self.log(format!("stm:{index}"));
            self.matrices.insert(index, matrix.to_vec());
            Ok(())
        }
        fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
            self.matrices
                .get(&index)
                .cloned()
                .ok_or(BeagleError::InvalidConfiguration(
                    "matrix never written".into(),
                ))
        }
        fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
            self.log(format!("up:{}", operations.len()));
            Ok(())
        }
        fn update_partials_by_levels(&mut self, levels: &[Vec<Operation>]) -> Result<()> {
            let shape: Vec<String> = levels.iter().map(|l| l.len().to_string()).collect();
            self.log(format!("levels:{}", shape.join(",")));
            Ok(())
        }
        fn reset_scale_factors(&mut self, _: usize) -> Result<()> {
            self.log("reset");
            Ok(())
        }
        fn accumulate_scale_factors(&mut self, _: &[usize], _: usize) -> Result<()> {
            self.log("accum");
            Ok(())
        }
        fn integrate_root(
            &mut self,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: ScalingMode,
        ) -> Result<f64> {
            self.log("root");
            Ok(-1.0)
        }
        fn integrate_edge(
            &mut self,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: ScalingMode,
        ) -> Result<f64> {
            Ok(-1.0)
        }
        fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
            Ok(vec![])
        }
    }

    fn op(dest: usize, c1: usize, c2: usize) -> Operation {
        Operation::new(dest, c1, c1, c2, c2)
    }

    fn traversal() -> Vec<Operation> {
        vec![op(4, 0, 1), op(5, 2, 3), op(6, 4, 5)]
    }

    /// A fresh queued mock plus a handle to its call log.
    fn queued() -> (QueuedInstance, CallLog) {
        let calls: CallLog = Arc::new(Mutex::new(Vec::new()));
        let q = QueuedInstance::new(Box::new(MockInstance::new(calls.clone())));
        (q, calls)
    }

    fn log(calls: &CallLog) -> Vec<String> {
        calls.lock().unwrap().clone()
    }

    #[test]
    fn mutating_calls_defer_until_a_result_is_demanded() {
        let (mut q, calls) = queued();
        q.set_category_rates(&[1.0]).unwrap();
        q.set_tip_states(0, &[0, 1]).unwrap();
        q.update_partials(&traversal()).unwrap();
        assert!(log(&calls).is_empty(), "nothing may reach the back-end yet");
        assert_eq!(q.pending_len(), 3);
        q.integrate_root(BufferId(6), BufferId(0), BufferId(0), ScalingMode::None)
            .unwrap();
        assert_eq!(
            log(&calls),
            vec!["rates", "tips:0", "levels:2,1", "root"],
            "flush preserves call order and levels the traversal"
        );
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn consecutive_traversals_merge_then_split_at_hazards() {
        let (mut q, calls) = queued();
        // The same destinations twice: WAW hazards force two submissions.
        q.update_partials(&traversal()).unwrap();
        q.update_partials(&traversal()).unwrap();
        q.wait_for_computation().unwrap();
        assert_eq!(log(&calls), vec!["levels:2,1", "levels:2,1"]);

        // Distinct halves of one traversal queued separately: one batch.
        let (mut q, calls) = queued();
        q.update_partials(&traversal()[..2]).unwrap();
        q.update_partials(&traversal()[2..]).unwrap();
        q.wait_for_computation().unwrap();
        assert_eq!(
            log(&calls),
            vec!["levels:2,1"],
            "halves merge into one leveled batch"
        );
    }

    #[test]
    fn interleaved_sets_split_batches_in_order() {
        let (mut q, calls) = queued();
        q.update_partials(&traversal()[..2]).unwrap();
        q.set_category_rates(&[2.0]).unwrap();
        q.update_partials(&traversal()[2..]).unwrap();
        q.flush().unwrap();
        assert_eq!(log(&calls), vec!["levels:2", "rates", "levels:1"]);
    }

    #[test]
    fn scale_bookkeeping_stays_ordered_with_partials() {
        let (mut q, calls) = queued();
        q.update_partials(&traversal()).unwrap();
        q.reset_scale_factors(7).unwrap();
        q.accumulate_scale_factors(&[4, 5, 6], 7).unwrap();
        q.integrate_root(
            BufferId(6),
            BufferId(0),
            BufferId(0),
            ScalingMode::cumulative(7),
        )
        .unwrap();
        assert_eq!(log(&calls), vec!["levels:2,1", "reset", "accum", "root"]);
    }

    #[test]
    fn eigen_cache_hits_skip_recomputation_bit_exactly() {
        let (mut q, calls) = queued();
        let v = vec![1.0; 16];
        q.set_eigen_decomposition(0, &v, &v, &[0.5; 4]).unwrap();
        q.set_category_rates(&[1.0, 2.0]).unwrap();
        q.update_transition_matrices(0, &[1, 2], &[0.1, 0.2])
            .unwrap();
        let first = q.get_transition_matrix(1).unwrap();
        assert_eq!(q.stats().eigen_cache_misses, 2);
        assert_eq!(q.stats().eigen_cache_hits, 0);

        // Same lengths again: both served from the cache via set calls.
        q.update_transition_matrices(0, &[1, 2], &[0.1, 0.2])
            .unwrap();
        let second = q.get_transition_matrix(1).unwrap();
        assert_eq!(q.stats().eigen_cache_hits, 2);
        assert_eq!(q.stats().eigen_cache_misses, 2);
        assert_eq!(first, second, "cached matrix must be the exact bytes");
        let l = log(&calls);
        assert_eq!(l.iter().filter(|c| c.starts_with("utm")).count(), 1);
        assert_eq!(l.iter().filter(|c| c.starts_with("stm")).count(), 2);
    }

    #[test]
    fn changing_rates_or_eigen_data_invalidates() {
        let (mut q, _calls) = queued();
        let v = vec![1.0; 16];
        q.set_eigen_decomposition(0, &v, &v, &[0.5; 4]).unwrap();
        q.set_category_rates(&[1.0]).unwrap();
        q.update_transition_matrices(0, &[1], &[0.1]).unwrap();
        q.flush().unwrap();
        let with_old_rates = q.get_transition_matrix(1).unwrap();

        // Rates change: the next request recomputes under the new rates.
        q.set_category_rates(&[3.0]).unwrap();
        q.update_transition_matrices(0, &[1], &[0.1]).unwrap();
        let with_new_rates = q.get_transition_matrix(1).unwrap();
        assert_ne!(with_old_rates, with_new_rates);
        assert_eq!(q.stats().eigen_cache_hits, 0);
        assert_eq!(q.stats().eigen_cache_misses, 2);

        // Re-setting identical eigen data does NOT invalidate...
        q.set_eigen_decomposition(0, &v, &v, &[0.5; 4]).unwrap();
        q.update_transition_matrices(0, &[1], &[0.1]).unwrap();
        q.flush().unwrap();
        assert_eq!(q.stats().eigen_cache_hits, 1);
        // ...but new eigen data does.
        q.set_eigen_decomposition(0, &v, &v, &[0.75; 4]).unwrap();
        q.update_transition_matrices(0, &[1], &[0.1]).unwrap();
        q.flush().unwrap();
        assert_eq!(q.stats().eigen_cache_hits, 1);
        assert_eq!(q.stats().eigen_cache_misses, 3);
        assert!(q.stats().eigen_cache_invalidations >= 3);
    }

    #[test]
    fn duplicate_matrix_targets_bypass_the_cache() {
        let (mut q, calls) = queued();
        let v = vec![1.0; 16];
        q.set_eigen_decomposition(0, &v, &v, &[0.5; 4]).unwrap();
        q.set_category_rates(&[1.0]).unwrap();
        // Index 1 appears twice: last write must win, so no caching.
        q.update_transition_matrices(0, &[1, 1], &[0.1, 0.2])
            .unwrap();
        q.flush().unwrap();
        assert_eq!(q.stats().eigen_cache_misses, 0);
        assert!(log(&calls).contains(&"utm:2".to_string()));
    }

    #[test]
    fn cache_capacity_evicts_oldest_first() {
        let calls: CallLog = Arc::new(Mutex::new(Vec::new()));
        let mut q = QueuedInstance::with_cache_capacity(Box::new(MockInstance::new(calls)), 2);
        let v = vec![1.0; 16];
        q.set_eigen_decomposition(0, &v, &v, &[0.5; 4]).unwrap();
        q.set_category_rates(&[1.0]).unwrap();
        q.update_transition_matrices(0, &[1, 2, 3], &[0.1, 0.2, 0.3])
            .unwrap();
        q.flush().unwrap();
        assert_eq!(q.stats().eigen_cache_evictions, 1);
        // 0.1 was evicted (oldest); 0.3 still cached.
        q.update_transition_matrices(0, &[1], &[0.1]).unwrap();
        q.update_transition_matrices(0, &[3], &[0.3]).unwrap();
        q.flush().unwrap();
        assert_eq!(q.stats().eigen_cache_hits, 1);
        assert_eq!(q.stats().eigen_cache_misses, 4);
    }

    #[test]
    fn cache_eviction_is_lru_not_fifo() {
        let calls: CallLog = Arc::new(Mutex::new(Vec::new()));
        let mut q = QueuedInstance::with_cache_capacity(Box::new(MockInstance::new(calls)), 2);
        let v = vec![1.0; 16];
        q.set_eigen_decomposition(0, &v, &v, &[0.5; 4]).unwrap();
        q.set_category_rates(&[1.0]).unwrap();
        q.update_transition_matrices(0, &[1, 2], &[0.1, 0.2])
            .unwrap();
        q.flush().unwrap();
        // Touch 0.1 so 0.2 becomes the least-recently-used entry...
        q.update_transition_matrices(0, &[1], &[0.1]).unwrap();
        q.flush().unwrap();
        assert_eq!(q.stats().eigen_cache_hits, 1);
        // ...then inserting 0.3 evicts 0.2, keeping the reused 0.1 (a FIFO
        // cache would evict 0.1 here and miss the final lookup).
        q.update_transition_matrices(0, &[3], &[0.3]).unwrap();
        q.update_transition_matrices(0, &[1], &[0.1]).unwrap();
        q.flush().unwrap();
        assert_eq!(q.stats().eigen_cache_hits, 2);
        assert_eq!(q.stats().eigen_cache_misses, 3);
        assert_eq!(q.stats().eigen_cache_evictions, 1);
    }

    #[test]
    fn stats_count_queue_traffic() {
        let (mut q, _calls) = queued();
        q.update_partials(&traversal()).unwrap();
        q.update_partials(&traversal()).unwrap();
        q.wait_for_computation().unwrap();
        q.wait_for_computation().unwrap(); // empty: not a flush
        let s = q.stats();
        assert_eq!(s.flushes, 1);
        assert_eq!(s.ops_enqueued, 6);
        assert_eq!(s.ops_submitted, 6);
        assert_eq!(s.batches_submitted, 2);
        assert_eq!(s.levels_submitted, 4);
    }

    #[test]
    fn details_advertise_asynch_mode() {
        let (q, _calls) = queued();
        assert!(q.details().flags.contains(Flags::COMPUTATION_ASYNCH));
        assert_eq!(q.config().tip_count, 4);
        assert_eq!(q.queue_stats(), Some(QueueStats::default()));
    }
}
