//! The BEAGLE-RS application programming interface.
//!
//! A faithful Rust rendering of the BEAGLE C API: a client creates an
//! *instance* sized for its problem (tips, patterns, states, categories,
//! buffer counts), loads tip data, eigen systems, rates and weights, then
//! repeatedly asks for transition-matrix updates, partials updates, and
//! root/edge log-likelihood integrations. The library deliberately has no
//! tree type; clients drive it with flat, flexibly indexed operation lists.

use crate::error::{BeagleError, Result};
use crate::flags::Flags;
use crate::obs;
use crate::ops::Operation;

/// A typed index into an instance's buffer space (partials, matrix, scale,
/// category-weight or frequency buffers — which space is determined by the
/// parameter position, exactly as in the C API).
///
/// Replaces the raw `usize` indices of the integration methods so that a
/// buffer index can no longer be silently swapped with a count or an
/// unrelated index at a call site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub usize);

impl BufferId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for BufferId {
    fn from(index: usize) -> Self {
        BufferId(index)
    }
}

impl std::fmt::Display for BufferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// How an integration call treats accumulated scale factors.
///
/// Replaces the old `Option<usize>` cumulative-scale argument, which read as
/// "maybe a number" instead of "a scaling policy" at call sites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScalingMode {
    /// No rescaling was performed; partials are raw probabilities.
    #[default]
    None,
    /// Per-pattern log scale factors were accumulated into this scale
    /// buffer and must be added back to the integrated log-likelihood.
    Cumulative(BufferId),
}

impl ScalingMode {
    /// Cumulative scaling through scale buffer `index`.
    pub fn cumulative(index: usize) -> Self {
        ScalingMode::Cumulative(BufferId(index))
    }

    /// The cumulative scale-buffer index, if any (adapter for back-end
    /// internals still organized around the optional index).
    pub fn index(self) -> Option<usize> {
        match self {
            ScalingMode::None => None,
            ScalingMode::Cumulative(b) => Some(b.0),
        }
    }
}

/// Sizing parameters of an instance (the `beagleCreateInstance` arguments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstanceConfig {
    /// Number of tip data elements (taxa).
    pub tip_count: usize,
    /// Number of partials buffers (≥ `tip_count` when all tips use partials;
    /// tips using compact state storage do not consume partials buffers, but
    /// index into the same space `0..partials_buffer_count`).
    pub partials_buffer_count: usize,
    /// Number of compact (tip-state) buffers.
    pub compact_buffer_count: usize,
    /// Number of character states (4 = nucleotide, 20 = amino acid, 61 = codon).
    pub state_count: usize,
    /// Number of unique site patterns.
    pub pattern_count: usize,
    /// Number of eigen-decomposition buffers.
    pub eigen_buffer_count: usize,
    /// Number of transition-matrix buffers.
    pub matrix_buffer_count: usize,
    /// Number of rate categories.
    pub category_count: usize,
    /// Number of scale-factor buffers (0 disables manual scaling).
    pub scale_buffer_count: usize,
}

impl InstanceConfig {
    /// A minimal valid config for `tips` taxa / `patterns` patterns /
    /// `states` states / `categories` rate categories, with one buffer per
    /// tree node, one matrix per branch, one eigen system and one extra
    /// scale buffer for cumulative factors (the standard client layout).
    pub fn for_tree(tips: usize, patterns: usize, states: usize, categories: usize) -> Self {
        let nodes = 2 * tips - 1;
        InstanceConfig {
            tip_count: tips,
            partials_buffer_count: nodes,
            compact_buffer_count: tips,
            state_count: states,
            pattern_count: patterns,
            eigen_buffer_count: 1,
            matrix_buffer_count: nodes, // index = node id; root entry unused
            category_count: categories,
            scale_buffer_count: nodes + 1,
        }
    }

    /// Validate basic sanity; called by every factory.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: &str| Err(BeagleError::InvalidConfiguration(msg.to_string()));
        if self.tip_count < 2 {
            return bad("need at least 2 tips");
        }
        if self.state_count < 2 {
            return bad("need at least 2 states");
        }
        if self.pattern_count == 0 {
            return bad("need at least 1 pattern");
        }
        if self.category_count == 0 {
            return bad("need at least 1 rate category");
        }
        if self.partials_buffer_count < self.tip_count {
            return bad("partials buffers must cover all tips");
        }
        if self.eigen_buffer_count == 0 || self.matrix_buffer_count == 0 {
            return bad("need at least one eigen and one matrix buffer");
        }
        Ok(())
    }

    /// Length of one partials buffer: `categories × patterns × states`.
    pub fn partials_len(&self) -> usize {
        self.category_count * self.pattern_count * self.state_count
    }

    /// Length of one transition-matrix buffer: `categories × states²`.
    pub fn matrix_len(&self) -> usize {
        self.category_count * self.state_count * self.state_count
    }
}

/// What an instance actually is, reported after creation
/// (`beagleGetInstanceDetails`).
#[derive(Clone, Debug)]
pub struct InstanceDetails {
    /// Human-readable implementation name, e.g. `"CPU-threadpool"`.
    pub implementation_name: String,
    /// Name of the hardware resource the instance runs on.
    pub resource_name: String,
    /// Flags describing the instance's actual behaviour.
    pub flags: Flags,
    /// Number of worker threads in use (1 for serial / accelerator models).
    pub thread_count: usize,
}

/// A BEAGLE instance: likelihood state plus the kernels that act on it.
///
/// All data crosses this interface as `f64` regardless of the instance's
/// internal precision (the C API has typed variants; a trait object cannot,
/// so conversion happens inside — it is never on the hot path, which is
/// `update_partials` + `integrate_root` on internal buffers).
///
/// The `Send + Sync` bound is what lets [`crate::pool`] move instances
/// between worker threads and share `&`-references to them across the pool's
/// supervision structures. Every in-tree backend and wrapper is verified
/// against it by the compile-time audit in `tests/send_sync.rs`; an
/// implementation needing interior mutability must use a lock, not
/// `RefCell`/`Cell`.
pub trait BeagleInstance: Send + Sync {
    /// Implementation and resource description.
    fn details(&self) -> &InstanceDetails;

    /// Instance sizing.
    fn config(&self) -> &InstanceConfig;

    /// Set compact tip states for tip `tip`; `states[p]` is the observed
    /// state at pattern `p`, or [`crate::GAP_STATE`] for missing data.
    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()>;

    /// Set full partials for a tip (for ambiguous tip data):
    /// `patterns × states`, replicated internally across categories.
    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()>;

    /// Set a full partials buffer (`categories × patterns × states`).
    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()>;

    /// Read back a partials buffer (`categories × patterns × states`).
    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>>;

    /// Set pattern weights (column multiplicities), length `pattern_count`.
    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()>;

    /// Set state frequencies buffer `index` (length `state_count`).
    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()>;

    /// Set the category rate multipliers (length `category_count`).
    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()>;

    /// Set category weights buffer `index` (length `category_count`).
    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()>;

    /// Load an eigen system: row-major `vectors` (s×s), `inverse_vectors`
    /// (s×s), and `values` (s eigenvalues).
    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()>;

    /// Compute `P(rate_c · t)` for each listed matrix buffer and branch
    /// length from eigen buffer `eigen_index` — the paper's "branch
    /// transition probabilities" kernel.
    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()>;

    /// Compute `P(rate_c · t)` together with first and second derivatives
    /// with respect to the branch length, written to three matrix buffers
    /// per branch. The inputs maximum-likelihood programs need for
    /// Newton–Raphson branch optimization. Optional: back-ends without
    /// derivative kernels return [`crate::BeagleError::Unsupported`].
    fn update_transition_derivatives(
        &mut self,
        _eigen_index: usize,
        _matrix_indices: &[usize],
        _d1_indices: &[usize],
        _d2_indices: &[usize],
        _branch_lengths: &[f64],
    ) -> Result<()> {
        Err(crate::error::BeagleError::Unsupported(format!(
            "transition-matrix derivatives on {}",
            self.details().implementation_name
        )))
    }

    /// Edge log-likelihood together with its first and second derivatives
    /// with respect to the edge's branch length: `(lnL, dlnL/dt, d²lnL/dt²)`.
    /// `d1_matrix` / `d2_matrix` must hold the derivative matrices from
    /// [`Self::update_transition_derivatives`]. Optional, like the above.
    #[allow(clippy::too_many_arguments)]
    fn integrate_edge_derivatives(
        &mut self,
        _parent: BufferId,
        _child: BufferId,
        _matrix: BufferId,
        _d1_matrix: BufferId,
        _d2_matrix: BufferId,
        _category_weights: BufferId,
        _frequencies: BufferId,
        _scaling: ScalingMode,
    ) -> Result<(f64, f64, f64)> {
        Err(crate::error::BeagleError::Unsupported(format!(
            "edge derivatives on {}",
            self.details().implementation_name
        )))
    }

    /// Directly set a transition matrix (`categories × states × states`,
    /// row-major `P[i][j] = P(i→j)` per category).
    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()>;

    /// Read back a transition matrix.
    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>>;

    /// Run a dependency-ordered list of partial-likelihood operations — the
    /// computational bottleneck this library exists to accelerate.
    fn update_partials(&mut self, operations: &[Operation]) -> Result<()>;

    /// Run pre-scheduled dependency levels of operations: all operations in
    /// one level are mutually independent and each level only reads buffers
    /// produced by earlier levels (the output of
    /// [`crate::ops::dependency_levels`]). Back-ends override this to submit
    /// each level as one batch — a single stream submission on accelerators,
    /// a single pool dispatch on threaded CPUs. The default just replays the
    /// levels in order, which is always correct.
    fn update_partials_by_levels(&mut self, levels: &[Vec<Operation>]) -> Result<()> {
        for level in levels {
            self.update_partials(level)?;
        }
        Ok(())
    }

    /// Zero cumulative scale buffer `cumulative`.
    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()>;

    /// Add the log scale factors of each listed buffer into `cumulative`.
    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()>;

    /// Integrate root partials against state frequencies, category weights
    /// and pattern weights; returns the total log-likelihood. With
    /// [`ScalingMode::Cumulative`], per-pattern accumulated log scale
    /// factors are added back.
    fn integrate_root(
        &mut self,
        root: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64>;

    /// Likelihood integrated at an edge: parent partials combined with
    /// child partials propagated through `matrix`. Used by programs that
    /// re-root cheaply or compute branch derivatives.
    fn integrate_edge(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64>;

    /// Per-pattern site log-likelihoods from the most recent root/edge call.
    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>>;

    /// Block until asynchronous device work is done (no-op on CPU).
    fn wait_for_computation(&mut self) -> Result<()> {
        Ok(())
    }

    /// For simulated accelerator back-ends: total modeled device time since
    /// creation or the last [`Self::reset_simulated_time`]. `None` for
    /// back-ends measured with the wall clock (all CPU implementations and
    /// the OpenCL-x86 device).
    fn simulated_time(&self) -> Option<std::time::Duration> {
        None
    }

    /// Reset the simulated device clock (no-op for wall-clock back-ends).
    fn reset_simulated_time(&mut self) {}

    /// Read the simulated clock **without side effects**. For most
    /// back-ends this is [`Self::simulated_time`]; deferred-execution
    /// wrappers override it to skip the flush that `simulated_time`
    /// performs, so the value may lag until the queue drains. The
    /// partitioned parent uses this to time each child around a call
    /// without perturbing its execution mode (see
    /// [`crate::multi::PartitionedInstance`]).
    fn peek_simulated_time(&self) -> Option<std::time::Duration> {
        self.simulated_time()
    }

    /// Operation-queue and eigen-cache counters, when this instance (or one
    /// it wraps) defers execution through a [`crate::queue::QueuedInstance`].
    /// `None` for eager instances.
    fn queue_stats(&self) -> Option<crate::queue::QueueStats> {
        None
    }

    /// Per-kernel timing/counter statistics (see [`crate::obs`]). `None`
    /// unless the instance was created with [`Flags::INSTANCE_STATS`] (or
    /// `InstanceSpec::with_stats`), or when built with the `obs-disabled`
    /// feature. Wrapper instances (queue, rescue, partitioned) merge their
    /// own counters with the wrapped instance's.
    fn statistics(&self) -> Option<obs::InstanceStats> {
        None
    }

    /// Drain this instance's event journal (oldest first; see
    /// [`crate::obs::Event`]). Empty unless statistics are enabled. Wrapper
    /// instances merge the journals of every layer into sequence order.
    fn take_journal(&mut self) -> Vec<obs::Event> {
        Vec::new()
    }

    /// Set (or clear) the per-launch watchdog budget. Back-ends with a
    /// watchdog cancel any launch that stalls past the budget and report
    /// [`BeagleError::Timeout`]; with `None` they fall back to the driver
    /// default ([`crate::deadline::Deadline::DRIVER_DEFAULT`]). Wrapper
    /// instances forward the deadline to every layer below; back-ends
    /// without stall modes (the CPU implementations) ignore it, which this
    /// default implements.
    fn set_deadline(&mut self, _deadline: Option<crate::deadline::Deadline>) {}

    /// Snapshot this instance's replayable state as a durable
    /// [`crate::checkpoint::Checkpoint`]. `None` unless a journaling layer
    /// is present (a `CheckpointedInstance` wrapper or a
    /// [`crate::multi::PartitionedInstance`]); wrappers above such a layer
    /// forward the call down (the operation queue flushes first, so pending
    /// work is captured rather than lost).
    fn checkpoint(&mut self) -> Option<crate::checkpoint::Checkpoint> {
        None
    }

    /// Enable or disable incremental re-computation (operation memoization,
    /// see [`crate::memo::MemoInstance`]) at runtime. When disabled the memo
    /// layer keeps its epoch bookkeeping current but never skips work, so
    /// toggling is always safe mid-run. Wrappers forward the call to every
    /// layer below; instances without a memo layer ignore it, which this
    /// default implements. Throughput harnesses that time repeated identical
    /// traversals call `set_incremental(false)` so they measure real kernels.
    fn set_incremental(&mut self, _enabled: bool) {}

    /// Skip/hit counters from the incremental memoization layer, when one is
    /// installed below this instance (see [`crate::memo::MemoStats`]).
    /// `None` otherwise. Like [`Self::peek_simulated_time`], deferred
    /// wrappers forward this without flushing pending work.
    fn memo_stats(&self) -> Option<crate::memo::MemoStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_tree_config_is_valid() {
        let c = InstanceConfig::for_tree(8, 1000, 4, 4);
        c.validate().unwrap();
        assert_eq!(c.partials_buffer_count, 15);
        assert_eq!(c.partials_len(), 4 * 1000 * 4);
        assert_eq!(c.matrix_len(), 4 * 16);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = InstanceConfig::for_tree(8, 1000, 4, 4);
        c.tip_count = 1;
        assert!(c.validate().is_err());
        let mut c = InstanceConfig::for_tree(8, 1000, 4, 4);
        c.pattern_count = 0;
        assert!(c.validate().is_err());
        let mut c = InstanceConfig::for_tree(8, 1000, 4, 4);
        c.partials_buffer_count = 3;
        assert!(c.validate().is_err());
        let mut c = InstanceConfig::for_tree(8, 1000, 4, 4);
        c.category_count = 0;
        assert!(c.validate().is_err());
    }
}
