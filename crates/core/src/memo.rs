//! Epoch-based incremental computation: skip work whose inputs are
//! bit-identical to what the destination already holds.
//!
//! The paper's workloads are MCMC-driven: each proposal perturbs one branch
//! or one model parameter, yet a naive client refreshes every partial on
//! every move. BEAGLE leaves dirty tracking to clients (BEAST does it);
//! [`MemoInstance`] instead does it *inside* the library, as generic
//! operation memoization that every caller benefits from.
//!
//! # Scheme
//!
//! Every mutable buffer space (partials/tips, transition matrices, eigen
//! systems, category rates/weights, state frequencies, pattern weights,
//! scale factors) carries an **epoch**: the value of a per-instance logical
//! clock at the buffer's last actual write. Every destination additionally
//! carries an **input signature** describing exactly how its current
//! content was produced:
//!
//! * a partials destination holds `Op { op, child/matrix epochs }` after an
//!   executed operation, or `Direct` after a `set_*` (content kept for
//!   bit-compare);
//! * a matrix buffer holds `Derived { eigen epoch, rates epoch, t bits }`
//!   after `update_transition_matrices`, or `Direct` after
//!   `set_transition_matrix`;
//! * a cumulative scale buffer holds `Reset`, `OpScale` or `Accumulated`
//!   signatures mirroring the scale-factor bookkeeping calls.
//!
//! A call whose candidate signature equals the destination's stored
//! signature would write bit-identical content, so it is skipped entirely.
//! Mutating `set_*` calls are deduplicated by **full bit-pattern
//! comparison** (never hashed), so a skip can never be wrong.
//!
//! # Placement and toggling
//!
//! The manager installs the memo directly above the raw back-end — *below*
//! the operation queue, rescue, checkpoint and partitioned wrappers — so
//! deferred flushes, rescue re-runs, journal replays and checkpoint
//! restores all flow through it with their real call shapes. Bookkeeping
//! runs unconditionally; the `enabled` flag only gates the *skip decision*,
//! so [`BeagleInstance::set_incremental`] can be toggled mid-run without
//! ever desynchronizing the epoch state. `BEAGLE_INCREMENTAL_DISABLE=1`
//! prevents installation entirely (the escape hatch reproduces baseline
//! bits *and* timings).
//!
//! # Error handling
//!
//! If a forwarded call fails, every destination it might have touched gets
//! its epoch bumped and its signature cleared: the back-end's state is
//! unknown, so nothing downstream may be skipped. A queued retry after a
//! transient fault therefore re-executes rather than falsely skipping.

use std::collections::{BTreeSet, HashMap};

use crate::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use crate::error::Result;
use crate::obs::{self, EventKind, Recorder};
use crate::ops::Operation;

/// Environment variable that disables the incremental layer at creation
/// (the memo wrapper is not installed at all).
pub const INCREMENTAL_DISABLE_ENV: &str = "BEAGLE_INCREMENTAL_DISABLE";

/// Whether the environment disables incremental computation globally.
pub fn incremental_disabled_by_env() -> bool {
    std::env::var(INCREMENTAL_DISABLE_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Skip/hit counters of one [`MemoInstance`], exposed through
/// [`BeagleInstance::memo_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Whether the skip decision is currently enabled.
    pub enabled: bool,
    /// Partials operations skipped (destination already held the result).
    pub ops_skipped: u64,
    /// Partials operations actually forwarded to the back-end.
    pub ops_executed: u64,
    /// Transition-matrix derivations skipped.
    pub matrices_skipped: u64,
    /// Transition-matrix derivations actually forwarded.
    pub matrices_computed: u64,
    /// Root/edge integrations answered from the cached value.
    pub integrations_skipped: u64,
    /// Root/edge integrations actually forwarded.
    pub integrations_computed: u64,
    /// Mutating `set_*` calls elided because the content was bit-identical.
    pub sets_deduped: u64,
    /// Deferred `reset_scale_factors` + `accumulate_scale_factors` pairs
    /// skipped together because the cumulative buffer already held the
    /// identical accumulation.
    pub scale_pairs_skipped: u64,
}

impl MemoStats {
    /// Total number of skipped units of work, across every category. The
    /// partitioned parent compares this before/after a child call to keep
    /// partially-skipped batches out of the load balancer's rate estimates.
    pub fn total_skips(&self) -> u64 {
        self.ops_skipped
            + self.matrices_skipped
            + self.integrations_skipped
            + self.sets_deduped
            + self.scale_pairs_skipped
    }

    /// Fold another child's counters into this one (used by
    /// [`crate::multi::PartitionedInstance`] to aggregate across children).
    /// `enabled` stays true only if every merged child has skipping on.
    pub fn merge(&mut self, other: &MemoStats) {
        self.enabled &= other.enabled;
        self.ops_skipped += other.ops_skipped;
        self.ops_executed += other.ops_executed;
        self.matrices_skipped += other.matrices_skipped;
        self.matrices_computed += other.matrices_computed;
        self.integrations_skipped += other.integrations_skipped;
        self.integrations_computed += other.integrations_computed;
        self.sets_deduped += other.sets_deduped;
        self.scale_pairs_skipped += other.scale_pairs_skipped;
    }
}

/// Directly-set buffer content, kept verbatim for exact dedup comparison.
#[derive(Clone, Debug, PartialEq)]
enum DirectContent {
    TipStates(Vec<u32>),
    TipPartials(Vec<u64>),
    Partials(Vec<u64>),
}

/// Bit patterns of one eigen system: (vectors, inverse vectors, values).
type EigenBits = (Vec<u64>, Vec<u64>, Vec<u64>);

/// How a partials destination got its current content.
#[derive(Clone, Copy, Debug, PartialEq)]
enum PartialsSig {
    /// Set directly; the bits live in `partials_content`.
    Direct,
    /// Produced by `op` when its inputs had these epochs.
    Op {
        op: Operation,
        c1: u64,
        m1: u64,
        c2: u64,
        m2: u64,
    },
}

/// How a transition-matrix buffer got its current content.
#[derive(Clone, Debug, PartialEq)]
enum MatrixSig {
    /// Set directly; the bits live in `matrix_content`.
    Direct,
    /// Derived from an eigen system and a branch length.
    Derived {
        eigen_index: usize,
        eigen_epoch: u64,
        rates_epoch: u64,
        t_bits: u64,
    },
}

/// How a scale buffer got its current content.
#[derive(Clone, Debug, PartialEq)]
enum ScaleSig {
    /// Zeroed by `reset_scale_factors`.
    Reset,
    /// Holds the per-op rescale factors written for `dest` at `dest_epoch`.
    OpScale { dest: usize, dest_epoch: u64 },
    /// Holds `reset` + `accumulate` of these `(scale index, epoch)` pairs.
    Accumulated(Vec<(usize, u64)>),
}

/// Signature of the most recent root/edge integration.
#[derive(Clone, Debug, PartialEq)]
struct IntegrationSig {
    edge: bool,
    buffers: [usize; 3],
    part_epochs: [u64; 2],
    matrix_epoch: u64,
    catw: (usize, u64),
    freq: (usize, u64),
    pattern_weights_epoch: u64,
    scaling: ScalingMode,
    scale_epoch: u64,
}

fn bits(data: &[f64]) -> Vec<u64> {
    data.iter().map(|x| x.to_bits()).collect()
}

fn epoch_at(v: &[u64], i: usize) -> u64 {
    v.get(i).copied().unwrap_or(0)
}

fn bump_at(v: &mut Vec<u64>, i: usize, epoch: u64) {
    if i >= v.len() {
        v.resize(i + 1, 0);
    }
    v[i] = epoch;
}

fn slot<T>(v: &mut Vec<Option<T>>, i: usize) -> &mut Option<T> {
    if i >= v.len() {
        v.resize_with(i + 1, || None);
    }
    &mut v[i]
}

fn get_slot<T>(v: &[Option<T>], i: usize) -> Option<&T> {
    v.get(i).and_then(|s| s.as_ref())
}

/// The incremental memoization wrapper. See the module docs for the scheme;
/// created by the manager directly above the raw back-end.
pub struct MemoInstance {
    inner: Box<dyn BeagleInstance>,
    enabled: bool,
    clock: u64,

    partials_epoch: Vec<u64>,
    partials_sig: Vec<Option<PartialsSig>>,
    partials_content: Vec<Option<DirectContent>>,

    matrix_epoch: Vec<u64>,
    matrix_sig: Vec<Option<MatrixSig>>,
    matrix_content: Vec<Option<Vec<u64>>>,

    eigen_epoch: Vec<u64>,
    eigen_content: Vec<Option<EigenBits>>,

    freq_epoch: Vec<u64>,
    freq_content: Vec<Option<Vec<u64>>>,

    catw_epoch: Vec<u64>,
    catw_content: Vec<Option<Vec<u64>>>,

    rates_epoch: u64,
    rates_content: Option<Vec<u64>>,

    pattern_weights_epoch: u64,
    pattern_weights_content: Option<Vec<u64>>,

    scale_epoch: Vec<u64>,
    scale_sig: Vec<Option<ScaleSig>>,
    pending_resets: BTreeSet<usize>,

    last_integration: Option<(IntegrationSig, f64)>,

    stats: MemoStats,
    recorder: Recorder,
}

impl MemoInstance {
    /// Wrap a raw back-end instance.
    pub fn new(inner: Box<dyn BeagleInstance>) -> Self {
        let recorder = Recorder::new(inner.statistics().is_some());
        let cfg = *inner.config();
        Self {
            inner,
            enabled: true,
            clock: 0,
            partials_epoch: vec![0; cfg.partials_buffer_count],
            partials_sig: Vec::new(),
            partials_content: Vec::new(),
            matrix_epoch: vec![0; cfg.matrix_buffer_count],
            matrix_sig: Vec::new(),
            matrix_content: Vec::new(),
            eigen_epoch: vec![0; cfg.eigen_buffer_count],
            eigen_content: Vec::new(),
            freq_epoch: Vec::new(),
            freq_content: Vec::new(),
            catw_epoch: Vec::new(),
            catw_content: Vec::new(),
            rates_epoch: 0,
            rates_content: None,
            pattern_weights_epoch: 0,
            pattern_weights_content: None,
            scale_epoch: vec![0; cfg.scale_buffer_count],
            scale_sig: Vec::new(),
            pending_resets: BTreeSet::new(),
            last_integration: None,
            stats: MemoStats {
                enabled: true,
                ..MemoStats::default()
            },
            recorder,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Invalidate a partials destination after a failed or unknown write.
    fn poison_partials(&mut self, dest: usize) {
        let e = self.tick();
        bump_at(&mut self.partials_epoch, dest, e);
        *slot(&mut self.partials_sig, dest) = None;
        *slot(&mut self.partials_content, dest) = None;
        self.last_integration = None;
    }

    fn poison_matrix(&mut self, index: usize) {
        let e = self.tick();
        bump_at(&mut self.matrix_epoch, index, e);
        *slot(&mut self.matrix_sig, index) = None;
        *slot(&mut self.matrix_content, index) = None;
        self.last_integration = None;
    }

    fn poison_scale(&mut self, index: usize) {
        let e = self.tick();
        bump_at(&mut self.scale_epoch, index, e);
        *slot(&mut self.scale_sig, index) = None;
        self.pending_resets.remove(&index);
        self.last_integration = None;
    }

    /// Execute any deferred `reset_scale_factors` whose buffer appears in
    /// `touched`, preserving the client's original call order.
    fn flush_resets_among(&mut self, touched: &[usize]) -> Result<()> {
        for &c in touched {
            if !self.pending_resets.remove(&c) {
                continue;
            }
            match self.inner.reset_scale_factors(c) {
                Ok(()) => {
                    let e = self.tick();
                    bump_at(&mut self.scale_epoch, c, e);
                    *slot(&mut self.scale_sig, c) = Some(ScaleSig::Reset);
                }
                Err(e) => {
                    self.poison_scale(c);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Plan one operation list: split into skipped ops and a forwarded
    /// remainder, with the epoch/signature commits to apply on success.
    /// `tent` carries tentative epochs of destinations already planned for
    /// execution earlier in the same submission (sequential semantics).
    #[allow(clippy::type_complexity)]
    fn plan_ops(
        &self,
        operations: &[Operation],
        tent: &mut HashMap<usize, u64>,
        next_epoch: &mut u64,
    ) -> (
        Vec<Operation>,
        Vec<(Operation, PartialsSig, u64, Option<u64>)>,
        u64,
    ) {
        let mut forward = Vec::new();
        let mut commits = Vec::new();
        let mut skipped = 0u64;
        for &op in operations {
            let part_epoch = |b: usize| {
                tent.get(&b)
                    .copied()
                    .unwrap_or_else(|| epoch_at(&self.partials_epoch, b))
            };
            let sig = PartialsSig::Op {
                op,
                c1: part_epoch(op.child1),
                m1: epoch_at(&self.matrix_epoch, op.child1_matrix),
                c2: part_epoch(op.child2),
                m2: epoch_at(&self.matrix_epoch, op.child2_matrix),
            };
            let scale_clean = match op.dest_scale_write {
                None => true,
                Some(s) => {
                    // Skipping the op also skips its scale-factor write, so
                    // the scale buffer must already hold this op's factors
                    // for the destination's current content.
                    get_slot(&self.scale_sig, s)
                        == Some(&ScaleSig::OpScale {
                            dest: op.destination,
                            dest_epoch: part_epoch(op.destination),
                        })
                }
            };
            if self.enabled
                && scale_clean
                && get_slot(&self.partials_sig, op.destination) == Some(&sig)
            {
                skipped += 1;
                continue;
            }
            *next_epoch += 1;
            let dest_epoch = *next_epoch;
            tent.insert(op.destination, dest_epoch);
            let scale_epoch = op.dest_scale_write.map(|_| {
                *next_epoch += 1;
                *next_epoch
            });
            forward.push(op);
            commits.push((op, sig, dest_epoch, scale_epoch));
        }
        (forward, commits, skipped)
    }

    /// Apply the planned commits after the back-end accepted the forwarded
    /// operations.
    fn commit_ops(&mut self, commits: Vec<(Operation, PartialsSig, u64, Option<u64>)>) {
        for (op, sig, dest_epoch, scale_epoch) in commits {
            bump_at(&mut self.partials_epoch, op.destination, dest_epoch);
            *slot(&mut self.partials_sig, op.destination) = Some(sig);
            *slot(&mut self.partials_content, op.destination) = None;
            if let (Some(s), Some(se)) = (op.dest_scale_write, scale_epoch) {
                bump_at(&mut self.scale_epoch, s, se);
                *slot(&mut self.scale_sig, s) = Some(ScaleSig::OpScale {
                    dest: op.destination,
                    dest_epoch,
                });
            }
            self.clock = self.clock.max(dest_epoch).max(scale_epoch.unwrap_or(0));
        }
        self.last_integration = None;
    }

    /// Invalidate every destination of a failed forwarded submission.
    fn poison_ops(&mut self, commits: &[(Operation, PartialsSig, u64, Option<u64>)]) {
        for (op, _, _, _) in commits {
            self.poison_partials(op.destination);
            if let Some(s) = op.dest_scale_write {
                self.poison_scale(s);
            }
        }
    }

    fn skip_event(&mut self, what: &str, skipped: u64, total: usize) {
        self.stats.ops_skipped += skipped;
        let enabled = self.recorder.is_enabled();
        if enabled && skipped > 0 {
            self.recorder.event(EventKind::IncrementalSkip, || {
                format!("{what}: skipped {skipped}/{total} ops")
            });
        }
    }

    /// Dedup a small `set_*` payload: returns `true` when the stored
    /// content is bit-identical (caller may skip the forward when enabled).
    fn dedup_hit(stored: &Option<Vec<u64>>, new_bits: &[u64]) -> bool {
        stored.as_deref() == Some(new_bits)
    }
}

impl BeagleInstance for MemoInstance {
    fn details(&self) -> &InstanceDetails {
        self.inner.details()
    }

    fn config(&self) -> &InstanceConfig {
        self.inner.config()
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        let content = DirectContent::TipStates(states.to_vec());
        if get_slot(&self.partials_content, tip) == Some(&content) {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self.inner.set_tip_states(tip, states);
        }
        match self.inner.set_tip_states(tip, states) {
            Ok(()) => {
                let e = self.tick();
                bump_at(&mut self.partials_epoch, tip, e);
                *slot(&mut self.partials_sig, tip) = Some(PartialsSig::Direct);
                *slot(&mut self.partials_content, tip) = Some(content);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                self.poison_partials(tip);
                Err(e)
            }
        }
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        let content = DirectContent::TipPartials(bits(partials));
        if get_slot(&self.partials_content, tip) == Some(&content) {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self.inner.set_tip_partials(tip, partials);
        }
        match self.inner.set_tip_partials(tip, partials) {
            Ok(()) => {
                let e = self.tick();
                bump_at(&mut self.partials_epoch, tip, e);
                *slot(&mut self.partials_sig, tip) = Some(PartialsSig::Direct);
                *slot(&mut self.partials_content, tip) = Some(content);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                self.poison_partials(tip);
                Err(e)
            }
        }
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        let content = DirectContent::Partials(bits(partials));
        if get_slot(&self.partials_content, buffer) == Some(&content) {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self.inner.set_partials(buffer, partials);
        }
        match self.inner.set_partials(buffer, partials) {
            Ok(()) => {
                let e = self.tick();
                bump_at(&mut self.partials_epoch, buffer, e);
                *slot(&mut self.partials_sig, buffer) = Some(PartialsSig::Direct);
                *slot(&mut self.partials_content, buffer) = Some(content);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                self.poison_partials(buffer);
                Err(e)
            }
        }
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        self.inner.get_partials(buffer)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        let b = bits(weights);
        if Self::dedup_hit(&self.pattern_weights_content, &b) {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self.inner.set_pattern_weights(weights);
        }
        match self.inner.set_pattern_weights(weights) {
            Ok(()) => {
                self.pattern_weights_epoch = self.tick();
                self.pattern_weights_content = Some(b);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                self.pattern_weights_epoch = self.tick();
                self.pattern_weights_content = None;
                self.last_integration = None;
                Err(e)
            }
        }
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        let b = bits(frequencies);
        if get_slot(&self.freq_content, index).is_some_and(|c| c == &b) {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self.inner.set_state_frequencies(index, frequencies);
        }
        match self.inner.set_state_frequencies(index, frequencies) {
            Ok(()) => {
                let e = self.tick();
                bump_at(&mut self.freq_epoch, index, e);
                *slot(&mut self.freq_content, index) = Some(b);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                let t = self.tick();
                bump_at(&mut self.freq_epoch, index, t);
                *slot(&mut self.freq_content, index) = None;
                self.last_integration = None;
                Err(e)
            }
        }
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        let b = bits(rates);
        if Self::dedup_hit(&self.rates_content, &b) {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self.inner.set_category_rates(rates);
        }
        match self.inner.set_category_rates(rates) {
            Ok(()) => {
                self.rates_epoch = self.tick();
                self.rates_content = Some(b);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                self.rates_epoch = self.tick();
                self.rates_content = None;
                self.last_integration = None;
                Err(e)
            }
        }
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        let b = bits(weights);
        if get_slot(&self.catw_content, index).is_some_and(|c| c == &b) {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self.inner.set_category_weights(index, weights);
        }
        match self.inner.set_category_weights(index, weights) {
            Ok(()) => {
                let e = self.tick();
                bump_at(&mut self.catw_epoch, index, e);
                *slot(&mut self.catw_content, index) = Some(b);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                let t = self.tick();
                bump_at(&mut self.catw_epoch, index, t);
                *slot(&mut self.catw_content, index) = None;
                self.last_integration = None;
                Err(e)
            }
        }
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        let content = (bits(vectors), bits(inverse_vectors), bits(values));
        if get_slot(&self.eigen_content, index) == Some(&content) {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self
                .inner
                .set_eigen_decomposition(index, vectors, inverse_vectors, values);
        }
        match self
            .inner
            .set_eigen_decomposition(index, vectors, inverse_vectors, values)
        {
            Ok(()) => {
                let e = self.tick();
                bump_at(&mut self.eigen_epoch, index, e);
                *slot(&mut self.eigen_content, index) = Some(content);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                let t = self.tick();
                bump_at(&mut self.eigen_epoch, index, t);
                *slot(&mut self.eigen_content, index) = None;
                self.last_integration = None;
                Err(e)
            }
        }
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        if matrix_indices.len() != branch_lengths.len() {
            // Malformed call; let the back-end produce its usual error.
            return self.inner.update_transition_matrices(
                eigen_index,
                matrix_indices,
                branch_lengths,
            );
        }
        let eigen_epoch = epoch_at(&self.eigen_epoch, eigen_index);
        let mut fwd_idx = Vec::new();
        let mut fwd_len = Vec::new();
        let mut sigs = Vec::new();
        let mut skipped = 0u64;
        for (&idx, &t) in matrix_indices.iter().zip(branch_lengths) {
            let sig = MatrixSig::Derived {
                eigen_index,
                eigen_epoch,
                rates_epoch: self.rates_epoch,
                t_bits: t.to_bits(),
            };
            if self.enabled && get_slot(&self.matrix_sig, idx) == Some(&sig) {
                skipped += 1;
                continue;
            }
            fwd_idx.push(idx);
            fwd_len.push(t);
            sigs.push((idx, sig));
        }
        self.stats.matrices_skipped += skipped;
        if skipped > 0 && self.recorder.is_enabled() {
            let total = matrix_indices.len();
            self.recorder.event(EventKind::IncrementalSkip, || {
                format!("transition matrices: skipped {skipped}/{total}")
            });
        }
        if fwd_idx.is_empty() {
            return Ok(());
        }
        self.stats.matrices_computed += fwd_idx.len() as u64;
        match self
            .inner
            .update_transition_matrices(eigen_index, &fwd_idx, &fwd_len)
        {
            Ok(()) => {
                for (idx, sig) in sigs {
                    let e = self.tick();
                    bump_at(&mut self.matrix_epoch, idx, e);
                    *slot(&mut self.matrix_sig, idx) = Some(sig);
                    *slot(&mut self.matrix_content, idx) = None;
                }
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                for (idx, _) in sigs {
                    self.poison_matrix(idx);
                }
                Err(e)
            }
        }
    }

    fn update_transition_derivatives(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        d1_indices: &[usize],
        d2_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        // Derivative buffers are not modeled by signatures; invalidate every
        // written matrix so nothing downstream is ever falsely skipped.
        let r = self.inner.update_transition_derivatives(
            eigen_index,
            matrix_indices,
            d1_indices,
            d2_indices,
            branch_lengths,
        );
        for &idx in matrix_indices.iter().chain(d1_indices).chain(d2_indices) {
            self.poison_matrix(idx);
        }
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn integrate_edge_derivatives(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        d1_matrix: BufferId,
        d2_matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<(f64, f64, f64)> {
        if let ScalingMode::Cumulative(c) = scaling {
            self.flush_resets_among(&[c.0])?;
        }
        // Overwrites the back-end's site-likelihood state; drop the cached
        // integration so a later identical root/edge call re-executes.
        self.last_integration = None;
        self.inner.integrate_edge_derivatives(
            parent,
            child,
            matrix,
            d1_matrix,
            d2_matrix,
            category_weights,
            frequencies,
            scaling,
        )
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        let b = bits(matrix);
        if get_slot(&self.matrix_sig, index) == Some(&MatrixSig::Direct)
            && get_slot(&self.matrix_content, index).is_some_and(|c| c == &b)
        {
            self.stats.sets_deduped += 1;
            if self.enabled {
                return Ok(());
            }
            return self.inner.set_transition_matrix(index, matrix);
        }
        match self.inner.set_transition_matrix(index, matrix) {
            Ok(()) => {
                let e = self.tick();
                bump_at(&mut self.matrix_epoch, index, e);
                *slot(&mut self.matrix_sig, index) = Some(MatrixSig::Direct);
                *slot(&mut self.matrix_content, index) = Some(b);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                self.poison_matrix(index);
                Err(e)
            }
        }
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.inner.get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        let scale_targets: Vec<usize> = operations
            .iter()
            .filter_map(|op| op.dest_scale_write)
            .collect();
        self.flush_resets_among(&scale_targets)?;
        let mut tent = HashMap::new();
        let mut next_epoch = self.clock;
        let (forward, commits, skipped) = self.plan_ops(operations, &mut tent, &mut next_epoch);
        self.skip_event("update_partials", skipped, operations.len());
        if forward.is_empty() {
            return Ok(());
        }
        self.stats.ops_executed += forward.len() as u64;
        match self.inner.update_partials(&forward) {
            Ok(()) => {
                self.commit_ops(commits);
                Ok(())
            }
            Err(e) => {
                self.poison_ops(&commits);
                Err(e)
            }
        }
    }

    fn update_partials_by_levels(&mut self, levels: &[Vec<Operation>]) -> Result<()> {
        let scale_targets: Vec<usize> = levels
            .iter()
            .flatten()
            .filter_map(|op| op.dest_scale_write)
            .collect();
        self.flush_resets_among(&scale_targets)?;
        let mut tent = HashMap::new();
        let mut next_epoch = self.clock;
        let mut fwd_levels: Vec<Vec<Operation>> = Vec::new();
        let mut all_commits = Vec::new();
        let mut skipped = 0u64;
        let mut total = 0usize;
        for level in levels {
            total += level.len();
            let (forward, commits, s) = self.plan_ops(level, &mut tent, &mut next_epoch);
            skipped += s;
            all_commits.extend(commits);
            if !forward.is_empty() {
                fwd_levels.push(forward);
            }
        }
        self.skip_event("update_partials_by_levels", skipped, total);
        if fwd_levels.is_empty() {
            return Ok(());
        }
        self.stats.ops_executed += all_commits.len() as u64;
        match self.inner.update_partials_by_levels(&fwd_levels) {
            Ok(()) => {
                self.commit_ops(all_commits);
                Ok(())
            }
            Err(e) => {
                self.poison_ops(&all_commits);
                Err(e)
            }
        }
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        if self.enabled {
            if get_slot(&self.scale_sig, cumulative) == Some(&ScaleSig::Reset)
                && !self.pending_resets.contains(&cumulative)
            {
                // Already zeroed; re-zeroing is a no-op.
                self.stats.sets_deduped += 1;
                return Ok(());
            }
            // Defer: a matching accumulate may prove the whole pair clean.
            self.pending_resets.insert(cumulative);
            return Ok(());
        }
        match self.inner.reset_scale_factors(cumulative) {
            Ok(()) => {
                if get_slot(&self.scale_sig, cumulative) != Some(&ScaleSig::Reset) {
                    let e = self.tick();
                    bump_at(&mut self.scale_epoch, cumulative, e);
                    *slot(&mut self.scale_sig, cumulative) = Some(ScaleSig::Reset);
                    self.last_integration = None;
                }
                Ok(())
            }
            Err(e) => {
                self.poison_scale(cumulative);
                Err(e)
            }
        }
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        // A pending reset of one of the *source* buffers must land first.
        let sources: Vec<usize> = scale_indices
            .iter()
            .copied()
            .filter(|i| *i != cumulative)
            .collect();
        self.flush_resets_among(&sources)?;
        let candidate = ScaleSig::Accumulated(
            scale_indices
                .iter()
                .map(|&i| (i, epoch_at(&self.scale_epoch, i)))
                .collect(),
        );
        if self.enabled
            && self.pending_resets.contains(&cumulative)
            && get_slot(&self.scale_sig, cumulative) == Some(&candidate)
        {
            // The deferred reset + this accumulate would recreate exactly
            // the content the cumulative buffer already holds.
            self.pending_resets.remove(&cumulative);
            self.stats.scale_pairs_skipped += 1;
            if self.recorder.is_enabled() {
                let n = scale_indices.len();
                self.recorder.event(EventKind::IncrementalSkip, || {
                    format!("scale reset+accumulate({n}) pair at buffer {cumulative}")
                });
            }
            return Ok(());
        }
        self.flush_resets_among(&[cumulative])?;
        let fresh = get_slot(&self.scale_sig, cumulative) == Some(&ScaleSig::Reset);
        match self
            .inner
            .accumulate_scale_factors(scale_indices, cumulative)
        {
            Ok(()) => {
                let e = self.tick();
                bump_at(&mut self.scale_epoch, cumulative, e);
                // Only a reset-then-accumulate sequence yields reproducible
                // content; accumulating onto prior factors is not modeled.
                *slot(&mut self.scale_sig, cumulative) = fresh.then_some(candidate);
                self.last_integration = None;
                Ok(())
            }
            Err(e) => {
                self.poison_scale(cumulative);
                Err(e)
            }
        }
    }

    fn integrate_root(
        &mut self,
        root: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let scale_epoch = match scaling {
            ScalingMode::None => 0,
            ScalingMode::Cumulative(c) => {
                self.flush_resets_among(&[c.0])?;
                epoch_at(&self.scale_epoch, c.0)
            }
        };
        let sig = IntegrationSig {
            edge: false,
            buffers: [root.0, usize::MAX, usize::MAX],
            part_epochs: [epoch_at(&self.partials_epoch, root.0), 0],
            matrix_epoch: 0,
            catw: (
                category_weights.0,
                epoch_at(&self.catw_epoch, category_weights.0),
            ),
            freq: (frequencies.0, epoch_at(&self.freq_epoch, frequencies.0)),
            pattern_weights_epoch: self.pattern_weights_epoch,
            scaling,
            scale_epoch,
        };
        if self.enabled {
            if let Some((cached, value)) = &self.last_integration {
                if cached == &sig {
                    let v = *value;
                    self.stats.integrations_skipped += 1;
                    if self.recorder.is_enabled() {
                        self.recorder.event(EventKind::IncrementalSkip, || {
                            format!("root integration at buffer {root} -> {v}")
                        });
                    }
                    return Ok(v);
                }
            }
        }
        self.stats.integrations_computed += 1;
        let r = self
            .inner
            .integrate_root(root, category_weights, frequencies, scaling);
        self.last_integration = match &r {
            Ok(v) if v.is_finite() => Some((sig, *v)),
            _ => None,
        };
        r
    }

    fn integrate_edge(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let scale_epoch = match scaling {
            ScalingMode::None => 0,
            ScalingMode::Cumulative(c) => {
                self.flush_resets_among(&[c.0])?;
                epoch_at(&self.scale_epoch, c.0)
            }
        };
        let sig = IntegrationSig {
            edge: true,
            buffers: [parent.0, child.0, matrix.0],
            part_epochs: [
                epoch_at(&self.partials_epoch, parent.0),
                epoch_at(&self.partials_epoch, child.0),
            ],
            matrix_epoch: epoch_at(&self.matrix_epoch, matrix.0),
            catw: (
                category_weights.0,
                epoch_at(&self.catw_epoch, category_weights.0),
            ),
            freq: (frequencies.0, epoch_at(&self.freq_epoch, frequencies.0)),
            pattern_weights_epoch: self.pattern_weights_epoch,
            scaling,
            scale_epoch,
        };
        if self.enabled {
            if let Some((cached, value)) = &self.last_integration {
                if cached == &sig {
                    let v = *value;
                    self.stats.integrations_skipped += 1;
                    if self.recorder.is_enabled() {
                        self.recorder.event(EventKind::IncrementalSkip, || {
                            format!("edge integration {parent}->{child} -> {v}")
                        });
                    }
                    return Ok(v);
                }
            }
        }
        self.stats.integrations_computed += 1;
        let r = self.inner.integrate_edge(
            parent,
            child,
            matrix,
            category_weights,
            frequencies,
            scaling,
        );
        self.last_integration = match &r {
            Ok(v) if v.is_finite() => Some((sig, *v)),
            _ => None,
        };
        r
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        self.inner.get_site_log_likelihoods()
    }

    fn wait_for_computation(&mut self) -> Result<()> {
        self.inner.wait_for_computation()
    }

    fn simulated_time(&self) -> Option<std::time::Duration> {
        self.inner.simulated_time()
    }

    fn reset_simulated_time(&mut self) {
        self.inner.reset_simulated_time()
    }

    fn peek_simulated_time(&self) -> Option<std::time::Duration> {
        self.inner.peek_simulated_time()
    }

    fn queue_stats(&self) -> Option<crate::queue::QueueStats> {
        self.inner.queue_stats()
    }

    fn statistics(&self) -> Option<obs::InstanceStats> {
        let mut stats = self.inner.statistics()?;
        if let Some(own) = self.recorder.stats() {
            stats.merge(&own);
        }
        stats.ops_skipped += self.stats.ops_skipped;
        stats.matrices_skipped += self.stats.matrices_skipped;
        stats.integrations_skipped += self.stats.integrations_skipped;
        stats.sets_deduped += self.stats.sets_deduped + self.stats.scale_pairs_skipped;
        Some(stats)
    }

    fn take_journal(&mut self) -> Vec<obs::Event> {
        obs::merge_journals(self.inner.take_journal(), self.recorder.take_journal())
    }

    fn set_deadline(&mut self, deadline: Option<crate::deadline::Deadline>) {
        self.inner.set_deadline(deadline);
    }

    fn checkpoint(&mut self) -> Option<crate::checkpoint::Checkpoint> {
        self.inner.checkpoint()
    }

    fn set_incremental(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.stats.enabled = enabled;
        self.inner.set_incremental(enabled);
    }

    fn memo_stats(&self) -> Option<MemoStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BeagleError;
    use crate::flags::Flags;

    use std::sync::{Arc, Mutex};

    type CallLog = Arc<Mutex<Vec<String>>>;

    /// A back-end that logs every call so skips are observable, with an
    /// injectable `update_partials` failure for the poisoning tests.
    struct MockInstance {
        details: InstanceDetails,
        config: InstanceConfig,
        calls: CallLog,
        fail_updates: Arc<Mutex<u32>>,
    }

    impl MockInstance {
        fn log(&self, entry: impl Into<String>) {
            self.calls.lock().unwrap().push(entry.into());
        }
    }

    impl BeagleInstance for MockInstance {
        fn details(&self) -> &InstanceDetails {
            &self.details
        }
        fn config(&self) -> &InstanceConfig {
            &self.config
        }
        fn set_tip_states(&mut self, tip: usize, _: &[u32]) -> Result<()> {
            self.log(format!("tips:{tip}"));
            Ok(())
        }
        fn set_tip_partials(&mut self, tip: usize, _: &[f64]) -> Result<()> {
            self.log(format!("tpart:{tip}"));
            Ok(())
        }
        fn set_partials(&mut self, buffer: usize, _: &[f64]) -> Result<()> {
            self.log(format!("part:{buffer}"));
            Ok(())
        }
        fn get_partials(&self, _: usize) -> Result<Vec<f64>> {
            Ok(vec![])
        }
        fn set_pattern_weights(&mut self, _: &[f64]) -> Result<()> {
            self.log("weights");
            Ok(())
        }
        fn set_state_frequencies(&mut self, index: usize, _: &[f64]) -> Result<()> {
            self.log(format!("freq:{index}"));
            Ok(())
        }
        fn set_category_rates(&mut self, _: &[f64]) -> Result<()> {
            self.log("rates");
            Ok(())
        }
        fn set_category_weights(&mut self, index: usize, _: &[f64]) -> Result<()> {
            self.log(format!("catw:{index}"));
            Ok(())
        }
        fn set_eigen_decomposition(
            &mut self,
            index: usize,
            _: &[f64],
            _: &[f64],
            _: &[f64],
        ) -> Result<()> {
            self.log(format!("eigen:{index}"));
            Ok(())
        }
        fn update_transition_matrices(
            &mut self,
            _: usize,
            matrix_indices: &[usize],
            _: &[f64],
        ) -> Result<()> {
            self.log(format!("utm:{}", matrix_indices.len()));
            Ok(())
        }
        fn set_transition_matrix(&mut self, index: usize, _: &[f64]) -> Result<()> {
            self.log(format!("stm:{index}"));
            Ok(())
        }
        fn get_transition_matrix(&self, _: usize) -> Result<Vec<f64>> {
            Ok(vec![])
        }
        fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
            let mut fails = self.fail_updates.lock().unwrap();
            if *fails > 0 {
                *fails -= 1;
                return Err(BeagleError::InvalidConfiguration("injected".into()));
            }
            self.log(format!("up:{}", operations.len()));
            Ok(())
        }
        fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
            self.log(format!("reset:{cumulative}"));
            Ok(())
        }
        fn accumulate_scale_factors(&mut self, _: &[usize], cumulative: usize) -> Result<()> {
            self.log(format!("accum:{cumulative}"));
            Ok(())
        }
        fn integrate_root(
            &mut self,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: ScalingMode,
        ) -> Result<f64> {
            self.log("root");
            Ok(-42.0)
        }
        fn integrate_edge(
            &mut self,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: ScalingMode,
        ) -> Result<f64> {
            self.log("edge");
            Ok(-42.0)
        }
        fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
            Ok(vec![])
        }
    }

    fn wrapped() -> (MemoInstance, CallLog, Arc<Mutex<u32>>) {
        let calls: CallLog = Arc::new(Mutex::new(Vec::new()));
        let fail_updates = Arc::new(Mutex::new(0u32));
        let mock = MockInstance {
            details: InstanceDetails {
                implementation_name: "mock".into(),
                resource_name: "mock".into(),
                flags: Flags::NONE,
                thread_count: 1,
            },
            config: InstanceConfig::for_tree(4, 10, 4, 1),
            calls: calls.clone(),
            fail_updates: fail_updates.clone(),
        };
        (MemoInstance::new(Box::new(mock)), calls, fail_updates)
    }

    fn log(calls: &CallLog) -> Vec<String> {
        calls.lock().unwrap().clone()
    }

    fn op(dest: usize, c1: usize, c2: usize) -> Operation {
        Operation::new(dest, c1, c1, c2, c2)
    }

    /// The four-tip scaled traversal used by the round-trip tests.
    fn scaled_ops() -> Vec<Operation> {
        vec![
            op(4, 0, 1).with_scaling(4),
            op(5, 2, 3).with_scaling(5),
            op(6, 4, 5).with_scaling(6),
        ]
    }

    /// One full MCMC-style evaluation: data + model upload, matrices,
    /// scaled traversal, scale accumulation, scaled root integration.
    fn round(m: &mut MemoInstance) -> f64 {
        for tip in 0..4 {
            m.set_tip_states(tip, &[tip as u32; 10]).unwrap();
        }
        m.set_category_rates(&[1.0]).unwrap();
        m.set_category_weights(0, &[1.0]).unwrap();
        m.set_state_frequencies(0, &[0.25; 4]).unwrap();
        m.set_pattern_weights(&[1.0; 10]).unwrap();
        m.set_eigen_decomposition(0, &[1.0; 16], &[1.0; 16], &[0.5; 4])
            .unwrap();
        m.update_transition_matrices(0, &[0, 1, 2, 3], &[0.1, 0.2, 0.3, 0.4])
            .unwrap();
        m.update_partials(&scaled_ops()).unwrap();
        m.reset_scale_factors(7).unwrap();
        m.accumulate_scale_factors(&[4, 5, 6], 7).unwrap();
        m.integrate_root(
            BufferId(6),
            BufferId(0),
            BufferId(0),
            ScalingMode::cumulative(7),
        )
        .unwrap()
    }

    #[test]
    fn identical_sets_are_deduplicated() {
        let (mut m, calls, _) = wrapped();
        m.set_tip_states(0, &[1, 2]).unwrap();
        m.set_tip_states(0, &[1, 2]).unwrap();
        assert_eq!(log(&calls), vec!["tips:0"]);
        assert_eq!(m.memo_stats().unwrap().sets_deduped, 1);
        // A changed payload must reach the back-end again.
        m.set_tip_states(0, &[2, 2]).unwrap();
        assert_eq!(log(&calls), vec!["tips:0", "tips:0"]);
    }

    #[test]
    fn steady_state_round_is_fully_skipped() {
        let (mut m, calls, _) = wrapped();
        let first = round(&mut m);
        let after_first = log(&calls);
        assert!(after_first.contains(&"up:3".to_string()));
        assert!(after_first.contains(&"root".to_string()));

        let second = round(&mut m);
        assert_eq!(second.to_bits(), first.to_bits());
        assert_eq!(
            log(&calls),
            after_first,
            "a bit-identical round must not reach the back-end at all"
        );
        let stats = m.memo_stats().unwrap();
        assert_eq!(stats.ops_skipped, 3);
        assert_eq!(stats.matrices_skipped, 4);
        assert_eq!(stats.integrations_skipped, 1);
        assert_eq!(stats.scale_pairs_skipped, 1);
        assert_eq!(stats.sets_deduped, 9);
    }

    #[test]
    fn changed_branch_recomputes_only_the_dirty_path() {
        let (mut m, calls, _) = wrapped();
        round(&mut m);
        let baseline = log(&calls).len();
        // Perturb one branch: matrix 1 feeds op(4,..), whose new output
        // feeds op(6,..); op(5,..) is untouched and must stay skipped.
        m.update_transition_matrices(0, &[1], &[9.0]).unwrap();
        m.update_partials(&scaled_ops()).unwrap();
        m.reset_scale_factors(7).unwrap();
        m.accumulate_scale_factors(&[4, 5, 6], 7).unwrap();
        m.integrate_root(
            BufferId(6),
            BufferId(0),
            BufferId(0),
            ScalingMode::cumulative(7),
        )
        .unwrap();
        assert_eq!(
            log(&calls)[baseline..],
            ["utm:1", "up:2", "reset:7", "accum:7", "root"],
            "only the proposal-to-root path re-executes"
        );
    }

    #[test]
    fn toggling_skips_on_midrun_uses_the_maintained_bookkeeping() {
        let (mut m, calls, _) = wrapped();
        m.set_incremental(false);
        round(&mut m);
        let once = log(&calls).len();
        round(&mut m);
        assert_eq!(
            log(&calls).len(),
            2 * once,
            "disabled mode forwards every call"
        );
        // Bookkeeping ran the whole time, so enabling now skips immediately.
        m.set_incremental(true);
        round(&mut m);
        assert_eq!(log(&calls).len(), 2 * once);
        assert!(m.memo_stats().unwrap().total_skips() > 0);
    }

    #[test]
    fn failed_submission_poisons_its_destinations() {
        let (mut m, calls, fail) = wrapped();
        round(&mut m);
        // Dirty the left subtree, then fail its re-execution.
        m.set_tip_states(0, &[9; 10]).unwrap();
        *fail.lock().unwrap() = 1;
        assert!(m.update_partials(&scaled_ops()).is_err());
        let baseline = log(&calls).len();
        // The retry must re-forward the two failed destinations (4 and 6)
        // rather than falsely skipping them; op(5,..) stays clean.
        m.update_partials(&scaled_ops()).unwrap();
        assert_eq!(log(&calls)[baseline..], ["up:2"]);
        // The cached integration died with the poisoning: root re-executes.
        let before_root = log(&calls).len();
        m.reset_scale_factors(7).unwrap();
        m.accumulate_scale_factors(&[4, 5, 6], 7).unwrap();
        m.integrate_root(
            BufferId(6),
            BufferId(0),
            BufferId(0),
            ScalingMode::cumulative(7),
        )
        .unwrap();
        assert!(log(&calls)[before_root..].contains(&"root".to_string()));
    }

    #[test]
    fn merge_accumulates_counters() {
        let mut a = MemoStats {
            enabled: true,
            ops_skipped: 1,
            ops_executed: 2,
            ..MemoStats::default()
        };
        let b = MemoStats {
            enabled: false,
            ops_skipped: 10,
            sets_deduped: 3,
            ..MemoStats::default()
        };
        a.merge(&b);
        assert!(!a.enabled);
        assert_eq!(a.ops_skipped, 11);
        assert_eq!(a.ops_executed, 2);
        assert_eq!(a.sets_deduped, 3);
    }
}
