//! Per-resource health scoring and circuit breakers.
//!
//! Long-running multi-device work keeps meeting the same dead hardware: a
//! wedged GPU fails creation, gets retried by the next
//! `create_instance_auto`, wedges again, and every caller pays the watchdog
//! budget to rediscover what the last caller already knew. The
//! [`HealthRegistry`] centralizes that knowledge: every creation, launch,
//! and benchmark outcome is scored per resource (keyed by implementation
//! name), and a per-resource *circuit breaker* quarantines resources that
//! keep failing.
//!
//! # Breaker protocol
//!
//! Each resource's breaker follows the classical three-state protocol:
//!
//! * **Closed** — healthy; work flows normally. *Transient* failures
//!   accumulate in a sliding time window; crossing
//!   [`BreakerConfig::failure_threshold`] within [`BreakerConfig::window`]
//!   trips the breaker. *Hard* failures ([`Outcome::Timeout`],
//!   [`Outcome::Permanent`]) trip it immediately — a watchdog-cancelled hang
//!   or a dead device is not worth three confirmations.
//! * **Open** — quarantined; [`HealthRegistry::available`] answers `false`,
//!   so ranked instance creation and repartitioning skip the resource. After
//!   [`BreakerConfig::cooldown`] the breaker lazily moves to half-open on
//!   the next availability query.
//! * **HalfOpen** — probation; the resource may receive one probe (the
//!   benchmark workload, or real work). [`Outcome::Success`] closes the
//!   breaker; any failure reopens it and restarts the cooldown.
//!
//! Consultation is *fail-open*: selection paths that find every candidate
//! quarantined ignore the registry rather than fail the request — a wrong
//! health signal must degrade ranking, never availability.
//!
//! Transitions are returned from [`HealthRegistry::record`] so call sites
//! can emit matching observability events ([`crate::obs::EventKind`]'s
//! `BreakerOpen` / `BreakerHalfOpen` / `BreakerClosed`).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Identifies one hardware resource in the registry: the implementation
/// name reported by its factory (unique per
/// [`crate::ImplementationManager`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub String);

impl ResourceId {
    /// The implementation name this id wraps.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ResourceId {
    fn from(name: &str) -> Self {
        ResourceId(name.to_string())
    }
}

impl From<String> for ResourceId {
    fn from(name: String) -> Self {
        ResourceId(name)
    }
}

impl std::fmt::Display for ResourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// How one unit of work on a resource ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The work completed.
    Success,
    /// A retryable fault (momentary memory pressure, dropped launch).
    Transient,
    /// The watchdog cancelled a stalled launch
    /// ([`crate::BeagleError::Timeout`]). Hard failure: trips the breaker
    /// immediately.
    Timeout,
    /// A permanent device fault (device lost, unrecoverable allocation
    /// failure). Hard failure: trips the breaker immediately.
    Permanent,
}

/// Circuit-breaker state of one resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: work flows normally.
    Closed,
    /// Quarantined: the resource receives no work until the cooldown
    /// elapses.
    Open,
    /// Probation after cooldown: one probe decides between
    /// [`BreakerState::Closed`] and re-opening.
    HalfOpen,
}

impl BreakerState {
    /// Stable snake_case name (used as the JSON value).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Tuning knobs for every breaker in a registry.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Transient failures within [`Self::window`] that trip the breaker.
    pub failure_threshold: u32,
    /// Sliding window over which transient failures accumulate.
    pub window: Duration,
    /// Quarantine time before an open breaker moves to half-open.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            window: Duration::from_secs(30),
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Cumulative outcome counts for one resource.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCounts {
    /// Completed units of work.
    pub successes: u64,
    /// Retryable faults.
    pub transients: u64,
    /// Watchdog cancellations.
    pub timeouts: u64,
    /// Permanent device faults.
    pub permanents: u64,
}

/// A point-in-time view of one resource's health.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// The resource.
    pub id: ResourceId,
    /// Breaker state at snapshot time (cooldown expiry applied).
    pub state: BreakerState,
    /// Cumulative outcome counts.
    pub counts: HealthCounts,
}

impl HealthSnapshot {
    /// One JSON object (hand-rolled; the environment has no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"resource\":\"{}\",\"state\":\"{}\",\"successes\":{},\"transients\":{},\"timeouts\":{},\"permanents\":{}}}",
            self.id.0.replace('\\', "\\\\").replace('"', "\\\""),
            self.state.name(),
            self.counts.successes,
            self.counts.transients,
            self.counts.timeouts,
            self.counts.permanents,
        )
    }
}

/// One resource's breaker plus its score.
struct Breaker {
    state: BreakerState,
    /// Timestamps of transient failures inside the sliding window.
    recent_transients: Vec<Instant>,
    /// When the breaker last opened (meaningful in `Open`).
    opened_at: Instant,
    counts: HealthCounts,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            recent_transients: Vec::new(),
            opened_at: Instant::now(),
            counts: HealthCounts::default(),
        }
    }

    /// Apply the lazy cooldown transition: an open breaker whose cooldown
    /// has elapsed moves to half-open.
    fn settle(&mut self, config: &BreakerConfig) {
        if self.state == BreakerState::Open && self.opened_at.elapsed() >= config.cooldown {
            self.state = BreakerState::HalfOpen;
        }
    }

    fn open(&mut self) {
        self.state = BreakerState::Open;
        self.opened_at = Instant::now();
        self.recent_transients.clear();
    }
}

/// Thread-safe per-resource health scores and circuit breakers. One
/// registry per [`crate::ImplementationManager`]; shared with failover
/// layers via `Arc` so multi-device repartitioning and instance creation
/// consult the same quarantine decisions.
pub struct HealthRegistry {
    breakers: Mutex<HashMap<ResourceId, Breaker>>,
    config: Mutex<BreakerConfig>,
}

impl Default for HealthRegistry {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

impl HealthRegistry {
    /// An empty registry with these breaker knobs.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            breakers: Mutex::new(HashMap::new()),
            config: Mutex::new(config),
        }
    }

    /// Replace the breaker knobs (applies to future transitions).
    pub fn set_config(&self, config: BreakerConfig) {
        *self.config.lock() = config;
    }

    /// The current breaker knobs.
    pub fn config(&self) -> BreakerConfig {
        *self.config.lock()
    }

    /// Score one outcome for `id` and run the breaker protocol. Returns the
    /// `(from, to)` states when the breaker transitioned, `None` otherwise —
    /// so the call site can emit the matching observability event.
    pub fn record(
        &self,
        id: impl Into<ResourceId>,
        outcome: Outcome,
    ) -> Option<(BreakerState, BreakerState)> {
        let config = self.config();
        let mut breakers = self.breakers.lock();
        let b = breakers.entry(id.into()).or_insert_with(Breaker::new);
        b.settle(&config);
        let before = b.state;
        match outcome {
            Outcome::Success => {
                b.counts.successes += 1;
                if b.state == BreakerState::HalfOpen {
                    b.state = BreakerState::Closed;
                    b.recent_transients.clear();
                }
            }
            Outcome::Transient => {
                b.counts.transients += 1;
                match b.state {
                    // A probe that fails even transiently goes back to
                    // quarantine; probation earns no retry budget.
                    BreakerState::HalfOpen => b.open(),
                    BreakerState::Closed => {
                        let now = Instant::now();
                        b.recent_transients
                            .retain(|t| now.duration_since(*t) <= config.window);
                        b.recent_transients.push(now);
                        if b.recent_transients.len() >= config.failure_threshold as usize {
                            b.open();
                        }
                    }
                    BreakerState::Open => {}
                }
            }
            Outcome::Timeout | Outcome::Permanent => {
                match outcome {
                    Outcome::Timeout => b.counts.timeouts += 1,
                    _ => b.counts.permanents += 1,
                }
                // Hard failures trip (or re-trip) the breaker immediately.
                b.open();
            }
        }
        (before != b.state).then_some((before, b.state))
    }

    /// Whether `id` should receive work: closed and half-open breakers say
    /// yes (half-open work *is* the probe), open breakers say no until the
    /// cooldown elapses.
    pub fn available(&self, id: impl Into<ResourceId>) -> bool {
        self.state(id) != BreakerState::Open
    }

    /// The breaker state of `id` (cooldown expiry applied; unknown
    /// resources are closed).
    pub fn state(&self, id: impl Into<ResourceId>) -> BreakerState {
        let config = self.config();
        let mut breakers = self.breakers.lock();
        match breakers.get_mut(&id.into()) {
            Some(b) => {
                b.settle(&config);
                b.state
            }
            None => BreakerState::Closed,
        }
    }

    /// Cumulative outcome counts for `id`.
    pub fn counts(&self, id: impl Into<ResourceId>) -> HealthCounts {
        self.breakers
            .lock()
            .get(&id.into())
            .map(|b| b.counts)
            .unwrap_or_default()
    }

    /// Every scored resource, sorted by id for stable output.
    pub fn snapshot(&self) -> Vec<HealthSnapshot> {
        let config = self.config();
        let mut breakers = self.breakers.lock();
        let mut out: Vec<HealthSnapshot> = breakers
            .iter_mut()
            .map(|(id, b)| {
                b.settle(&config);
                HealthSnapshot {
                    id: id.clone(),
                    state: b.state,
                    counts: b.counts,
                }
            })
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// The whole registry as JSON lines (one resource per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cooldown() -> BreakerConfig {
        BreakerConfig {
            cooldown: Duration::ZERO,
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn unknown_resources_are_healthy() {
        let r = HealthRegistry::default();
        assert!(r.available("never-seen"));
        assert_eq!(r.state("never-seen"), BreakerState::Closed);
        assert_eq!(r.counts("never-seen"), HealthCounts::default());
    }

    #[test]
    fn hard_failures_open_immediately() {
        let r = HealthRegistry::default();
        let t = r.record("gpu", Outcome::Timeout);
        assert_eq!(t, Some((BreakerState::Closed, BreakerState::Open)));
        assert!(!r.available("gpu"));

        let r = HealthRegistry::default();
        assert!(r.record("gpu", Outcome::Permanent).is_some());
        assert!(!r.available("gpu"));
    }

    #[test]
    fn transient_failures_trip_at_the_threshold() {
        let r = HealthRegistry::default();
        assert!(r.record("gpu", Outcome::Transient).is_none());
        assert!(r.record("gpu", Outcome::Transient).is_none());
        assert!(r.available("gpu"), "below threshold stays closed");
        let t = r.record("gpu", Outcome::Transient);
        assert_eq!(t, Some((BreakerState::Closed, BreakerState::Open)));
        assert!(!r.available("gpu"));
    }

    #[test]
    fn successes_do_not_reset_the_transient_window() {
        let r = HealthRegistry::default();
        r.record("gpu", Outcome::Transient);
        r.record("gpu", Outcome::Success);
        r.record("gpu", Outcome::Transient);
        r.record("gpu", Outcome::Success);
        // Third transient inside the window still trips.
        assert!(r.record("gpu", Outcome::Transient).is_some());
        assert_eq!(r.state("gpu"), BreakerState::Open);
    }

    #[test]
    fn cooldown_moves_to_half_open_and_success_closes() {
        let r = HealthRegistry::new(fast_cooldown());
        r.record("gpu", Outcome::Timeout);
        // Zero cooldown: the next query settles to half-open.
        assert_eq!(r.state("gpu"), BreakerState::HalfOpen);
        assert!(r.available("gpu"), "half-open work is the probe");
        let t = r.record("gpu", Outcome::Success);
        assert_eq!(t, Some((BreakerState::HalfOpen, BreakerState::Closed)));
        assert_eq!(r.state("gpu"), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let r = HealthRegistry::new(fast_cooldown());
        r.record("gpu", Outcome::Permanent);
        assert_eq!(r.state("gpu"), BreakerState::HalfOpen);
        let t = r.record("gpu", Outcome::Transient);
        assert_eq!(t, Some((BreakerState::HalfOpen, BreakerState::Open)));
        // Still zero cooldown, so it settles right back to probation —
        // but the counts show the failed probe.
        assert_eq!(r.counts("gpu").transients, 1);
    }

    #[test]
    fn open_breaker_blocks_until_cooldown() {
        let r = HealthRegistry::new(BreakerConfig {
            cooldown: Duration::from_secs(3600),
            ..BreakerConfig::default()
        });
        r.record("gpu", Outcome::Timeout);
        assert!(
            !r.available("gpu"),
            "hour-long cooldown cannot have elapsed"
        );
        assert_eq!(r.state("gpu"), BreakerState::Open);
    }

    #[test]
    fn snapshot_and_json() {
        let r = HealthRegistry::default();
        r.record("b-gpu", Outcome::Timeout);
        r.record("a-cpu", Outcome::Success);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id.name(), "a-cpu", "sorted by id");
        assert_eq!(snap[0].state, BreakerState::Closed);
        assert_eq!(snap[1].counts.timeouts, 1);
        let json = r.to_json_lines();
        assert_eq!(json.lines().count(), 2);
        assert!(json.contains("\"state\":\"closed\""));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(HealthRegistry::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.record("shared", Outcome::Success);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counts("shared").successes, 400);
    }
}
