//! Multi-device computation: one logical instance over several back-ends.
//!
//! The paper's conclusion describes this as the next step: "the improvements
//! described in this paper also allow users to execute in parallel on
//! multiple devices within a system, [but] this requires the client program
//! to partition the problem across site patterns and create a separate
//! library instance for each hardware device. We plan to further develop
//! BEAGLE so that computation can be dynamically load balanced across
//! multiple devices from within a single library instance."
//!
//! [`PartitionedInstance`] implements that plan: it owns one child instance
//! per device, splits the pattern range across them (optionally weighted by
//! per-device throughput), fans every API call out, runs `update_partials`
//! on all children *concurrently* (scoped threads — each child computes its
//! pattern slice on its own hardware), and reduces root/edge likelihoods by
//! summation. It implements [`BeagleInstance`] itself, so client code is
//! unchanged.

use crate::api::{BeagleInstance, InstanceConfig, InstanceDetails};
use crate::error::{BeagleError, Result};
use crate::flags::Flags;
use crate::manager::ImplementationManager;
use crate::ops::Operation;

/// One logical BEAGLE instance spread across several devices.
pub struct PartitionedInstance {
    parts: Vec<Box<dyn BeagleInstance>>,
    /// Pattern range `[start, end)` of each part, contiguous and covering
    /// the full pattern count.
    ranges: Vec<(usize, usize)>,
    config: InstanceConfig,
    details: InstanceDetails,
    /// Concatenated site log-likelihoods from the last integration.
    site_lnl: Vec<f64>,
}

/// Split `patterns` into contiguous ranges proportional to `weights`
/// (e.g. per-device GFLOPS). Every range is non-empty; weights must be
/// positive and at most `patterns` long.
pub fn weighted_ranges(patterns: usize, weights: &[f64]) -> Vec<(usize, usize)> {
    assert!(!weights.is_empty());
    assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
    assert!(weights.len() <= patterns, "more devices than patterns");
    let total: f64 = weights.iter().sum();
    let mut ranges = Vec::with_capacity(weights.len());
    let mut start = 0usize;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let mut end = ((acc / total) * patterns as f64).round() as usize;
        if i == weights.len() - 1 {
            end = patterns;
        }
        // Guarantee at least one pattern per part and monotone ends.
        end = end.clamp(start + 1, patterns - (weights.len() - 1 - i));
        ranges.push((start, end));
        start = end;
    }
    ranges
}

impl PartitionedInstance {
    /// Create a partitioned instance: one child per entry of `devices`,
    /// where each entry is the (preference, requirement) flag pair used to
    /// select that child's implementation, and `weights[i]` is its share of
    /// the pattern range (use per-device peak GFLOPS, or measured
    /// throughput from a calibration run).
    pub fn create(
        manager: &ImplementationManager,
        config: &InstanceConfig,
        devices: &[(Flags, Flags)],
        weights: &[f64],
    ) -> Result<Self> {
        config.validate()?;
        if devices.is_empty() || devices.len() != weights.len() {
            return Err(BeagleError::InvalidConfiguration(
                "need one positive weight per device".into(),
            ));
        }
        let ranges = weighted_ranges(config.pattern_count, weights);
        let mut parts = Vec::with_capacity(devices.len());
        for (&(prefs, reqs), &(p0, p1)) in devices.iter().zip(&ranges) {
            let mut sub = *config;
            sub.pattern_count = p1 - p0;
            parts.push(manager.create_instance(&sub, prefs, reqs)?);
        }
        Ok(Self::from_parts(parts, ranges, *config))
    }

    /// Assemble from already-created children (one per pattern range).
    pub fn from_parts(
        parts: Vec<Box<dyn BeagleInstance>>,
        ranges: Vec<(usize, usize)>,
        config: InstanceConfig,
    ) -> Self {
        assert_eq!(parts.len(), ranges.len());
        assert_eq!(ranges.first().map(|r| r.0), Some(0));
        assert_eq!(ranges.last().map(|r| r.1), Some(config.pattern_count));
        for (part, &(p0, p1)) in parts.iter().zip(&ranges) {
            assert_eq!(part.config().pattern_count, p1 - p0, "child sized to its range");
        }
        let names: Vec<&str> = parts
            .iter()
            .map(|p| p.details().implementation_name.as_str())
            .collect();
        let details = InstanceDetails {
            implementation_name: format!("Partitioned[{}]", names.join(" + ")),
            resource_name: format!("{} devices", parts.len()),
            flags: parts
                .iter()
                .fold(Flags::NONE, |acc, p| acc | p.details().flags),
            thread_count: parts.iter().map(|p| p.details().thread_count).sum(),
        };
        let site_lnl = vec![0.0; config.pattern_count];
        Self { parts, ranges, config, details, site_lnl }
    }

    /// Number of child devices.
    pub fn device_count(&self) -> usize {
        self.parts.len()
    }

    /// The pattern range assigned to child `i`.
    pub fn range(&self, i: usize) -> (usize, usize) {
        self.ranges[i]
    }

    /// Borrow child `i` (for inspection in tests/diagnostics).
    pub fn part(&self, i: usize) -> &dyn BeagleInstance {
        self.parts[i].as_ref()
    }

    /// Extract child `i`'s `[category][pattern][state]` sub-buffer from a
    /// full-problem buffer with `per_pattern` values per pattern.
    fn slice_blocked(&self, i: usize, data: &[f64], per_pattern: usize, categories: usize) -> Vec<f64> {
        let (p0, p1) = self.ranges[i];
        let n_pat = self.config.pattern_count;
        let mut out = Vec::with_capacity(categories * (p1 - p0) * per_pattern);
        for c in 0..categories {
            let base = (c * n_pat + p0) * per_pattern;
            out.extend_from_slice(&data[base..base + (p1 - p0) * per_pattern]);
        }
        out
    }

    /// Run a fallible per-part call on every child.
    fn for_each(
        &mut self,
        mut f: impl FnMut(usize, &mut dyn BeagleInstance) -> Result<()>,
    ) -> Result<()> {
        for (i, part) in self.parts.iter_mut().enumerate() {
            f(i, part.as_mut())?;
        }
        Ok(())
    }
}

impl BeagleInstance for PartitionedInstance {
    fn details(&self) -> &InstanceDetails {
        &self.details
    }

    fn config(&self) -> &InstanceConfig {
        &self.config
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        if states.len() != self.config.pattern_count {
            return Err(BeagleError::DimensionMismatch {
                what: "tip states",
                expected: self.config.pattern_count,
                got: states.len(),
            });
        }
        let ranges = self.ranges.clone();
        self.for_each(|i, part| part.set_tip_states(tip, &states[ranges[i].0..ranges[i].1]))
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        let per = self.config.state_count;
        if partials.len() != self.config.pattern_count * per {
            return Err(BeagleError::DimensionMismatch {
                what: "tip partials",
                expected: self.config.pattern_count * per,
                got: partials.len(),
            });
        }
        let ranges = self.ranges.clone();
        self.for_each(|i, part| {
            let (p0, p1) = ranges[i];
            part.set_tip_partials(tip, &partials[p0 * per..p1 * per])
        })
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        if partials.len() != self.config.partials_len() {
            return Err(BeagleError::DimensionMismatch {
                what: "partials",
                expected: self.config.partials_len(),
                got: partials.len(),
            });
        }
        let chunks: Vec<Vec<f64>> = (0..self.parts.len())
            .map(|i| self.slice_blocked(i, partials, self.config.state_count, self.config.category_count))
            .collect();
        self.for_each(|i, part| part.set_partials(buffer, &chunks[i]))
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        // Re-interleave children's [cat][pattern][state] blocks.
        let s = self.config.state_count;
        let n_pat = self.config.pattern_count;
        let n_cat = self.config.category_count;
        let mut out = vec![0.0; self.config.partials_len()];
        for (i, part) in self.parts.iter().enumerate() {
            let sub = part.get_partials(buffer)?;
            let (p0, p1) = self.ranges[i];
            let width = (p1 - p0) * s;
            for c in 0..n_cat {
                let dst = (c * n_pat + p0) * s;
                out[dst..dst + width].copy_from_slice(&sub[c * width..(c + 1) * width]);
            }
        }
        Ok(out)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        if weights.len() != self.config.pattern_count {
            return Err(BeagleError::DimensionMismatch {
                what: "pattern weights",
                expected: self.config.pattern_count,
                got: weights.len(),
            });
        }
        let ranges = self.ranges.clone();
        self.for_each(|i, part| part.set_pattern_weights(&weights[ranges[i].0..ranges[i].1]))
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.for_each(|_, part| part.set_state_frequencies(index, frequencies))
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.for_each(|_, part| part.set_category_rates(rates))
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.for_each(|_, part| part.set_category_weights(index, weights))
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.for_each(|_, part| {
            part.set_eigen_decomposition(index, vectors, inverse_vectors, values)
        })
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.for_each(|_, part| {
            part.update_transition_matrices(eigen_index, matrix_indices, branch_lengths)
        })
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.for_each(|_, part| part.set_transition_matrix(index, matrix))
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.parts[0].get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        // The payoff: every device computes its pattern slice concurrently.
        let mut results: Vec<Result<()>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .parts
                .iter_mut()
                .map(|part| scope.spawn(move || part.update_partials(operations)))
                .collect();
            results = handles.into_iter().map(|h| h.join().expect("no panics")).collect();
        });
        results.into_iter().collect()
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        self.for_each(|_, part| part.reset_scale_factors(cumulative))
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        self.for_each(|_, part| part.accumulate_scale_factors(scale_indices, cumulative))
    }

    fn calculate_root_log_likelihoods(
        &mut self,
        root_buffer: usize,
        category_weights_index: usize,
        frequencies_index: usize,
        cumulative_scale: Option<usize>,
    ) -> Result<f64> {
        let mut total = 0.0;
        for (i, part) in self.parts.iter_mut().enumerate() {
            total += part.calculate_root_log_likelihoods(
                root_buffer,
                category_weights_index,
                frequencies_index,
                cumulative_scale,
            )?;
            let (p0, p1) = self.ranges[i];
            self.site_lnl[p0..p1].copy_from_slice(&part.get_site_log_likelihoods()?);
        }
        Ok(total)
    }

    fn calculate_edge_log_likelihoods(
        &mut self,
        parent_buffer: usize,
        child_buffer: usize,
        matrix_index: usize,
        category_weights_index: usize,
        frequencies_index: usize,
        cumulative_scale: Option<usize>,
    ) -> Result<f64> {
        let mut total = 0.0;
        for (i, part) in self.parts.iter_mut().enumerate() {
            total += part.calculate_edge_log_likelihoods(
                parent_buffer,
                child_buffer,
                matrix_index,
                category_weights_index,
                frequencies_index,
                cumulative_scale,
            )?;
            let (p0, p1) = self.ranges[i];
            self.site_lnl[p0..p1].copy_from_slice(&part.get_site_log_likelihoods()?);
        }
        Ok(total)
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        Ok(self.site_lnl.clone())
    }

    fn simulated_time(&self) -> Option<std::time::Duration> {
        // Devices run concurrently: the logical device time is the maximum
        // over children — defined only when every child is simulated.
        self.parts
            .iter()
            .map(|p| p.simulated_time())
            .try_fold(std::time::Duration::ZERO, |acc, t| t.map(|t| acc.max(t)))
    }

    fn reset_simulated_time(&mut self) {
        for p in &mut self.parts {
            p.reset_simulated_time();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_ranges_cover_and_respect_weights() {
        let r = weighted_ranges(1000, &[1.0, 3.0]);
        assert_eq!(r, vec![(0, 250), (250, 1000)]);
        let r = weighted_ranges(10, &[1.0, 1.0, 1.0]);
        assert_eq!(r.first().unwrap().0, 0);
        assert_eq!(r.last().unwrap().1, 10);
        let covered: usize = r.iter().map(|(a, b)| b - a).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn every_part_gets_at_least_one_pattern() {
        // Extreme weights must not starve a device.
        let r = weighted_ranges(10, &[1e-6, 1.0, 1e-6]);
        assert!(r.iter().all(|(a, b)| b > a), "{r:?}");
        assert_eq!(r.last().unwrap().1, 10);
    }

    #[test]
    #[should_panic(expected = "more devices than patterns")]
    fn too_many_devices_rejected() {
        weighted_ranges(2, &[1.0, 1.0, 1.0]);
    }
}
