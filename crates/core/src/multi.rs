//! Multi-device computation: one logical instance over several back-ends,
//! with automatic failover.
//!
//! The paper's conclusion describes this as the next step: "the improvements
//! described in this paper also allow users to execute in parallel on
//! multiple devices within a system, [but] this requires the client program
//! to partition the problem across site patterns and create a separate
//! library instance for each hardware device. We plan to further develop
//! BEAGLE so that computation can be dynamically load balanced across
//! multiple devices from within a single library instance."
//!
//! [`PartitionedInstance`] implements that plan: it owns one child instance
//! per device, splits the pattern range across them (optionally weighted by
//! per-device throughput), fans every API call out, runs `update_partials`
//! on all children *concurrently* (scoped threads — each child computes its
//! pattern slice on its own hardware), and reduces root/edge likelihoods by
//! summation. It implements [`BeagleInstance`] itself, so client code is
//! unchanged.
//!
//! # Fault tolerance
//!
//! Long multi-device runs meet hardware faults. Every fan-out call records
//! its inputs in a [`StateJournal`] and classifies child failures with
//! [`BeagleError::is_retryable`]:
//!
//! * **Transient** faults (dropped kernel launch, momentary memory
//!   pressure) are retried in place with bounded exponential backoff.
//! * **Permanent** device faults evict the dead child: the remaining
//!   weights are re-normalized, every survivor is re-created at its new
//!   pattern range through the [`ImplementationManager`], and the journal
//!   is replayed to rebuild their state — degrading gracefully down to a
//!   single device before any error reaches the client.
//!
//! Per-child retry counters and the eviction count are exposed via
//! [`PartitionedInstance::retry_counts`] /
//! [`PartitionedInstance::eviction_count`] so clients can monitor device
//! health.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use crate::balance::{BalancerConfig, LoadBalancer, PATTERN_STRIDE};
use crate::checkpoint::{Checkpoint, Provenance};
use crate::deadline::Deadline;
use crate::error::{BeagleError, Result};
use crate::flags::Flags;
use crate::health::{BreakerState, Outcome};
use crate::journal::StateJournal;
use crate::manager::ImplementationManager;
use crate::obs::{self, EventKind, Recorder};
use crate::ops::Operation;
use crate::spec::InstanceSpec;

/// How transient child failures are retried before escalating to eviction.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum in-place retries per call and child.
    pub max_retries: u32,
    /// Backoff ceiling before the first retry; doubles on each subsequent
    /// one.
    pub base_delay: Duration,
    /// Draw each actual backoff uniformly from `[0, ceiling]` ("full
    /// jitter") instead of sleeping the ceiling exactly. Decorrelates
    /// retries when several children hit the same transient fault, so they
    /// do not re-converge on the struggling device in lockstep.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay: Duration::from_micros(200),
            jitter: true,
        }
    }
}

/// splitmix64 step — the jitter source. Hand-rolled (the offline build has
/// no rand crate) and seeded with a fixed constant per instance, so retry
/// *timing* varies within a run but test runs stay reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How one child's implementation is (re-)selected when it must be created
/// or rebuilt: either pinned to an exact implementation name (the
/// auto-partitioned path pins each benchmark winner) or flag-ranked.
#[derive(Clone, Debug)]
pub struct ChildSelection {
    /// Pin to this exact implementation; `None` ranks by flags.
    pub implementation: Option<String>,
    /// Soft preference flags for ranking (and wrapper assembly).
    pub preferences: Flags,
    /// Hard requirement flags.
    pub requirements: Flags,
}

impl ChildSelection {
    /// Flag-ranked selection (the classic `(preference, requirement)` pair).
    pub fn from_flags(preferences: Flags, requirements: Flags) -> Self {
        Self {
            implementation: None,
            preferences,
            requirements,
        }
    }

    /// Selection pinned to an exact implementation name.
    pub fn named(
        implementation: impl Into<String>,
        preferences: Flags,
        requirements: Flags,
    ) -> Self {
        Self {
            implementation: Some(implementation.into()),
            preferences,
            requirements,
        }
    }
}

/// What eviction-and-rebuild needs: the registry that can re-create
/// children, plus each surviving child's selection and weight.
struct FailoverState {
    manager: Arc<ImplementationManager>,
    /// Implementation selection per surviving child.
    selections: Vec<ChildSelection>,
    /// Pattern-share weight per surviving child.
    weights: Vec<f64>,
}

/// One logical BEAGLE instance spread across several devices.
pub struct PartitionedInstance {
    parts: Vec<Box<dyn BeagleInstance>>,
    /// Pattern range `[start, end)` of each part, contiguous and covering
    /// the full pattern count.
    ranges: Vec<(usize, usize)>,
    config: InstanceConfig,
    details: InstanceDetails,
    /// Concatenated site log-likelihoods from the last integration.
    site_lnl: Vec<f64>,
    /// Everything needed to rebuild children after a device dies; `None`
    /// for instances assembled with [`PartitionedInstance::from_parts`],
    /// which cannot fail over (no manager to re-create children with).
    failover: Option<FailoverState>,
    journal: StateJournal,
    retry: RetryPolicy,
    /// Transient-fault retries performed per surviving child.
    retry_counts: Vec<u64>,
    /// Children permanently evicted since creation.
    evictions: u64,
    /// Per-launch watchdog budget, re-applied to children rebuilt after an
    /// eviction.
    deadline: Option<Deadline>,
    /// Adaptive load balancer (see [`crate::balance`]); `None` keeps the
    /// creation-time split for the life of the instance.
    balancer: Option<LoadBalancer>,
    /// Per-child elapsed time accumulated since the last integration — one
    /// balancer observation covers a whole batch (every `update_partials`
    /// since the previous integrate, plus the integrate itself), so cheap
    /// per-call kernels don't masquerade as high throughput.
    pending: Vec<Duration>,
    /// Successful pattern-range migrations since creation.
    rebalances: u64,
    /// splitmix64 state for retry-backoff jitter.
    rng: u64,
    /// Incremental-memoization choice, threaded into every child spec —
    /// including children rebuilt after an eviction or rebalance — and
    /// updated by runtime [`BeagleInstance::set_incremental`] calls.
    incremental: Option<bool>,
    /// Per-child [`crate::memo::MemoStats::total_skips`] watermark at the
    /// last batch close. A child whose skip count advanced during a batch
    /// produced a tainted timing sample (part of the work was elided), so
    /// the load balancer must not feed it into the EWMA rate estimate.
    skip_marks: Vec<u64>,
    /// Failover-event journal; enabled when any child records statistics.
    recorder: Recorder,
    /// Events drained from evicted children so their last words (the fault
    /// narration) survive the eviction.
    salvaged: Vec<obs::Event>,
}

/// Split `patterns` into contiguous ranges proportional to `weights`
/// (e.g. per-device GFLOPS). Every range is non-empty; weights must be
/// positive and at most `patterns` long. Split points are rounded to
/// [`PATTERN_STRIDE`] so no slice boundary lands inside a SIMD padding
/// block (see [`weighted_ranges_aligned`] for a custom stride).
pub fn weighted_ranges(patterns: usize, weights: &[f64]) -> Result<Vec<(usize, usize)>> {
    weighted_ranges_aligned(patterns, weights, PATTERN_STRIDE)
}

/// [`weighted_ranges`] with an explicit split-point alignment.
///
/// Interior split points are rounded to the nearest multiple of `stride`
/// whenever a multiple exists inside the feasible window (every part keeps
/// at least one pattern); when none does — tiny pattern counts, extreme
/// weights — that split falls back to the unaligned proportional point
/// rather than violating the cover invariants.
pub fn weighted_ranges_aligned(
    patterns: usize,
    weights: &[f64],
    stride: usize,
) -> Result<Vec<(usize, usize)>> {
    if weights.is_empty() {
        return Err(BeagleError::InvalidConfiguration(
            "need at least one partition weight".into(),
        ));
    }
    if !weights.iter().all(|&w| w > 0.0 && w.is_finite()) {
        return Err(BeagleError::InvalidConfiguration(format!(
            "partition weights must be positive, got {weights:?}"
        )));
    }
    if weights.len() > patterns {
        return Err(BeagleError::InvalidConfiguration(format!(
            "more devices ({}) than patterns ({patterns})",
            weights.len()
        )));
    }
    let stride = stride.max(1);
    let total: f64 = weights.iter().sum();
    let mut ranges = Vec::with_capacity(weights.len());
    let mut start = 0usize;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let ideal = (acc / total) * patterns as f64;
        let end = if i == weights.len() - 1 {
            patterns
        } else {
            // Feasible window: at least one pattern here, at least one for
            // each remaining part.
            let lo = start + 1;
            let hi = patterns - (weights.len() - 1 - i);
            let mut end = ((ideal / stride as f64).round() as usize).saturating_mul(stride);
            if end < lo {
                end = lo.div_ceil(stride) * stride;
            }
            if end > hi {
                end = hi / stride * stride;
            }
            if end < lo || end > hi {
                // No aligned point fits the window; take the unaligned one.
                end = (ideal.round() as usize).clamp(lo, hi);
            }
            end
        };
        ranges.push((start, end));
        start = end;
    }
    Ok(ranges)
}

/// Whether a child failure that survived retries warrants evicting the
/// child (device-level faults) rather than propagating (bad arguments,
/// numerical failures — eviction cannot fix those).
fn is_evictable(e: &BeagleError) -> bool {
    matches!(
        e,
        BeagleError::Device { .. }
            | BeagleError::ResourceExhausted { .. }
            | BeagleError::Timeout { .. }
    )
}

impl PartitionedInstance {
    /// Create a partitioned instance: one child per entry of `devices`,
    /// where each entry is the (preference, requirement) flag pair used to
    /// select that child's implementation, and `weights[i]` is its share of
    /// the pattern range (use per-device peak GFLOPS, or measured
    /// throughput from a calibration run). The manager is retained so dead
    /// children can be replaced at runtime (see the module docs).
    pub fn create(
        manager: &Arc<ImplementationManager>,
        config: &InstanceConfig,
        devices: &[(Flags, Flags)],
        weights: &[f64],
    ) -> Result<Self> {
        let selections = devices
            .iter()
            .map(|&(prefs, reqs)| ChildSelection::from_flags(prefs, reqs))
            .collect();
        Self::create_with_selections(
            manager,
            &InstanceSpec::with_config(*config),
            selections,
            weights,
        )
    }

    /// Like [`PartitionedInstance::create`], but applying the robustness
    /// knobs of an [`InstanceSpec`]: its retry policy and its per-launch
    /// watchdog deadline (forwarded to every child, and re-applied to
    /// children rebuilt after an eviction). The spec's sizing
    /// (`spec.config`) is used; its implementation/preference fields are
    /// ignored in favour of the per-device `devices` flags.
    pub fn create_with_spec(
        manager: &Arc<ImplementationManager>,
        spec: &InstanceSpec,
        devices: &[(Flags, Flags)],
        weights: &[f64],
    ) -> Result<Self> {
        let selections = devices
            .iter()
            .map(|&(prefs, reqs)| ChildSelection::from_flags(prefs, reqs))
            .collect();
        Self::create_with_selections(manager, spec, selections, weights)
    }

    /// The general creation path: one child per [`ChildSelection`] (pinned
    /// by name or flag-ranked), pattern ranges proportional to `weights`,
    /// and the spec's retry policy / watchdog deadline applied. This is what
    /// [`ImplementationManager::create_instance_auto_partitioned`] uses to
    /// pin each benchmark winner by name.
    pub fn create_with_selections(
        manager: &Arc<ImplementationManager>,
        spec: &InstanceSpec,
        selections: Vec<ChildSelection>,
        weights: &[f64],
    ) -> Result<Self> {
        let config = spec.config;
        config.validate()?;
        if selections.is_empty() || selections.len() != weights.len() {
            return Err(BeagleError::InvalidConfiguration(
                "need one positive weight per device".into(),
            ));
        }
        let ranges = weighted_ranges(config.pattern_count, weights)?;
        let mut parts = Vec::with_capacity(selections.len());
        for (i, (sel, &(p0, p1))) in selections.iter().zip(&ranges).enumerate() {
            let part = Self::build_child(manager, &config, sel, p1 - p0, spec.incremental)
                .map_err(|e| BeagleError::ChildCreationFailed {
                    child: i,
                    device: match &sel.implementation {
                        Some(name) => name.clone(),
                        None => format!("prefs {} / reqs {}", sel.preferences, sel.requirements),
                    },
                    source: Box::new(e),
                })?;
            parts.push(part);
        }
        let mut inst = Self::from_parts(parts, ranges, config)?;
        inst.incremental = spec.incremental;
        inst.failover = Some(FailoverState {
            manager: Arc::clone(manager),
            selections,
            weights: weights.to_vec(),
        });
        if let Some(retry) = spec.retry {
            inst.set_retry_policy(retry);
        }
        if spec.deadline.is_some() {
            inst.set_deadline(spec.deadline);
        }
        Ok(inst)
    }

    /// Create one child sized for `patterns` patterns according to `sel`.
    fn build_child(
        manager: &ImplementationManager,
        config: &InstanceConfig,
        sel: &ChildSelection,
        patterns: usize,
        incremental: Option<bool>,
    ) -> Result<Box<dyn BeagleInstance>> {
        let mut sub = *config;
        sub.pattern_count = patterns;
        let mut spec = InstanceSpec::with_config(sub)
            .prefer(sel.preferences)
            .require(sel.requirements);
        spec.incremental = incremental;
        if let Some(name) = &sel.implementation {
            spec = spec.named(name.clone());
        }
        manager.create_from_spec(&spec)
    }

    /// Assemble from already-created children (one per pattern range).
    /// Instances built this way cannot fail over — without the manager
    /// there is no way to replace a dead child — but transient-fault
    /// retries still apply.
    pub fn from_parts(
        parts: Vec<Box<dyn BeagleInstance>>,
        ranges: Vec<(usize, usize)>,
        config: InstanceConfig,
    ) -> Result<Self> {
        if parts.len() != ranges.len() || parts.is_empty() {
            return Err(BeagleError::InvalidConfiguration(format!(
                "need one child per pattern range, got {} children / {} ranges",
                parts.len(),
                ranges.len()
            )));
        }
        if ranges.first().map(|r| r.0) != Some(0)
            || ranges.last().map(|r| r.1) != Some(config.pattern_count)
            || ranges.windows(2).any(|w| w[0].1 != w[1].0)
        {
            return Err(BeagleError::InvalidConfiguration(format!(
                "ranges must contiguously cover 0..{}, got {ranges:?}",
                config.pattern_count
            )));
        }
        for (i, (part, &(p0, p1))) in parts.iter().zip(&ranges).enumerate() {
            if part.config().pattern_count != p1 - p0 {
                return Err(BeagleError::InvalidConfiguration(format!(
                    "child {i} sized for {} patterns but assigned range {p0}..{p1}",
                    part.config().pattern_count
                )));
            }
        }
        let details = Self::aggregate_details(&parts);
        let site_lnl = vec![0.0; config.pattern_count];
        let retry_counts = vec![0; parts.len()];
        let n_parts = parts.len();
        let recorder = Recorder::new(parts.iter().any(|p| p.statistics().is_some()));
        Ok(Self {
            parts,
            ranges,
            config,
            details,
            site_lnl,
            failover: None,
            journal: StateJournal::new(),
            retry: RetryPolicy::default(),
            retry_counts,
            evictions: 0,
            deadline: None,
            balancer: None,
            pending: vec![Duration::ZERO; n_parts],
            rebalances: 0,
            rng: 0x5eed_0fbe_a91e,
            incremental: None,
            skip_marks: vec![0; n_parts],
            salvaged: Vec::new(),
            recorder,
        })
    }

    /// Details aggregated over the *current* children. Must be re-derived
    /// whenever the child set or layout changes (eviction, rebalance) — the
    /// implementation name, OR'd capability flags, and summed thread count
    /// all describe the live children, not the creation-time ones.
    fn aggregate_details(parts: &[Box<dyn BeagleInstance>]) -> InstanceDetails {
        let names: Vec<&str> = parts
            .iter()
            .map(|p| p.details().implementation_name.as_str())
            .collect();
        InstanceDetails {
            implementation_name: format!("Partitioned[{}]", names.join(" + ")),
            resource_name: format!("{} devices", parts.len()),
            flags: parts
                .iter()
                .fold(Flags::NONE, |acc, p| acc | p.details().flags),
            thread_count: parts.iter().map(|p| p.details().thread_count).sum(),
        }
    }

    /// Re-derive `self.details` from the live children (called after every
    /// eviction and every rebalance).
    fn refresh_details(&mut self) {
        self.details = Self::aggregate_details(&self.parts);
    }

    /// Number of child devices.
    pub fn device_count(&self) -> usize {
        self.parts.len()
    }

    /// The pattern range assigned to child `i`.
    pub fn range(&self, i: usize) -> (usize, usize) {
        self.ranges[i]
    }

    /// Borrow child `i` (for inspection in tests/diagnostics).
    pub fn part(&self, i: usize) -> &dyn BeagleInstance {
        self.parts[i].as_ref()
    }

    /// Replace the transient-failure retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Transient-fault retries performed so far, per surviving child.
    pub fn retry_counts(&self) -> &[u64] {
        &self.retry_counts
    }

    /// Children permanently evicted since creation.
    pub fn eviction_count(&self) -> u64 {
        self.evictions
    }

    /// Successful pattern-range migrations since creation.
    pub fn rebalance_count(&self) -> u64 {
        self.rebalances
    }

    /// Switch on adaptive load balancing (see [`crate::balance`]): every
    /// batch (the `update_partials` calls since the previous integration,
    /// plus the integration that closes it) feeds per-child elapsed times
    /// into an EWMA throughput estimate, and when the predicted makespan
    /// skew of the current split exceeds `config.skew_threshold` the
    /// children are rebuilt at new measured-throughput ranges. Requires
    /// failover state (a retained manager) to migrate; without it the
    /// balancer measures but any proposed migration is dropped.
    pub fn enable_balancing(&mut self, config: BalancerConfig) {
        self.balancer = Some(LoadBalancer::new(self.parts.len(), config));
        self.pending = vec![Duration::ZERO; self.parts.len()];
        // Baseline the skip watermarks so skips from before balancing was
        // enabled don't taint the first batch.
        self.skip_marks = self
            .parts
            .iter()
            .map(|p| p.memo_stats().map_or(0, |s| s.total_skips()))
            .collect();
    }

    /// The adaptive balancer, if [`Self::enable_balancing`] was called.
    pub fn balancer(&self) -> Option<&LoadBalancer> {
        self.balancer.as_ref()
    }

    /// Migrate to new pattern ranges proportional to `weights` (one per
    /// child, positive). The same migration the adaptive path performs, but
    /// at an explicit weighting — deterministic test harnesses drive every
    /// intermediate configuration through this. Returns `Ok(false)` when
    /// the weighting maps to the ranges already in place.
    pub fn rebalance_to(&mut self, weights: &[f64]) -> Result<bool> {
        let stride = self
            .balancer
            .as_ref()
            .map_or(PATTERN_STRIDE, |b| b.config().stride);
        let ranges = weighted_ranges_aligned(self.config.pattern_count, weights, stride)?;
        self.apply_rebalance(&ranges, weights)
    }

    /// Close the batch an integration just finished: each clean child's
    /// integrate `observations` entry, plus whatever `update_partials` time
    /// it accumulated in `pending` since the previous integration, becomes
    /// one balancer throughput sample. Children that retried mid-batch have
    /// their pending time discarded (tainted sample), and so do children
    /// whose incremental-memoization layer skipped any work during the
    /// batch — a batch that elided kernels measures the memo cache, not the
    /// device, and would poison the EWMA rate estimate.
    fn observe_batch(&mut self, observations: Vec<(usize, Duration)>) {
        if let Some(balancer) = &mut self.balancer {
            for (i, elapsed) in observations {
                let skips = self.parts[i].memo_stats().map_or(0, |s| s.total_skips());
                if skips != self.skip_marks[i] {
                    self.skip_marks[i] = skips;
                    continue;
                }
                let (p0, p1) = self.ranges[i];
                balancer.observe(i, p1 - p0, self.pending[i] + elapsed);
            }
        }
        self.pending.fill(Duration::ZERO);
    }

    /// Ask the balancer whether the measured throughputs justify a
    /// migration, and perform it if so. Called at batch boundaries (after
    /// an integration completes) — never mid-batch, so children are always
    /// migrated at a consistent journaled state. Migration failures abort
    /// the attempt and keep the current children; the balancer will simply
    /// propose again after the next batch.
    fn maybe_rebalance(&mut self) {
        if self.failover.is_none() {
            return;
        }
        let Some(balancer) = &mut self.balancer else {
            return;
        };
        let Some((ranges, weights)) = balancer.plan(self.config.pattern_count, &self.ranges) else {
            return;
        };
        let _ = self.apply_rebalance(&ranges, &weights);
    }

    /// Migrate pattern slices between children: rebuild every child at its
    /// new range and replay the journal slice into it (tip data, pattern
    /// weights, partials, scale state — the full recorded state), then
    /// atomically swap the child set. Any creation or replay failure aborts
    /// the whole migration with the old children untouched.
    fn apply_rebalance(&mut self, new_ranges: &[(usize, usize)], weights: &[f64]) -> Result<bool> {
        if new_ranges == self.ranges.as_slice() {
            return Ok(false);
        }
        let Some(failover) = &self.failover else {
            return Err(BeagleError::InvalidConfiguration(
                "cannot rebalance without failover state (no manager to rebuild children with)"
                    .into(),
            ));
        };
        if new_ranges.len() != self.parts.len() || weights.len() != self.parts.len() {
            return Err(BeagleError::InvalidConfiguration(format!(
                "rebalance needs one range and weight per child, got {} ranges / {} weights / {} children",
                new_ranges.len(),
                weights.len(),
                self.parts.len()
            )));
        }
        let mut new_parts: Vec<Box<dyn BeagleInstance>> = Vec::with_capacity(new_ranges.len());
        for (i, (sel, &(p0, p1))) in failover.selections.iter().zip(new_ranges).enumerate() {
            let built = Self::build_child(
                &failover.manager,
                &self.config,
                sel,
                p1 - p0,
                self.incremental,
            )
            .and_then(|mut inst| {
                inst.set_deadline(self.deadline);
                self.journal
                    .replay_slice(inst.as_mut(), &self.config, p0, p1)
                    .map(|()| inst)
            });
            match built {
                Ok(inst) => new_parts.push(inst),
                Err(e) => {
                    self.recorder.event(EventKind::Rebalance, || {
                        format!("aborted child={i} cause={e}")
                    });
                    return Err(e);
                }
            }
        }
        // Commit: salvage the outgoing children's event journals (their
        // narration should survive the migration), then swap.
        let old_ranges = std::mem::replace(&mut self.ranges, new_ranges.to_vec());
        for mut old in std::mem::replace(&mut self.parts, new_parts) {
            self.salvaged =
                obs::merge_journals(std::mem::take(&mut self.salvaged), old.take_journal());
        }
        if let Some(failover) = &mut self.failover {
            failover.weights = weights.to_vec();
        }
        self.retry_counts = vec![0; self.parts.len()];
        self.pending = vec![Duration::ZERO; self.parts.len()];
        self.skip_marks = vec![0; self.parts.len()];
        self.refresh_details();
        self.rebalances += 1;
        self.recorder.event(EventKind::Rebalance, || {
            format!(
                "from={old_ranges:?} to={:?} weights={weights:?}",
                self.ranges
            )
        });
        Ok(true)
    }

    /// Recompute the global log-likelihood from the concatenated per-pattern
    /// site values, in pattern order — the exact left-to-right reduction
    /// `Σ widen(wᵖ)·widen(lnlᵖ)` every single-instance back-end performs
    /// (scalar, SIMD and accelerator kernels all accumulate this way). The
    /// children's own partial totals are discarded: summing them would group
    /// the additions at partition boundaries and drift from the
    /// single-instance bits. Weights are re-cast through each child's
    /// precision so the parent multiplies the same widened operands the
    /// child's kernel did.
    fn reduce_total(&self) -> f64 {
        let weights = self.journal.pattern_weights();
        let mut total = 0.0;
        for (part, &(p0, p1)) in self.parts.iter().zip(&self.ranges) {
            let single = part.details().flags.contains(Flags::PRECISION_SINGLE);
            for p in p0..p1 {
                let w = weights.map_or(1.0, |w| w[p]);
                let w = if single { w as f32 as f64 } else { w };
                total += w * self.site_lnl[p];
            }
        }
        total
    }

    /// Extract child `i`'s `[category][pattern][state]` sub-buffer from a
    /// full-problem buffer with `per_pattern` values per pattern.
    fn slice_blocked(
        &self,
        i: usize,
        data: &[f64],
        per_pattern: usize,
        categories: usize,
    ) -> Vec<f64> {
        let (p0, p1) = self.ranges[i];
        let n_pat = self.config.pattern_count;
        let mut out = Vec::with_capacity(categories * (p1 - p0) * per_pattern);
        for c in 0..categories {
            let base = (c * n_pat + p0) * per_pattern;
            out.extend_from_slice(&data[base..base + (p1 - p0) * per_pattern]);
        }
        out
    }

    /// Run `call` on child `i`, retrying transient failures with bounded
    /// exponential backoff (full-jittered when the policy asks for it).
    fn call_with_retry(
        retry: RetryPolicy,
        rng: &mut u64,
        retry_count: &mut u64,
        part: &mut dyn BeagleInstance,
        mut call: impl FnMut(&mut dyn BeagleInstance) -> Result<()>,
    ) -> Result<()> {
        let mut ceiling = retry.base_delay;
        for _ in 0..retry.max_retries {
            match call(part) {
                Err(e) if e.is_retryable() => {
                    *retry_count += 1;
                    let delay = if retry.jitter {
                        ceiling.mul_f64(splitmix64(rng) as f64 / u64::MAX as f64)
                    } else {
                        ceiling
                    };
                    std::thread::sleep(delay);
                    ceiling *= 2;
                }
                other => return other,
            }
        }
        call(part)
    }

    /// Report a child outcome to the manager's health registry (no-op for
    /// instances without failover state — they have no manager) and surface
    /// any breaker transition in the event journal.
    fn note_health(&mut self, resource: &str, outcome: Outcome) {
        let Some(failover) = &self.failover else {
            return;
        };
        if let Some((_, to)) = failover.manager.health().record(resource, outcome) {
            let kind = match to {
                BreakerState::Open => EventKind::BreakerOpen,
                BreakerState::HalfOpen => EventKind::BreakerHalfOpen,
                BreakerState::Closed => EventKind::BreakerClosed,
            };
            self.recorder
                .event(kind, || format!("resource={resource} after={outcome:?}"));
        }
    }

    /// Evict child `dead` (its failure `cause` already survived retries),
    /// then rebuild every survivor at its re-balanced pattern range and
    /// replay the journal into it. Survivors whose re-creation or replay
    /// fails are evicted too; the cause surfaces once no child remains or
    /// this instance has no failover state.
    fn evict_and_rebuild(&mut self, dead: usize, cause: BeagleError) -> Result<()> {
        let dead_resource = self.parts[dead].details().implementation_name.clone();
        let outcome = if matches!(cause, BeagleError::Timeout { .. }) {
            Outcome::Timeout
        } else {
            Outcome::Permanent
        };
        self.note_health(&dead_resource, outcome);
        let Some(failover) = &mut self.failover else {
            return Err(cause);
        };
        self.evictions += 1;
        self.recorder.event(EventKind::FailoverEviction, || {
            format!(
                "child={dead} cause={cause} survivors={}",
                self.parts.len() - 1
            )
        });
        // Salvage the dying child's event journal before dropping it: it
        // recorded the fault's own narration (e.g. the watchdog
        // cancellation that caused this eviction).
        let mut dying = self.parts.remove(dead);
        self.salvaged =
            obs::merge_journals(std::mem::take(&mut self.salvaged), dying.take_journal());
        drop(dying);
        failover.selections.remove(dead);
        failover.weights.remove(dead);
        self.retry_counts.remove(dead);
        self.pending.remove(dead);
        self.skip_marks.remove(dead);
        if let Some(b) = &mut self.balancer {
            b.remove_part(dead);
        }

        loop {
            if failover.selections.is_empty() {
                return Err(cause);
            }
            // An eviction is an immediate rebalance over the survivors:
            // when the balancer has settled throughput estimates, the
            // rebuild uses *measured* weights rather than the stale
            // creation-time shares.
            if let Some(thr) = self.balancer.as_ref().and_then(|b| b.throughputs()) {
                if thr.len() == failover.weights.len() {
                    failover.weights = thr;
                    self.recorder.event(EventKind::Rebalance, || {
                        format!(
                            "trigger=eviction survivors={} weights={:?}",
                            failover.selections.len(),
                            failover.weights
                        )
                    });
                }
            }
            let ranges = weighted_ranges(self.config.pattern_count, &failover.weights)?;
            let mut new_parts: Vec<Box<dyn BeagleInstance>> = Vec::with_capacity(ranges.len());
            let mut doomed: Option<usize> = None;
            for (j, (sel, &(p0, p1))) in failover.selections.iter().zip(&ranges).enumerate() {
                let rebuilt = Self::build_child(
                    &failover.manager,
                    &self.config,
                    sel,
                    p1 - p0,
                    self.incremental,
                )
                .and_then(|mut inst| {
                    // Restore the watchdog budget before replay: a
                    // replacement device can stall during replay too.
                    inst.set_deadline(self.deadline);
                    self.journal
                        .replay_slice(inst.as_mut(), &self.config, p0, p1)
                        .map(|()| inst)
                });
                match rebuilt {
                    Ok(inst) => new_parts.push(inst),
                    Err(_) => {
                        doomed = Some(j);
                        break;
                    }
                }
            }
            match doomed {
                None => {
                    self.retry_counts = vec![0; new_parts.len()];
                    self.pending = vec![Duration::ZERO; new_parts.len()];
                    self.skip_marks = vec![0; new_parts.len()];
                    self.parts = new_parts;
                    self.ranges = ranges;
                    self.refresh_details();
                    return Ok(());
                }
                Some(j) => {
                    self.evictions += 1;
                    self.recorder.event(EventKind::FailoverEviction, || {
                        format!(
                            "child={j} cause=rebuild-failed survivors={}",
                            failover.selections.len() - 1
                        )
                    });
                    failover.selections.remove(j);
                    failover.weights.remove(j);
                    self.pending.remove(j);
                    self.skip_marks.remove(j);
                    if let Some(b) = &mut self.balancer {
                        b.remove_part(j);
                    }
                }
            }
        }
    }

    /// Fan a *journaled* call out to every child with retry and eviction.
    /// The call's input must already be recorded: after an eviction the
    /// journal replay has re-applied it to every rebuilt child, so the
    /// fan-out is complete without re-running `call`.
    fn fan_out_recorded(
        &mut self,
        mut call: impl FnMut(usize, (usize, usize), &mut dyn BeagleInstance) -> Result<()>,
    ) -> Result<()> {
        let mut failure: Option<(usize, BeagleError)> = None;
        for i in 0..self.parts.len() {
            let retry = self.retry;
            let range = self.ranges[i];
            let before = self.retry_counts[i];
            let r = Self::call_with_retry(
                retry,
                &mut self.rng,
                &mut self.retry_counts[i],
                self.parts[i].as_mut(),
                |p| call(i, range, p),
            );
            let retries = self.retry_counts[i] - before;
            if retries > 0 {
                self.recorder.event(EventKind::FailoverRetry, || {
                    format!("child={i} retries={retries} ok={}", r.is_ok())
                });
                let resource = self.parts[i].details().implementation_name.clone();
                for _ in 0..retries {
                    self.note_health(&resource, Outcome::Transient);
                }
            }
            if let Err(e) = r {
                failure = Some((i, e));
                break;
            }
        }
        let Some((i, e)) = failure else {
            return Ok(());
        };
        if !is_evictable(&e) {
            return Err(e);
        }
        // Journal replay inside the rebuild re-applies the recorded input
        // to every surviving child, completing this fan-out.
        self.evict_and_rebuild(i, e)
    }
}

impl BeagleInstance for PartitionedInstance {
    fn details(&self) -> &InstanceDetails {
        &self.details
    }

    fn config(&self) -> &InstanceConfig {
        &self.config
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        if states.len() != self.config.pattern_count {
            return Err(BeagleError::DimensionMismatch {
                what: "tip states",
                expected: self.config.pattern_count,
                got: states.len(),
            });
        }
        self.journal.record_tip_states(tip, states);
        self.fan_out_recorded(|_, (p0, p1), part| part.set_tip_states(tip, &states[p0..p1]))
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        let per = self.config.state_count;
        if partials.len() != self.config.pattern_count * per {
            return Err(BeagleError::DimensionMismatch {
                what: "tip partials",
                expected: self.config.pattern_count * per,
                got: partials.len(),
            });
        }
        self.journal.record_tip_partials(tip, partials);
        self.fan_out_recorded(|_, (p0, p1), part| {
            part.set_tip_partials(tip, &partials[p0 * per..p1 * per])
        })
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        if partials.len() != self.config.partials_len() {
            return Err(BeagleError::DimensionMismatch {
                what: "partials",
                expected: self.config.partials_len(),
                got: partials.len(),
            });
        }
        self.journal.record_partials(buffer, partials);
        let chunks: Vec<Vec<f64>> = (0..self.parts.len())
            .map(|i| {
                self.slice_blocked(
                    i,
                    partials,
                    self.config.state_count,
                    self.config.category_count,
                )
            })
            .collect();
        self.fan_out_recorded(|i, _, part| part.set_partials(buffer, &chunks[i]))
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        // Re-interleave children's [cat][pattern][state] blocks.
        let s = self.config.state_count;
        let n_pat = self.config.pattern_count;
        let n_cat = self.config.category_count;
        let mut out = vec![0.0; self.config.partials_len()];
        for (i, part) in self.parts.iter().enumerate() {
            let sub = part.get_partials(buffer)?;
            let (p0, p1) = self.ranges[i];
            let width = (p1 - p0) * s;
            for c in 0..n_cat {
                let dst = (c * n_pat + p0) * s;
                out[dst..dst + width].copy_from_slice(&sub[c * width..(c + 1) * width]);
            }
        }
        Ok(out)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        if weights.len() != self.config.pattern_count {
            return Err(BeagleError::DimensionMismatch {
                what: "pattern weights",
                expected: self.config.pattern_count,
                got: weights.len(),
            });
        }
        self.journal.record_pattern_weights(weights);
        self.fan_out_recorded(|_, (p0, p1), part| part.set_pattern_weights(&weights[p0..p1]))
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.journal.record_frequencies(index, frequencies);
        self.fan_out_recorded(|_, _, part| part.set_state_frequencies(index, frequencies))
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.journal.record_category_rates(rates);
        self.fan_out_recorded(|_, _, part| part.set_category_rates(rates))
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.journal.record_category_weights(index, weights);
        self.fan_out_recorded(|_, _, part| part.set_category_weights(index, weights))
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.journal
            .record_eigen(index, vectors, inverse_vectors, values);
        self.fan_out_recorded(|_, _, part| {
            part.set_eigen_decomposition(index, vectors, inverse_vectors, values)
        })
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.journal
            .record_matrix_updates(eigen_index, matrix_indices, branch_lengths);
        self.fan_out_recorded(|_, _, part| {
            part.update_transition_matrices(eigen_index, matrix_indices, branch_lengths)
        })
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.journal.record_matrix(index, matrix);
        self.fan_out_recorded(|_, _, part| part.set_transition_matrix(index, matrix))
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.parts[0].get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        self.journal.record_operations(operations);
        // The payoff: every device computes its pattern slice concurrently.
        // Each child's elapsed time — modeled device time when it simulates
        // one (injected stalls charge the simulated clock, not the wall),
        // wall time otherwise — doubles as the load balancer's throughput
        // sample for that child.
        let mut results: Vec<(Result<()>, Duration)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .parts
                .iter_mut()
                .map(|part| {
                    scope.spawn(move || {
                        // Peek, never flush: reading the real simulated
                        // clock on a queued child would execute its
                        // deferred work right here.
                        let sim0 = part.peek_simulated_time();
                        let t0 = Instant::now();
                        let r = part.update_partials(operations);
                        let wall = t0.elapsed();
                        let elapsed = part
                            .peek_simulated_time()
                            .zip(sim0)
                            .map(|(t1, t0)| t1.saturating_sub(t0))
                            .filter(|d| !d.is_zero())
                            .unwrap_or(wall);
                        (r, elapsed)
                    })
                })
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect();
        });
        // Accumulate clean first-try successes into the per-child batch
        // cost; the balancer observes the whole batch once, when the next
        // integration closes it. A sample that includes a fault, retry
        // backoff, or rebuild says nothing about throughput.
        if self.balancer.is_some() {
            for (i, (r, elapsed)) in results.iter().enumerate() {
                if r.is_ok() {
                    self.pending[i] += *elapsed;
                }
            }
        }
        let results: Vec<Result<()>> = results.into_iter().map(|(r, _)| r).collect();
        // Retry transient failures serially; escalate the first
        // unrecoverable one.
        let mut fatal: Option<(usize, BeagleError)> = None;
        for (i, r) in results.into_iter().enumerate() {
            let Err(e) = r else { continue };
            let retried = if e.is_retryable() {
                // The serial re-call below is itself the first retry of the
                // failed parallel attempt.
                self.retry_counts[i] += 1;
                let retry = self.retry;
                let before = self.retry_counts[i];
                let r = Self::call_with_retry(
                    retry,
                    &mut self.rng,
                    &mut self.retry_counts[i],
                    self.parts[i].as_mut(),
                    |p| p.update_partials(operations),
                );
                let retries = 1 + self.retry_counts[i] - before;
                self.recorder.event(EventKind::FailoverRetry, || {
                    format!("child={i} retries={retries} ok={}", r.is_ok())
                });
                let resource = self.parts[i].details().implementation_name.clone();
                for _ in 0..retries {
                    self.note_health(&resource, Outcome::Transient);
                }
                r
            } else {
                Err(e)
            };
            if let Err(e) = retried {
                fatal = Some((i, e));
                break;
            }
        }
        let Some((i, e)) = fatal else {
            return Ok(());
        };
        if !is_evictable(&e) {
            return Err(e);
        }
        // The operations were journaled above, so the rebuild's replay runs
        // them on every surviving child.
        self.evict_and_rebuild(i, e)
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        self.journal.record_scale_reset(cumulative);
        self.fan_out_recorded(|_, _, part| part.reset_scale_factors(cumulative))
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        self.journal
            .record_scale_accumulation(scale_indices, cumulative);
        self.fan_out_recorded(|_, _, part| part.accumulate_scale_factors(scale_indices, cumulative))
    }

    fn integrate_root(
        &mut self,
        root: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        // Integration is not journaled (it writes no instance state), so on
        // eviction the whole reduction restarts against the rebuilt
        // children. Bounded: every round either returns or evicts.
        'round: for _ in 0..=self.parts.len() {
            let mut observations: Vec<(usize, Duration)> = Vec::with_capacity(self.parts.len());
            for i in 0..self.parts.len() {
                let retry = self.retry;
                let before = self.retry_counts[i];
                // Peek so a queued child's pending batch flushes *inside*
                // the timed integrate below, not here.
                let sim0 = self.parts[i].peek_simulated_time();
                let t0 = Instant::now();
                let r = Self::call_with_retry(
                    retry,
                    &mut self.rng,
                    &mut self.retry_counts[i],
                    self.parts[i].as_mut(),
                    |p| {
                        p.integrate_root(root, category_weights, frequencies, scaling)?;
                        Ok(())
                    },
                );
                let wall = t0.elapsed();
                let retries = self.retry_counts[i] - before;
                if retries > 0 {
                    self.recorder.event(EventKind::FailoverRetry, || {
                        format!("child={i} retries={retries} ok={}", r.is_ok())
                    });
                }
                if let Err(e) = r {
                    if !is_evictable(&e) {
                        return Err(e);
                    }
                    self.evict_and_rebuild(i, e)?;
                    continue 'round;
                }
                if retries == 0 {
                    // Integration flushes any queued work, so for queued
                    // children this sample carries the batch's real cost.
                    let elapsed = self.parts[i]
                        .peek_simulated_time()
                        .zip(sim0)
                        .map(|(t1, t0)| t1.saturating_sub(t0))
                        .filter(|d| !d.is_zero())
                        .unwrap_or(wall);
                    observations.push((i, elapsed));
                }
                let resource = self.parts[i].details().implementation_name.clone();
                self.note_health(&resource, Outcome::Success);
                let (p0, p1) = self.ranges[i];
                self.site_lnl[p0..p1].copy_from_slice(&self.parts[i].get_site_log_likelihoods()?);
            }
            // Reduce before any migration: the per-range precision casts
            // must match the children that produced these site values.
            let total = self.reduce_total();
            self.observe_batch(observations);
            self.maybe_rebalance();
            return Ok(total);
        }
        unreachable!("eviction loop is bounded by the child count");
    }

    fn integrate_edge(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        'round: for _ in 0..=self.parts.len() {
            let mut observations: Vec<(usize, Duration)> = Vec::with_capacity(self.parts.len());
            for i in 0..self.parts.len() {
                let retry = self.retry;
                let before = self.retry_counts[i];
                // Peek so a queued child's pending batch flushes *inside*
                // the timed integrate below, not here.
                let sim0 = self.parts[i].peek_simulated_time();
                let t0 = Instant::now();
                let r = Self::call_with_retry(
                    retry,
                    &mut self.rng,
                    &mut self.retry_counts[i],
                    self.parts[i].as_mut(),
                    |p| {
                        p.integrate_edge(
                            parent,
                            child,
                            matrix,
                            category_weights,
                            frequencies,
                            scaling,
                        )?;
                        Ok(())
                    },
                );
                let wall = t0.elapsed();
                let retries = self.retry_counts[i] - before;
                if retries > 0 {
                    self.recorder.event(EventKind::FailoverRetry, || {
                        format!("child={i} retries={retries} ok={}", r.is_ok())
                    });
                }
                if let Err(e) = r {
                    if !is_evictable(&e) {
                        return Err(e);
                    }
                    self.evict_and_rebuild(i, e)?;
                    continue 'round;
                }
                if retries == 0 {
                    let elapsed = self.parts[i]
                        .peek_simulated_time()
                        .zip(sim0)
                        .map(|(t1, t0)| t1.saturating_sub(t0))
                        .filter(|d| !d.is_zero())
                        .unwrap_or(wall);
                    observations.push((i, elapsed));
                }
                let resource = self.parts[i].details().implementation_name.clone();
                self.note_health(&resource, Outcome::Success);
                let (p0, p1) = self.ranges[i];
                self.site_lnl[p0..p1].copy_from_slice(&self.parts[i].get_site_log_likelihoods()?);
            }
            let total = self.reduce_total();
            self.observe_batch(observations);
            self.maybe_rebalance();
            return Ok(total);
        }
        unreachable!("eviction loop is bounded by the child count");
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        Ok(self.site_lnl.clone())
    }

    fn simulated_time(&self) -> Option<std::time::Duration> {
        // Devices run concurrently: the logical device time is the maximum
        // over children — defined only when every child is simulated.
        self.parts
            .iter()
            .map(|p| p.simulated_time())
            .try_fold(std::time::Duration::ZERO, |acc, t| t.map(|t| acc.max(t)))
    }

    fn peek_simulated_time(&self) -> Option<std::time::Duration> {
        self.parts
            .iter()
            .map(|p| p.peek_simulated_time())
            .try_fold(std::time::Duration::ZERO, |acc, t| t.map(|t| acc.max(t)))
    }

    fn reset_simulated_time(&mut self) {
        for p in &mut self.parts {
            p.reset_simulated_time();
        }
    }

    fn statistics(&self) -> Option<obs::InstanceStats> {
        if !self.recorder.is_enabled() {
            return None;
        }
        let mut merged = self.recorder.stats().unwrap_or_default();
        for p in &self.parts {
            if let Some(s) = p.statistics() {
                merged.merge(&s);
            }
        }
        Some(merged)
    }

    fn take_journal(&mut self) -> Vec<obs::Event> {
        let mut merged = obs::merge_journals(
            std::mem::take(&mut self.salvaged),
            self.recorder.take_journal(),
        );
        for p in &mut self.parts {
            merged = obs::merge_journals(merged, p.take_journal());
        }
        merged
    }

    fn set_deadline(&mut self, deadline: Option<Deadline>) {
        self.deadline = deadline;
        for p in &mut self.parts {
            p.set_deadline(deadline);
        }
    }

    fn checkpoint(&mut self) -> Option<Checkpoint> {
        // The failover journal holds the full-problem state (children only
        // see pattern slices), so it is exactly what a snapshot needs.
        // Provenance is generic (no flags): a restore ranks implementations
        // afresh, which is right — the original device layout may not exist
        // in the restoring process.
        let ckpt = Checkpoint {
            config: self.config,
            provenance: Provenance::default(),
            journal: self.journal.clone(),
        };
        self.recorder.event(EventKind::CheckpointSaved, || {
            format!(
                "config={}x{} ops={} children={}",
                self.config.tip_count,
                self.config.pattern_count,
                self.journal.operations().len(),
                self.parts.len()
            )
        });
        Some(ckpt)
    }

    fn set_incremental(&mut self, enabled: bool) {
        // Remember the toggle so children rebuilt after an eviction or
        // rebalance come up with the same memoization behaviour.
        self.incremental = Some(enabled);
        for p in &mut self.parts {
            p.set_incremental(enabled);
        }
    }

    fn memo_stats(&self) -> Option<crate::memo::MemoStats> {
        let mut agg: Option<crate::memo::MemoStats> = None;
        for p in &self.parts {
            if let Some(s) = p.memo_stats() {
                match &mut agg {
                    Some(a) => a.merge(&s),
                    None => agg = Some(s),
                }
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_ranges_cover_and_respect_weights() {
        // The 1:3 split point (250) rounds down to the pattern stride (248).
        let r = weighted_ranges(1000, &[1.0, 3.0]).unwrap();
        assert_eq!(r, vec![(0, 248), (248, 1000)]);
        let r = weighted_ranges(10, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(r.first().unwrap().0, 0);
        assert_eq!(r.last().unwrap().1, 10);
        let covered: usize = r.iter().map(|(a, b)| b - a).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn split_points_are_stride_aligned() {
        // Regression: the proportional split used to land mid-padding-block
        // (e.g. 250 with an 8-pattern SIMD stride), so a migrated slice
        // started inside a partially-filled vector. Every interior split
        // must now be a stride multiple whenever the window allows one.
        for weights in [
            vec![1.0, 3.0],
            vec![9.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![2.5, 1.0, 4.0],
        ] {
            let r = weighted_ranges(1024, &weights).unwrap();
            for w in r.windows(2) {
                assert_eq!(w[0].1 % PATTERN_STRIDE, 0, "unaligned split in {r:?}");
            }
            assert_eq!(r.last().unwrap().1, 1024);
        }
    }

    #[test]
    fn explicit_stride_respected_with_fallback() {
        let r = weighted_ranges_aligned(1000, &[1.0, 1.0], 16).unwrap();
        assert_eq!(r, vec![(0, 496), (496, 1000)]);
        // Stride 1 reproduces the exact proportional split.
        let r = weighted_ranges_aligned(1000, &[1.0, 3.0], 1).unwrap();
        assert_eq!(r, vec![(0, 250), (250, 1000)]);
        // Infeasible alignment (tiny windows) falls back without violating
        // the cover invariants.
        let r = weighted_ranges_aligned(5, &[1.0, 1.0, 1.0], 8).unwrap();
        assert_eq!(r.last().unwrap().1, 5);
        assert!(r.iter().all(|(a, b)| b > a), "{r:?}");
    }

    #[test]
    fn every_part_gets_at_least_one_pattern() {
        // Extreme weights must not starve a device.
        let r = weighted_ranges(10, &[1e-6, 1.0, 1e-6]).unwrap();
        assert!(r.iter().all(|(a, b)| b > a), "{r:?}");
        assert_eq!(r.last().unwrap().1, 10);
    }

    #[test]
    fn too_many_devices_rejected() {
        let err = weighted_ranges(2, &[1.0, 1.0, 1.0]);
        assert!(
            matches!(err, Err(BeagleError::InvalidConfiguration(ref m)) if m.contains("more devices")),
            "{err:?}"
        );
    }

    #[test]
    fn degenerate_weights_rejected() {
        assert!(weighted_ranges(10, &[]).is_err());
        assert!(weighted_ranges(10, &[1.0, 0.0]).is_err());
        assert!(weighted_ranges(10, &[1.0, -2.0]).is_err());
    }
}
