//! Implementation management: the plugin registry and resource selection.
//!
//! BEAGLE's implementation-management layer "loads the available
//! implementations, makes them available to the client program, and passes
//! API commands to the selected implementation". In BEAGLE-RS the same role
//! is played by [`ImplementationManager`]: back-end crates register
//! [`ImplementationFactory`] plugins; `create_instance` filters them by the
//! client's *requirement* flags and ranks the survivors by how many
//! *preference* flags they satisfy (ties broken by registration priority,
//! mirroring BEAGLE's resource ordering).

use crate::api::{BeagleInstance, InstanceConfig};
use crate::error::{BeagleError, Result};
use crate::flags::Flags;
use crate::resource::ResourceDescription;

/// A plugin that can construct instances on one resource.
pub trait ImplementationFactory: Send + Sync {
    /// Implementation name (e.g. `"CPU-threadpool"`, `"OpenCL-GPU"`).
    fn name(&self) -> &str;

    /// Capability flags instances from this factory can honour.
    fn supported_flags(&self) -> Flags;

    /// The hardware resource this factory runs on.
    fn resource(&self) -> ResourceDescription;

    /// Priority among factories with equal preference scores; higher wins.
    /// (BEAGLE orders GPUs before CPUs by default.)
    fn priority(&self) -> i32 {
        0
    }

    /// Whether a given configuration is supported (e.g. a nucleotide-only
    /// vectorized kernel refuses 61 states).
    fn supports_config(&self, config: &InstanceConfig) -> bool {
        config.validate().is_ok()
    }

    /// Build an instance.
    fn create(
        &self,
        config: &InstanceConfig,
        preference_flags: Flags,
        requirement_flags: Flags,
    ) -> Result<Box<dyn BeagleInstance>>;
}

/// The registry of available implementations.
#[derive(Default)]
pub struct ImplementationManager {
    factories: Vec<Box<dyn ImplementationFactory>>,
}

impl ImplementationManager {
    /// An empty manager; back-end crates add their factories via
    /// [`Self::register`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a factory (a "plugin" in BEAGLE's terms).
    pub fn register(&mut self, factory: Box<dyn ImplementationFactory>) {
        self.factories.push(factory);
    }

    /// Number of registered factories.
    pub fn factory_count(&self) -> usize {
        self.factories.len()
    }

    /// The resource list, one entry per registered factory.
    pub fn resource_list(&self) -> Vec<ResourceDescription> {
        self.factories.iter().map(|f| f.resource()).collect()
    }

    /// Names of all registered implementations.
    pub fn implementation_names(&self) -> Vec<String> {
        self.factories.iter().map(|f| f.name().to_string()).collect()
    }

    /// Find the best implementation for `config` given requirements and
    /// preferences, and create an instance of it.
    ///
    /// Selection: a factory is *eligible* if its supported flags contain
    /// every requirement bit and it supports the configuration. Among
    /// eligible factories, the one satisfying the most preference bits wins;
    /// ties go to the higher `priority()`. If the winner fails to *create*
    /// (device allocation failure, dead accelerator), the next-ranked
    /// eligible factory is tried, walking the chain accelerator →
    /// thread-pool → vectorized → serial until one succeeds — so a flaky
    /// GPU degrades to a working CPU instance rather than an error. The
    /// last creation error surfaces only when every eligible factory fails.
    ///
    /// The returned instance is additionally wrapped in a
    /// [`crate::rescue::RescueInstance`]: root/edge integrations that fail
    /// numerically without scaling are transparently re-run with
    /// per-pattern rescaling (see the module docs of [`crate::rescue`]).
    ///
    /// Execution mode ([`Flags::COMPUTATION_SYNCH`] /
    /// [`Flags::COMPUTATION_ASYNCH`]) is a manager-level feature, not a
    /// back-end capability: both bits are stripped before factory filtering
    /// and scoring. Asking for `COMPUTATION_ASYNCH` (as a requirement or a
    /// preference) wraps the back-end in a [`crate::queue::QueuedInstance`]
    /// before the rescue layer, so deferred batches still get numerical
    /// rescue at the integration points.
    pub fn create_instance(
        &self,
        config: &InstanceConfig,
        preference_flags: Flags,
        requirement_flags: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        config.validate()?;
        let queue_bits = Flags::COMPUTATION_SYNCH | Flags::COMPUTATION_ASYNCH;
        let asynch = (preference_flags | requirement_flags).contains(Flags::COMPUTATION_ASYNCH);
        let preference_flags = preference_flags.without(queue_bits);
        let requirement_flags = requirement_flags.without(queue_bits);
        let mut eligible: Vec<(&dyn ImplementationFactory, u32)> = self
            .factories
            .iter()
            .filter(|f| f.supported_flags().contains(requirement_flags))
            .filter(|f| f.supports_config(config))
            .map(|f| {
                let score = (f.supported_flags() & preference_flags).bit_count();
                (f.as_ref(), score)
            })
            .collect();
        // Best first: preference score, then registration priority. The sort
        // is stable, so equal (score, priority) keeps registration order.
        eligible.sort_by(|(fa, sa), (fb, sb)| {
            (sb, fb.priority()).cmp(&(sa, fa.priority()))
        });
        let mut last_err = BeagleError::NoImplementationFound;
        for (factory, _) in eligible {
            match factory.create(config, preference_flags, requirement_flags) {
                Ok(inst) => {
                    let inst: Box<dyn BeagleInstance> = if asynch {
                        Box::new(crate::queue::QueuedInstance::new(inst))
                    } else {
                        inst
                    };
                    return Ok(Box::new(crate::rescue::RescueInstance::new(inst)));
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Create an instance of the implementation with exactly this name
    /// (names are unique per registry). Used by the benchmark harness to pin
    /// a specific implementation regardless of flag-based ranking.
    ///
    /// [`Flags::COMPUTATION_ASYNCH`] in the preferences wraps the instance
    /// in a [`crate::queue::QueuedInstance`], exactly as in
    /// [`Self::create_instance`] (no rescue layer here — this path is for
    /// harnesses that want the raw implementation).
    pub fn create_instance_by_name(
        &self,
        name: &str,
        config: &InstanceConfig,
        preference_flags: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        config.validate()?;
        let queue_bits = Flags::COMPUTATION_SYNCH | Flags::COMPUTATION_ASYNCH;
        let asynch = preference_flags.contains(Flags::COMPUTATION_ASYNCH);
        let preference_flags = preference_flags.without(queue_bits);
        let factory = self
            .factories
            .iter()
            .find(|f| f.name() == name)
            .ok_or(BeagleError::NoImplementationFound)?;
        if !factory.supports_config(config) {
            return Err(BeagleError::Unsupported("configuration for this implementation"));
        }
        let inst = factory.create(config, preference_flags, Flags::NONE)?;
        Ok(if asynch {
            Box::new(crate::queue::QueuedInstance::new(inst))
        } else {
            inst
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::InstanceDetails;
    use crate::ops::Operation;

    /// A do-nothing instance for manager tests.
    struct NullInstance {
        details: InstanceDetails,
        config: InstanceConfig,
    }

    impl BeagleInstance for NullInstance {
        fn details(&self) -> &InstanceDetails {
            &self.details
        }
        fn config(&self) -> &InstanceConfig {
            &self.config
        }
        fn set_tip_states(&mut self, _: usize, _: &[u32]) -> Result<()> {
            Ok(())
        }
        fn set_tip_partials(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_partials(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn get_partials(&self, _: usize) -> Result<Vec<f64>> {
            Ok(vec![])
        }
        fn set_pattern_weights(&mut self, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_state_frequencies(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_category_rates(&mut self, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_category_weights(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_eigen_decomposition(
            &mut self,
            _: usize,
            _: &[f64],
            _: &[f64],
            _: &[f64],
        ) -> Result<()> {
            Ok(())
        }
        fn update_transition_matrices(
            &mut self,
            _: usize,
            _: &[usize],
            _: &[f64],
        ) -> Result<()> {
            Ok(())
        }
        fn set_transition_matrix(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn get_transition_matrix(&self, _: usize) -> Result<Vec<f64>> {
            Ok(vec![])
        }
        fn update_partials(&mut self, _: &[Operation]) -> Result<()> {
            Ok(())
        }
        fn reset_scale_factors(&mut self, _: usize) -> Result<()> {
            Ok(())
        }
        fn accumulate_scale_factors(&mut self, _: &[usize], _: usize) -> Result<()> {
            Ok(())
        }
        fn calculate_root_log_likelihoods(
            &mut self,
            _: usize,
            _: usize,
            _: usize,
            _: Option<usize>,
        ) -> Result<f64> {
            Ok(0.0)
        }
        fn calculate_edge_log_likelihoods(
            &mut self,
            _: usize,
            _: usize,
            _: usize,
            _: usize,
            _: usize,
            _: Option<usize>,
        ) -> Result<f64> {
            Ok(0.0)
        }
        fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
            Ok(vec![])
        }
    }

    struct NullFactory {
        name: &'static str,
        flags: Flags,
        priority: i32,
    }

    impl ImplementationFactory for NullFactory {
        fn name(&self) -> &str {
            self.name
        }
        fn supported_flags(&self) -> Flags {
            self.flags
        }
        fn resource(&self) -> ResourceDescription {
            ResourceDescription::host_cpu(1)
        }
        fn priority(&self) -> i32 {
            self.priority
        }
        fn create(
            &self,
            config: &InstanceConfig,
            _prefs: Flags,
            _reqs: Flags,
        ) -> Result<Box<dyn BeagleInstance>> {
            Ok(Box::new(NullInstance {
                details: InstanceDetails {
                    implementation_name: self.name.into(),
                    resource_name: "null".into(),
                    flags: self.flags,
                    thread_count: 1,
                },
                config: *config,
            }))
        }
    }

    fn cfg() -> InstanceConfig {
        InstanceConfig::for_tree(4, 100, 4, 1)
    }

    #[test]
    fn requirements_filter() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU | Flags::PRECISION_DOUBLE,
            priority: 0,
        }));
        let inst = m
            .create_instance(&cfg(), Flags::NONE, Flags::PROCESSOR_CPU)
            .unwrap();
        assert_eq!(inst.details().implementation_name, "cpu");
        let err = m.create_instance(&cfg(), Flags::NONE, Flags::PROCESSOR_GPU);
        assert!(matches!(err, Err(BeagleError::NoImplementationFound)));
    }

    #[test]
    fn preferences_rank() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "plain",
            flags: Flags::PROCESSOR_CPU,
            priority: 5,
        }));
        m.register(Box::new(NullFactory {
            name: "vectorized",
            flags: Flags::PROCESSOR_CPU | Flags::VECTOR_SSE,
            priority: 0,
        }));
        // Preferring SSE should beat the higher-priority plain factory.
        let inst = m
            .create_instance(&cfg(), Flags::VECTOR_SSE, Flags::NONE)
            .unwrap();
        assert_eq!(inst.details().implementation_name, "vectorized");
        // No preference: priority decides.
        let inst = m.create_instance(&cfg(), Flags::NONE, Flags::NONE).unwrap();
        assert_eq!(inst.details().implementation_name, "plain");
    }

    /// A factory whose creation always fails, as a dead device's would.
    struct BrokenFactory {
        priority: i32,
    }

    impl ImplementationFactory for BrokenFactory {
        fn name(&self) -> &str {
            "broken-accelerator"
        }
        fn supported_flags(&self) -> Flags {
            Flags::PROCESSOR_CPU | Flags::PROCESSOR_GPU
        }
        fn resource(&self) -> ResourceDescription {
            ResourceDescription::host_cpu(1)
        }
        fn priority(&self) -> i32 {
            self.priority
        }
        fn create(&self, _: &InstanceConfig, _: Flags, _: Flags) -> Result<Box<dyn BeagleInstance>> {
            Err(BeagleError::Device {
                kind: crate::error::DeviceErrorKind::DeviceLost,
                transient: false,
                device: "broken".into(),
            })
        }
    }

    #[test]
    fn creation_failure_falls_back_to_next_factory() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu-serial",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        // Ranked first (higher priority), but creation always fails.
        m.register(Box::new(BrokenFactory { priority: 100 }));
        let inst = m.create_instance(&cfg(), Flags::NONE, Flags::NONE).unwrap();
        assert_eq!(inst.details().implementation_name, "cpu-serial");
    }

    #[test]
    fn all_failures_surface_last_error() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(BrokenFactory { priority: 0 }));
        let err = m.create_instance(&cfg(), Flags::NONE, Flags::NONE).err();
        assert!(matches!(err, Some(BeagleError::Device { .. })), "{err:?}");
    }

    #[test]
    fn queue_mode_bits_do_not_affect_selection() {
        let mut m = ImplementationManager::new();
        // No factory advertises the computation-mode bits...
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        // ...yet requiring ASYNCH must still find it (manager-level feature).
        let inst = m
            .create_instance(&cfg(), Flags::NONE, Flags::COMPUTATION_ASYNCH)
            .unwrap();
        assert!(inst.details().flags.contains(Flags::COMPUTATION_ASYNCH));
        assert!(inst.queue_stats().is_some(), "queued wrapper installed");
        // SYNCH (or no mode at all) stays eager: no queue counters.
        let inst = m
            .create_instance(&cfg(), Flags::COMPUTATION_SYNCH, Flags::NONE)
            .unwrap();
        assert!(inst.queue_stats().is_none());
    }

    #[test]
    fn by_name_honours_asynch_preference() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        let inst = m
            .create_instance_by_name("cpu", &cfg(), Flags::COMPUTATION_ASYNCH)
            .unwrap();
        assert!(inst.queue_stats().is_some());
        let inst = m.create_instance_by_name("cpu", &cfg(), Flags::NONE).unwrap();
        assert!(inst.queue_stats().is_none());
    }

    #[test]
    fn empty_manager_errors() {
        let m = ImplementationManager::new();
        assert!(matches!(
            m.create_instance(&cfg(), Flags::NONE, Flags::NONE),
            Err(BeagleError::NoImplementationFound)
        ));
    }
}
