//! Implementation management: the plugin registry and resource selection.
//!
//! BEAGLE's implementation-management layer "loads the available
//! implementations, makes them available to the client program, and passes
//! API commands to the selected implementation". In BEAGLE-RS the same role
//! is played by [`ImplementationManager`]: back-end crates register
//! [`ImplementationFactory`] plugins; `create_instance` filters them by the
//! client's *requirement* flags and ranks the survivors by how many
//! *preference* flags they satisfy (ties broken by registration priority,
//! mirroring BEAGLE's resource ordering).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api::{BeagleInstance, BufferId, InstanceConfig, ScalingMode};
use crate::checkpoint::{CheckpointedInstance, Provenance};
use crate::error::{BeagleError, Result};
use crate::flags::Flags;
use crate::health::{BreakerConfig, HealthRegistry, Outcome};
use crate::memo;
use crate::multi::{ChildSelection, PartitionedInstance};
use crate::ops::Operation;
use crate::resource::ResourceDescription;
use crate::spec::InstanceSpec;

/// How a failure feeds the health registry: watchdog timeouts and permanent
/// faults trip a resource's breaker immediately, transient faults only
/// accumulate toward its threshold.
pub(crate) fn outcome_of(e: &BeagleError) -> Outcome {
    match e {
        BeagleError::Timeout { .. } => Outcome::Timeout,
        e if e.is_retryable() => Outcome::Transient,
        _ => Outcome::Permanent,
    }
}

/// A plugin that can construct instances on one resource.
pub trait ImplementationFactory: Send + Sync {
    /// Implementation name (e.g. `"CPU-threadpool"`, `"OpenCL-GPU"`).
    fn name(&self) -> &str;

    /// Capability flags instances from this factory can honour.
    fn supported_flags(&self) -> Flags;

    /// The hardware resource this factory runs on.
    fn resource(&self) -> ResourceDescription;

    /// Priority among factories with equal preference scores; higher wins.
    /// (BEAGLE orders GPUs before CPUs by default.)
    fn priority(&self) -> i32 {
        0
    }

    /// Whether a given configuration is supported (e.g. a nucleotide-only
    /// vectorized kernel refuses 61 states).
    fn supports_config(&self, config: &InstanceConfig) -> bool {
        config.validate().is_ok()
    }

    /// Build an instance.
    fn create(
        &self,
        config: &InstanceConfig,
        preference_flags: Flags,
        requirement_flags: Flags,
    ) -> Result<Box<dyn BeagleInstance>>;
}

/// The registry of available implementations.
#[derive(Default)]
pub struct ImplementationManager {
    factories: Vec<Box<dyn ImplementationFactory>>,
    /// Per-resource health scores and circuit breakers, fed by creation
    /// outcomes here and by runtime outcomes from
    /// [`crate::multi::PartitionedInstance`]. Behind an `Arc` so failover
    /// wrappers holding the manager share one registry.
    health: Arc<HealthRegistry>,
}

impl ImplementationManager {
    /// An empty manager; back-end crates add their factories via
    /// [`Self::register`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-resource health registry (see [`crate::health`]). Ranked
    /// creation skips implementations whose breaker is open, and
    /// [`Self::benchmark_resources`] doubles as the half-open re-probe.
    pub fn health(&self) -> &HealthRegistry {
        &self.health
    }

    /// Replace the breaker tuning (threshold, window, cooldown) for every
    /// resource tracked by this manager.
    pub fn set_breaker_config(&self, config: BreakerConfig) {
        self.health.set_config(config);
    }

    /// Register a factory (a "plugin" in BEAGLE's terms).
    pub fn register(&mut self, factory: Box<dyn ImplementationFactory>) {
        self.factories.push(factory);
    }

    /// Number of registered factories.
    pub fn factory_count(&self) -> usize {
        self.factories.len()
    }

    /// The resource list, one entry per registered factory.
    pub fn resource_list(&self) -> Vec<ResourceDescription> {
        self.factories.iter().map(|f| f.resource()).collect()
    }

    /// Names of all registered implementations.
    pub fn implementation_names(&self) -> Vec<String> {
        self.factories
            .iter()
            .map(|f| f.name().to_string())
            .collect()
    }

    /// Create an instance from an [`InstanceSpec`] — the single creation
    /// path every public entry point funnels into, so the wrapper stack is
    /// assembled in exactly one place.
    ///
    /// Selection (when no implementation name is pinned): a factory is
    /// *eligible* if its supported flags contain every requirement bit and
    /// it supports the configuration. Among eligible factories, the one
    /// satisfying the most preference bits wins; ties go to the higher
    /// `priority()`. If the winner fails to *create* (device allocation
    /// failure, dead accelerator), the next-ranked eligible factory is
    /// tried, walking the chain accelerator → thread-pool → vectorized →
    /// serial until one succeeds — so a flaky GPU degrades to a working CPU
    /// instance rather than an error. The last creation error surfaces only
    /// when every eligible factory fails.
    ///
    /// Four flag bits are manager-level features, not back-end
    /// capabilities, and are stripped before factory filtering and scoring:
    ///
    /// * [`Flags::COMPUTATION_ASYNCH`] (requirement or preference) wraps
    ///   the back-end in a [`crate::queue::QueuedInstance`];
    /// * [`Flags::COMPUTATION_SYNCH`] is the eager default;
    /// * [`Flags::INSTANCE_STATS`] is forwarded to the factory as a
    ///   preference so the back-end enables its kernel recorder (see
    ///   [`crate::obs`]); it never affects ranking;
    /// * [`Flags::KERNEL_SCALAR`] is likewise forwarded so the back-end
    ///   pins its scalar kernel table (`InstanceSpec::force_scalar`; the
    ///   `BEAGLE_FORCE_SCALAR` environment variable still overrides —
    ///   see [`crate::spec`] for the precedence rules).
    ///
    /// Unless `spec.rescue` is false, the result is wrapped in a
    /// [`crate::rescue::RescueInstance`] (outside any queue layer, so
    /// deferred batches still get numerical rescue at the integration
    /// points). Named and ranked creation therefore get byte-identical
    /// wrapping. Unless disabled (`spec.incremental == Some(false)` or the
    /// `BEAGLE_INCREMENTAL_DISABLE` environment variable), the raw back-end
    /// is first wrapped in the [`crate::memo::MemoInstance`] incremental
    /// layer, innermost so every other wrapper's traffic flows through it.
    pub fn create_from_spec(&self, spec: &InstanceSpec) -> Result<Box<dyn BeagleInstance>> {
        spec.config.validate()?;
        let manager_bits = Flags::COMPUTATION_SYNCH
            | Flags::COMPUTATION_ASYNCH
            | Flags::INSTANCE_STATS
            | Flags::KERNEL_SCALAR;
        let combined = spec.preferences | spec.requirements;
        let asynch = combined.contains(Flags::COMPUTATION_ASYNCH);
        let stats = combined.contains(Flags::INSTANCE_STATS);
        let preference_flags = spec.preferences.without(manager_bits);
        let requirement_flags = spec.requirements.without(manager_bits);
        // Factories see the stats and scalar-pin bits in their preferences
        // (how they know to switch their recorder on / pin the scalar
        // kernel table), but ranking ignores them: no factory advertises
        // either as a capability.
        let mut factory_prefs = preference_flags;
        if stats {
            factory_prefs |= Flags::INSTANCE_STATS;
        }
        if combined.contains(Flags::KERNEL_SCALAR) {
            factory_prefs |= Flags::KERNEL_SCALAR;
        }

        let raw = match &spec.implementation {
            Some(name) => {
                let factory = self
                    .factories
                    .iter()
                    .find(|f| f.name() == name)
                    .ok_or(BeagleError::NoImplementationFound)?;
                if !factory.supports_config(&spec.config) {
                    return Err(BeagleError::Unsupported(format!(
                        "configuration for implementation {name}"
                    )));
                }
                factory.create(&spec.config, factory_prefs, requirement_flags)?
            }
            None => {
                let mut eligible: Vec<(&dyn ImplementationFactory, u32)> = self
                    .factories
                    .iter()
                    .filter(|f| f.supported_flags().contains(requirement_flags))
                    .filter(|f| f.supports_config(&spec.config))
                    .map(|f| {
                        let score = (f.supported_flags() & preference_flags).bit_count();
                        (f.as_ref(), score)
                    })
                    .collect();
                // Best first: preference score, then registration priority.
                // The sort is stable, so equal (score, priority) keeps
                // registration order.
                eligible
                    .sort_by(|(fa, sa), (fb, sb)| (sb, fb.priority()).cmp(&(sa, fa.priority())));
                // Circuit breakers: skip quarantined implementations — but
                // fail open. If every eligible factory is quarantined,
                // health is ignored entirely; a degraded instance beats no
                // instance.
                let any_healthy = eligible
                    .iter()
                    .any(|(f, _)| self.health.available(f.name()));
                let mut created = None;
                let mut last_err = BeagleError::NoImplementationFound;
                for (factory, _) in eligible {
                    if any_healthy && !self.health.available(factory.name()) {
                        continue;
                    }
                    match factory.create(&spec.config, factory_prefs, requirement_flags) {
                        Ok(inst) => {
                            self.health.record(factory.name(), Outcome::Success);
                            created = Some(inst);
                            break;
                        }
                        Err(e) => {
                            self.health.record(factory.name(), outcome_of(&e));
                            last_err = e;
                        }
                    }
                }
                match created {
                    Some(inst) => inst,
                    None => return Err(last_err),
                }
            }
        };

        // The memoization layer sits directly above the raw back-end —
        // below the queue, rescue and checkpoint wrappers — so deferred
        // flushes, rescue re-runs and journal replays all pass through it
        // with their real call shapes. When disabled it is not installed at
        // all, so `BEAGLE_INCREMENTAL_DISABLE=1` reproduces baseline
        // timings exactly, not just baseline bits.
        let incremental = spec.incremental.unwrap_or(true) && !memo::incremental_disabled_by_env();
        let raw: Box<dyn BeagleInstance> = if incremental {
            Box::new(memo::MemoInstance::new(raw))
        } else {
            raw
        };

        let inst: Box<dyn BeagleInstance> = if asynch {
            Box::new(crate::queue::QueuedInstance::new(raw))
        } else {
            raw
        };
        let inst: Box<dyn BeagleInstance> = if spec.rescue {
            Box::new(crate::rescue::RescueInstance::new(inst))
        } else {
            inst
        };
        // The checkpoint layer is outermost so its journal sees exactly the
        // calls the client made (queued work flushes on snapshot).
        let mut inst: Box<dyn BeagleInstance> = if spec.checkpoint {
            let provenance = Provenance {
                preferences: spec.preferences,
                requirements: spec.requirements,
                rescue: spec.rescue,
                implementation: spec.implementation.clone(),
            };
            Box::new(CheckpointedInstance::new(inst, spec.config, provenance))
        } else {
            inst
        };
        if spec.deadline.is_some() {
            inst.set_deadline(spec.deadline);
        }
        Ok(inst)
    }

    /// Find the best implementation for `config` given requirements and
    /// preferences, and create an instance of it. Thin wrapper over
    /// [`Self::create_from_spec`]; see there for selection, execution-mode
    /// and rescue semantics.
    pub fn create_instance(
        &self,
        config: &InstanceConfig,
        preference_flags: Flags,
        requirement_flags: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        self.create_from_spec(
            &InstanceSpec::with_config(*config)
                .prefer(preference_flags)
                .require(requirement_flags),
        )
    }

    /// Create an instance of the implementation with exactly this name
    /// (names are unique per registry). Used by the benchmark harness to pin
    /// a specific implementation regardless of flag-based ranking.
    ///
    /// Thin wrapper over [`Self::create_from_spec`]: named creation gets
    /// the *same* wrapper stack as ranked creation, including the
    /// numerical-rescue layer. (Historically this path skipped rescue;
    /// harnesses that need raw back-end semantics should build an
    /// [`InstanceSpec`] with `without_rescue()`.)
    pub fn create_instance_by_name(
        &self,
        name: &str,
        config: &InstanceConfig,
        preference_flags: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        self.create_from_spec(
            &InstanceSpec::with_config(*config)
                .prefer(preference_flags)
                .named(name),
        )
    }

    /// Measure every registered factory on a short calibrated
    /// partials+root workload and return the results ranked fastest-first
    /// (mirrors BEAGLE's `benchmarkResourceList`).
    ///
    /// Every registered factory appears in the output: factories that are
    /// ineligible (requirements, configuration) or whose creation/workload
    /// fails carry an `error` and sort after all measured entries. Ranking
    /// uses modeled device time when the back-end simulates one (so
    /// simulated-GPU entries are bit-identical run to run) and wall time
    /// otherwise. The workload is sized down from `config` (≤ 8 tips,
    /// ≤ 256 patterns, same states/categories) with a fixed repetition
    /// count, deterministic tip states, and closed-form Jukes–Cantor
    /// transition matrices — no eigen machinery, so every back-end can run
    /// it.
    pub fn benchmark_resources(
        &self,
        config: &InstanceConfig,
        requirement_flags: Flags,
    ) -> Vec<ResourceBenchmark> {
        let manager_bits = Flags::COMPUTATION_SYNCH
            | Flags::COMPUTATION_ASYNCH
            | Flags::INSTANCE_STATS
            | Flags::KERNEL_SCALAR;
        let requirement_flags = requirement_flags.without(manager_bits);
        let bench_config = benchmark_config(config);
        let mut results: Vec<ResourceBenchmark> = self
            .factories
            .iter()
            .map(|factory| {
                let mut entry = ResourceBenchmark {
                    implementation: factory.name().to_string(),
                    resource: factory.resource().name,
                    flags: factory.supported_flags(),
                    wall: Duration::ZERO,
                    modeled: None,
                    throughput_gflops: 0.0,
                    error: None,
                };
                if !factory.supported_flags().contains(requirement_flags) {
                    entry.error = Some("does not satisfy requirement flags".to_string());
                    return entry;
                }
                if !factory.supports_config(config) || !factory.supports_config(&bench_config) {
                    entry.error = Some("does not support this configuration".to_string());
                    return entry;
                }
                // Quarantined resources are not measured. Once the breaker's
                // cooldown expires (half-open), `available` readmits the
                // factory here and the workload below *is* the re-probe:
                // its outcome closes or re-opens the breaker.
                if !self.health.available(factory.name()) {
                    entry.error =
                        Some("quarantined by circuit breaker (cooldown pending)".to_string());
                    return entry;
                }
                match factory.create(&bench_config, Flags::NONE, requirement_flags) {
                    Ok(mut inst) => match run_benchmark_workload(inst.as_mut(), &bench_config) {
                        Ok((wall, modeled, flops)) => {
                            self.health.record(factory.name(), Outcome::Success);
                            entry.wall = wall;
                            entry.modeled = modeled;
                            let secs = modeled.unwrap_or(wall).as_secs_f64();
                            if secs > 0.0 {
                                entry.throughput_gflops = flops / secs / 1e9;
                            }
                        }
                        Err(e) => {
                            self.health.record(factory.name(), outcome_of(&e));
                            entry.error = Some(e.to_string());
                        }
                    },
                    Err(e) => {
                        self.health.record(factory.name(), outcome_of(&e));
                        entry.error = Some(e.to_string());
                    }
                }
                entry
            })
            .collect();
        // Fastest measured entries first; failures last (stable, so they
        // keep registration order).
        results.sort_by(|a, b| match (&a.error, &b.error) {
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(_), Some(_)) => std::cmp::Ordering::Equal,
            (None, None) => a.elapsed().cmp(&b.elapsed()),
        });
        results
    }

    /// Create an instance of the empirically fastest implementation:
    /// ranks the registry with [`Self::benchmark_resources`] instead of
    /// static flag scores, then creates the winner through the same
    /// [`Self::create_from_spec`] path (identical queue/rescue wrapping).
    /// Entries that fail to create at full problem size fall through to the
    /// next-fastest; if every measured entry fails, falls back to the
    /// flag-ranked path.
    pub fn create_instance_auto(
        &self,
        config: &InstanceConfig,
        preference_flags: Flags,
        requirement_flags: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        for entry in self.benchmark_resources(config, requirement_flags) {
            if entry.error.is_some() {
                break; // failures sort last; nothing measured remains
            }
            let spec = InstanceSpec::with_config(*config)
                .prefer(preference_flags)
                .require(requirement_flags)
                .named(&entry.implementation);
            if let Ok(inst) = self.create_from_spec(&spec) {
                return Ok(inst);
            }
        }
        self.create_from_spec(
            &InstanceSpec::with_config(*config)
                .prefer(preference_flags)
                .require(requirement_flags),
        )
    }

    /// `create_instance_auto` extended to multiple resources: benchmark
    /// every registered factory, take the fastest `spec.auto_partition`
    /// (default 2) measured entries, and build one
    /// [`PartitionedInstance`] with a child pinned to each winner and
    /// pattern ranges seeded proportional to measured throughput. Adaptive
    /// rebalancing ([`crate::balance`], knobs from `BEAGLE_REBALANCE_*`
    /// environment overrides) is enabled, so the seed split keeps tracking
    /// the throughput each resource actually delivers at full problem size.
    ///
    /// Needs `self` behind an `Arc`: the partitioned instance retains the
    /// manager to rebuild children on eviction and rebalance.
    pub fn create_instance_auto_partitioned(
        self: &Arc<Self>,
        spec: &InstanceSpec,
    ) -> Result<PartitionedInstance> {
        let max_devices = spec
            .auto_partition
            .unwrap_or(2)
            .max(1)
            .min(spec.config.pattern_count);
        let measured: Vec<ResourceBenchmark> = self
            .benchmark_resources(&spec.config, spec.requirements)
            .into_iter()
            .filter(|e| e.error.is_none())
            .take(max_devices)
            .collect();
        if measured.is_empty() {
            return Err(BeagleError::NoImplementationFound);
        }
        let selections: Vec<ChildSelection> = measured
            .iter()
            .map(|e| ChildSelection::named(&e.implementation, spec.preferences, spec.requirements))
            .collect();
        // Throughput-proportional seed weights; a zero measurement (degenerate
        // clock resolution) falls back to an equal share rather than erroring.
        let weights: Vec<f64> = measured
            .iter()
            .map(|e| {
                if e.throughput_gflops > 0.0 {
                    e.throughput_gflops
                } else {
                    1.0
                }
            })
            .collect();
        let mut inst =
            PartitionedInstance::create_with_selections(self, spec, selections, &weights)?;
        // Typed base from the spec, environment overrides on top (the
        // workspace-wide precedence rule; see `crate::spec`).
        inst.enable_balancing(spec.balancer.unwrap_or_default().overridden_by_env());
        Ok(inst)
    }
}

/// One row of [`ImplementationManager::benchmark_resources`]'s ranking.
#[derive(Clone, Debug)]
pub struct ResourceBenchmark {
    /// Implementation name (pass to `InstanceSpec::named` to pin it).
    pub implementation: String,
    /// Hardware resource the implementation runs on.
    pub resource: String,
    /// The factory's capability flags.
    pub flags: Flags,
    /// Host wall time for the calibrated workload.
    pub wall: Duration,
    /// Modeled device time, for back-ends that simulate one.
    pub modeled: Option<Duration>,
    /// Workload throughput in GFLOPS, computed from [`Self::elapsed`].
    pub throughput_gflops: f64,
    /// Why this factory could not be measured (ineligible, creation or
    /// workload failure). Measured entries have `None`.
    pub error: Option<String>,
}

impl ResourceBenchmark {
    /// The time used for ranking: modeled device time when available,
    /// otherwise host wall time.
    pub fn elapsed(&self) -> Duration {
        self.modeled.unwrap_or(self.wall)
    }

    /// One JSON object (hand-rolled; the environment has no serde).
    pub fn to_json(&self) -> String {
        let modeled = match self.modeled {
            Some(d) => format!("{}", d.as_nanos()),
            None => "null".to_string(),
        };
        let error = match &self.error {
            Some(e) => format!("\"{}\"", e.replace('\\', "\\\\").replace('"', "\\\"")),
            None => "null".to_string(),
        };
        format!(
            "{{\"implementation\":\"{}\",\"resource\":\"{}\",\"wall_nanos\":{},\"modeled_nanos\":{},\"throughput_gflops\":{:.4},\"error\":{}}}",
            self.implementation.replace('"', "\\\""),
            self.resource.replace('"', "\\\""),
            self.wall.as_nanos(),
            modeled,
            error,
            self.throughput_gflops,
        )
    }
}

/// Repetitions of the calibrated workload. Fixed (not wall-calibrated) so
/// modeled device times are bit-identical across runs — the determinism the
/// ranking and its tests rely on.
const BENCHMARK_REPS: usize = 3;

/// Shrink `config` to benchmark proportions: ≤ 8 tips, ≤ 256 patterns,
/// same state and category dimensions (those dominate kernel shape).
fn benchmark_config(config: &InstanceConfig) -> InstanceConfig {
    InstanceConfig::for_tree(
        config.tip_count.min(8),
        config.pattern_count.min(256),
        config.state_count,
        config.category_count,
    )
}

/// Closed-form Jukes–Cantor transition matrix for `s` states at branch
/// length `t`, replicated across `categories` (rates are uniform in the
/// workload): `P_ii = 1/s + (1-1/s)·e^{-st/(s-1)}`, `P_ij = 1/s·(1-e^{-st/(s-1)})`.
/// No eigen-decomposition needed, so every back-end can run the workload.
fn jukes_cantor_matrix(s: usize, categories: usize, t: f64) -> Vec<f64> {
    let sf = s as f64;
    let e = (-sf * t / (sf - 1.0)).exp();
    let p_same = 1.0 / sf + (1.0 - 1.0 / sf) * e;
    let p_diff = (1.0 - e) / sf;
    let mut one = vec![p_diff; s * s];
    for i in 0..s {
        one[i * s + i] = p_same;
    }
    let mut m = Vec::with_capacity(categories * s * s);
    for _ in 0..categories {
        m.extend_from_slice(&one);
    }
    m
}

/// Run the calibrated partials+root workload: a chain of internal-node
/// updates over deterministic tip states, integrated at the last
/// destination. Returns `(wall, modeled, flops)` for the timed section.
fn run_benchmark_workload(
    inst: &mut dyn BeagleInstance,
    config: &InstanceConfig,
) -> Result<(Duration, Option<Duration>, f64)> {
    let s = config.state_count;
    let tips = config.tip_count;
    let internal = config.partials_buffer_count - tips;
    if internal == 0 {
        return Err(BeagleError::Unsupported(
            "benchmark workload needs at least one internal partials buffer".into(),
        ));
    }
    inst.set_state_frequencies(0, &vec![1.0 / s as f64; s])?;
    inst.set_category_weights(
        0,
        &vec![1.0 / config.category_count as f64; config.category_count],
    )?;
    inst.set_category_rates(&vec![1.0; config.category_count])?;
    inst.set_pattern_weights(&vec![1.0; config.pattern_count])?;
    for tip in 0..tips {
        let states: Vec<u32> = (0..config.pattern_count)
            .map(|p| ((p + tip) % s) as u32)
            .collect();
        inst.set_tip_states(tip, &states)?;
    }
    let n_matrices = config.matrix_buffer_count.min(2 * tips - 2).max(1);
    for m in 0..n_matrices {
        let t = 0.05 + 0.01 * (m % 7) as f64;
        inst.set_transition_matrix(m, &jukes_cantor_matrix(s, config.category_count, t))?;
    }
    // A caterpillar traversal: each internal node combines the previous
    // destination with a fresh tip, so every update depends on the last —
    // the worst case for batching, the common case for real trees.
    let ops: Vec<Operation> = (0..internal)
        .map(|i| {
            let dest = tips + i;
            let child1 = if i == 0 { 0 } else { dest - 1 };
            let child2 = 1 + (i % (tips - 1));
            Operation::new(
                dest,
                child1,
                dest % n_matrices,
                child2,
                (dest + 1) % n_matrices,
            )
        })
        .collect();
    let root = BufferId(tips + internal - 1);

    // Warm-up rep (first-touch allocation, pool spin-up), then the timed
    // section against a reset device clock.
    inst.update_partials(&ops)?;
    inst.integrate_root(root, BufferId(0), BufferId(0), ScalingMode::None)?;
    inst.reset_simulated_time();
    let t0 = Instant::now();
    let mut lnl = 0.0;
    for _ in 0..BENCHMARK_REPS {
        inst.update_partials(&ops)?;
        lnl = inst.integrate_root(root, BufferId(0), BufferId(0), ScalingMode::None)?;
    }
    inst.wait_for_computation()?;
    let wall = t0.elapsed();
    let modeled = inst.simulated_time();
    if !lnl.is_finite() {
        return Err(BeagleError::NumericalFailure(format!(
            "benchmark workload produced non-finite log-likelihood {lnl}"
        )));
    }
    // ~4 flops per state² cell per category per pattern per operation
    // (two child propagations, multiply-accumulate each).
    let flops = (BENCHMARK_REPS * internal) as f64
        * 4.0
        * (s * s) as f64
        * (config.category_count * config.pattern_count) as f64;
    Ok((wall, modeled, flops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::InstanceDetails;
    use crate::ops::Operation;

    /// A do-nothing instance for manager tests.
    struct NullInstance {
        details: InstanceDetails,
        config: InstanceConfig,
    }

    impl BeagleInstance for NullInstance {
        fn details(&self) -> &InstanceDetails {
            &self.details
        }
        fn config(&self) -> &InstanceConfig {
            &self.config
        }
        fn set_tip_states(&mut self, _: usize, _: &[u32]) -> Result<()> {
            Ok(())
        }
        fn set_tip_partials(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_partials(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn get_partials(&self, _: usize) -> Result<Vec<f64>> {
            Ok(vec![])
        }
        fn set_pattern_weights(&mut self, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_state_frequencies(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_category_rates(&mut self, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_category_weights(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_eigen_decomposition(
            &mut self,
            _: usize,
            _: &[f64],
            _: &[f64],
            _: &[f64],
        ) -> Result<()> {
            Ok(())
        }
        fn update_transition_matrices(&mut self, _: usize, _: &[usize], _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn set_transition_matrix(&mut self, _: usize, _: &[f64]) -> Result<()> {
            Ok(())
        }
        fn get_transition_matrix(&self, _: usize) -> Result<Vec<f64>> {
            Ok(vec![])
        }
        fn update_partials(&mut self, _: &[Operation]) -> Result<()> {
            Ok(())
        }
        fn reset_scale_factors(&mut self, _: usize) -> Result<()> {
            Ok(())
        }
        fn accumulate_scale_factors(&mut self, _: &[usize], _: usize) -> Result<()> {
            Ok(())
        }
        fn integrate_root(
            &mut self,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: ScalingMode,
        ) -> Result<f64> {
            Ok(0.0)
        }
        fn integrate_edge(
            &mut self,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: BufferId,
            _: ScalingMode,
        ) -> Result<f64> {
            Ok(0.0)
        }
        fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
            Ok(vec![])
        }
    }

    struct NullFactory {
        name: &'static str,
        flags: Flags,
        priority: i32,
    }

    impl ImplementationFactory for NullFactory {
        fn name(&self) -> &str {
            self.name
        }
        fn supported_flags(&self) -> Flags {
            self.flags
        }
        fn resource(&self) -> ResourceDescription {
            ResourceDescription::host_cpu(1)
        }
        fn priority(&self) -> i32 {
            self.priority
        }
        fn create(
            &self,
            config: &InstanceConfig,
            _prefs: Flags,
            _reqs: Flags,
        ) -> Result<Box<dyn BeagleInstance>> {
            Ok(Box::new(NullInstance {
                details: InstanceDetails {
                    implementation_name: self.name.into(),
                    resource_name: "null".into(),
                    flags: self.flags,
                    thread_count: 1,
                },
                config: *config,
            }))
        }
    }

    fn cfg() -> InstanceConfig {
        InstanceConfig::for_tree(4, 100, 4, 1)
    }

    #[test]
    fn requirements_filter() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU | Flags::PRECISION_DOUBLE,
            priority: 0,
        }));
        let inst = m
            .create_instance(&cfg(), Flags::NONE, Flags::PROCESSOR_CPU)
            .unwrap();
        assert_eq!(inst.details().implementation_name, "cpu");
        let err = m.create_instance(&cfg(), Flags::NONE, Flags::PROCESSOR_GPU);
        assert!(matches!(err, Err(BeagleError::NoImplementationFound)));
    }

    #[test]
    fn preferences_rank() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "plain",
            flags: Flags::PROCESSOR_CPU,
            priority: 5,
        }));
        m.register(Box::new(NullFactory {
            name: "vectorized",
            flags: Flags::PROCESSOR_CPU | Flags::VECTOR_SSE,
            priority: 0,
        }));
        // Preferring SSE should beat the higher-priority plain factory.
        let inst = m
            .create_instance(&cfg(), Flags::VECTOR_SSE, Flags::NONE)
            .unwrap();
        assert_eq!(inst.details().implementation_name, "vectorized");
        // No preference: priority decides.
        let inst = m.create_instance(&cfg(), Flags::NONE, Flags::NONE).unwrap();
        assert_eq!(inst.details().implementation_name, "plain");
    }

    /// A factory whose creation always fails, as a dead device's would.
    struct BrokenFactory {
        priority: i32,
    }

    impl ImplementationFactory for BrokenFactory {
        fn name(&self) -> &str {
            "broken-accelerator"
        }
        fn supported_flags(&self) -> Flags {
            Flags::PROCESSOR_CPU | Flags::PROCESSOR_GPU
        }
        fn resource(&self) -> ResourceDescription {
            ResourceDescription::host_cpu(1)
        }
        fn priority(&self) -> i32 {
            self.priority
        }
        fn create(
            &self,
            _: &InstanceConfig,
            _: Flags,
            _: Flags,
        ) -> Result<Box<dyn BeagleInstance>> {
            Err(BeagleError::Device {
                kind: crate::error::DeviceErrorKind::DeviceLost,
                transient: false,
                device: "broken".into(),
            })
        }
    }

    #[test]
    fn creation_failure_falls_back_to_next_factory() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu-serial",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        // Ranked first (higher priority), but creation always fails.
        m.register(Box::new(BrokenFactory { priority: 100 }));
        let inst = m.create_instance(&cfg(), Flags::NONE, Flags::NONE).unwrap();
        assert_eq!(inst.details().implementation_name, "cpu-serial");
    }

    #[test]
    fn all_failures_surface_last_error() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(BrokenFactory { priority: 0 }));
        let err = m.create_instance(&cfg(), Flags::NONE, Flags::NONE).err();
        assert!(matches!(err, Some(BeagleError::Device { .. })), "{err:?}");
    }

    #[test]
    fn queue_mode_bits_do_not_affect_selection() {
        let mut m = ImplementationManager::new();
        // No factory advertises the computation-mode bits...
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        // ...yet requiring ASYNCH must still find it (manager-level feature).
        let inst = m
            .create_instance(&cfg(), Flags::NONE, Flags::COMPUTATION_ASYNCH)
            .unwrap();
        assert!(inst.details().flags.contains(Flags::COMPUTATION_ASYNCH));
        assert!(inst.queue_stats().is_some(), "queued wrapper installed");
        // SYNCH (or no mode at all) stays eager: no queue counters.
        let inst = m
            .create_instance(&cfg(), Flags::COMPUTATION_SYNCH, Flags::NONE)
            .unwrap();
        assert!(inst.queue_stats().is_none());
    }

    #[test]
    fn by_name_honours_asynch_preference() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        let inst = m
            .create_instance_by_name("cpu", &cfg(), Flags::COMPUTATION_ASYNCH)
            .unwrap();
        assert!(inst.queue_stats().is_some());
        let inst = m
            .create_instance_by_name("cpu", &cfg(), Flags::NONE)
            .unwrap();
        assert!(inst.queue_stats().is_none());
    }

    #[test]
    fn empty_manager_errors() {
        let m = ImplementationManager::new();
        assert!(matches!(
            m.create_instance(&cfg(), Flags::NONE, Flags::NONE),
            Err(BeagleError::NoImplementationFound)
        ));
    }

    #[test]
    fn named_and_ranked_creation_get_identical_wrapping() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        // By-name creation funnels through create_from_spec, so it now gets
        // the rescue layer and the queue layer exactly like ranked creation.
        let ranked = InstanceSpec::with_config(cfg())
            .queued()
            .instantiate(&m)
            .unwrap();
        let named = InstanceSpec::with_config(cfg())
            .named("cpu")
            .queued()
            .instantiate(&m)
            .unwrap();
        assert_eq!(
            ranked.queue_stats().is_some(),
            named.queue_stats().is_some()
        );
        // Raw semantics remain reachable via the escape hatch.
        let raw = InstanceSpec::with_config(cfg())
            .named("cpu")
            .without_rescue()
            .instantiate(&m)
            .unwrap();
        assert!(raw.queue_stats().is_none());
    }

    #[test]
    fn spec_unknown_name_errors() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        let err = InstanceSpec::with_config(cfg())
            .named("no-such")
            .instantiate(&m);
        assert!(matches!(err, Err(BeagleError::NoImplementationFound)));
    }

    #[test]
    fn stats_flag_does_not_affect_selection() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        // INSTANCE_STATS as a *requirement* must not filter every factory
        // out (no factory advertises it; the manager handles it).
        let inst = m.create_instance(&cfg(), Flags::NONE, Flags::INSTANCE_STATS);
        assert!(inst.is_ok());
    }

    #[test]
    fn benchmark_covers_every_registered_factory() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "a",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        m.register(Box::new(NullFactory {
            name: "b",
            flags: Flags::PROCESSOR_GPU,
            priority: 0,
        }));
        m.register(Box::new(BrokenFactory { priority: 0 }));
        let ranking = m.benchmark_resources(&cfg(), Flags::NONE);
        assert_eq!(ranking.len(), 3, "every registered factory appears");
        let failed: Vec<_> = ranking.iter().filter(|r| r.error.is_some()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].implementation, "broken-accelerator");
        // Failures sort last.
        assert!(ranking.last().unwrap().error.is_some());
        // Requirement filtering is reported, not silently dropped.
        let gpu_only = m.benchmark_resources(&cfg(), Flags::PROCESSOR_GPU);
        assert_eq!(gpu_only.len(), 3);
        assert!(gpu_only.iter().any(|r| r.implementation == "a"
            && r.error.as_deref() == Some("does not satisfy requirement flags")));
    }

    #[test]
    fn auto_creation_falls_back_to_flag_ranking() {
        let mut m = ImplementationManager::new();
        m.register(Box::new(NullFactory {
            name: "cpu",
            flags: Flags::PROCESSOR_CPU,
            priority: 0,
        }));
        let inst = m
            .create_instance_auto(&cfg(), Flags::NONE, Flags::NONE)
            .unwrap();
        assert_eq!(inst.details().implementation_name, "cpu");
    }
}
