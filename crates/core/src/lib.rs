//! # beagle-core
//!
//! The core of BEAGLE-RS: a uniform application programming interface for
//! high-performance calculation of phylogenetic likelihoods, plus the
//! implementation-management layer that routes API calls to whichever
//! back-end (serial CPU, vectorized CPU, threaded CPU, simulated
//! CUDA / OpenCL accelerator) best matches the client's requirements.
//!
//! Mirrors the architecture of the BEAGLE library (Ayres et al. 2012; Ayres &
//! Cummings, ICPP 2017): the API deliberately has **no tree data structure**
//! — clients drive flexibly indexed partials/matrix/scale buffers with flat
//! operation lists, which keeps data transfer minimal and lets each back-end
//! parallelize as it sees fit.
//!
//! * [`api`] — the [`api::BeagleInstance`] trait and instance configuration
//! * [`balance`] — adaptive load balancing: EWMA throughput + repartitioning
//! * [`ops`] — partial-likelihood operation descriptors + dependency analysis
//! * [`memo`] — epoch-based incremental computation (operation memoization)
//! * [`queue`] — deferred execution: operation queue + eigen/matrix caching
//! * [`flags`] — capability/preference/requirement bitmask
//! * [`buffers`] — the shared buffer arena CPU back-ends build on
//! * [`manager`] — plugin registry and implementation selection
//! * [`resource`] — hardware resource descriptions
//! * [`real`] — the `f32`/`f64` precision abstraction

// Likelihood kernels and small numeric routines are written with explicit
// index loops on purpose: the loop structure mirrors the work-item/work-group
// decomposition the paper describes, and that clarity outweighs iterator style.
#![allow(clippy::needless_range_loop)]

pub mod api;
pub mod balance;
pub mod buffers;
pub mod checkpoint;
pub mod deadline;
pub mod error;
pub mod flags;
pub mod health;
pub mod journal;
pub mod manager;
pub mod memo;
pub mod multi;
pub mod obs;
pub mod ops;
pub mod pool;
pub mod queue;
pub mod real;
pub mod rescue;
pub mod resource;
pub mod spec;
pub mod wire;

pub use api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
pub use balance::{BalancerConfig, LoadBalancer, PATTERN_STRIDE};
pub use checkpoint::{Checkpoint, CheckpointedInstance};
pub use deadline::Deadline;
pub use error::{BeagleError, DeviceErrorKind, Result};
pub use flags::Flags;
pub use health::{BreakerConfig, BreakerState, HealthRegistry, Outcome, ResourceId};
pub use journal::StateJournal;
pub use manager::{ImplementationFactory, ImplementationManager, ResourceBenchmark};
pub use memo::{MemoInstance, MemoStats, INCREMENTAL_DISABLE_ENV};
pub use multi::{ChildSelection, PartitionedInstance, RetryPolicy};
pub use obs::{Event, EventKind, InstanceStats, KernelClass, KernelCounter, Recorder};
pub use ops::Operation;
pub use pool::{
    InstancePool, Lane, LatencyHistogram, ManagerSupervisor, NullSupervisor, Pool, PoolBuilder,
    PoolError, PoolHandle, PoolStats, SessionOutcome, SessionRequest, Ticket, WorkerSupervisor,
    WorkerUtilization,
};
pub use queue::{EigenCache, QueueStats, QueuedInstance};
pub use real::Real;
pub use resource::ResourceDescription;
pub use spec::InstanceSpec;
pub use wire::{BusyReason, Frame, FrameType, WireError};

/// Sentinel state value meaning "missing data / gap" in compact tip storage.
/// Kernels treat it as partial likelihood 1 for every state.
pub const GAP_STATE: u32 = u32::MAX;
