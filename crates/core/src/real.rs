//! Floating-point abstraction over the two precision modes.
//!
//! BEAGLE generates separate single- and double-precision kernels from one
//! source (via scripts at build time); in Rust the same effect is a generic
//! parameter bounded by this trait. Only the operations the kernels actually
//! need are included, so the bound stays small and everything inlines.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub};

/// A kernel-grade floating-point type: `f32` or `f64`.
pub trait Real:
    Copy
    + Send
    + Sync
    + 'static
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + MulAssign
    + Div<Output = Self>
    + DivAssign
    + Neg<Output = Self>
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Number of lanes of this type in one 256-bit SIMD register (AVX2).
    /// Buffer layouts that pad each pattern's state vector pad to a
    /// multiple of this so vector inner loops are remainder-free.
    const SIMD_LANES: usize;
    /// Multiplicative identity.
    const ONE: Self;
    /// Smallest positive normal value (used by rescaling thresholds).
    const MIN_POSITIVE: Self;

    /// Convert from `f64` (possibly losing precision).
    fn from_f64(x: f64) -> Self;
    /// Widen to `f64`.
    fn to_f64(self) -> f64;
    /// `e^self`.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Fused multiply-add `self * a + b`. On hardware with FMA units this is
    /// a single instruction; the accelerator model's FMA fast path maps here.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Larger of two values.
    fn max(self, other: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// True for NaN or infinity.
    fn is_bad(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty, $lanes:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const SIMD_LANES: usize = $lanes;
            const ONE: Self = 1.0;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                if self > other {
                    self
                } else {
                    other
                }
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn is_bad(self) -> bool {
                !self.is_finite()
            }
        }
    };
}

impl_real!(f32, 8);
impl_real!(f64, 4);

/// Convert an `f64` slice into precision `T` (allocating).
pub fn narrow_slice<T: Real>(xs: &[f64]) -> Vec<T> {
    xs.iter().map(|&x| T::from_f64(x)).collect()
}

/// Convert a `T` slice back to `f64` (allocating).
pub fn widen_slice<T: Real>(xs: &[T]) -> Vec<f64> {
    xs.iter().map(|x| x.to_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Real>() {
        let xs = [0.0, 1.0, -2.5, 1e-4];
        let narrowed: Vec<T> = narrow_slice(&xs);
        let widened = widen_slice(&narrowed);
        for (a, b) in xs.iter().zip(&widened) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn roundtrips() {
        roundtrip::<f32>();
        roundtrip::<f64>();
    }

    #[test]
    fn mul_add_matches() {
        let x: f64 = 3.0;
        assert_eq!(Real::mul_add(x, 2.0, 1.0), 7.0);
        let y: f32 = 3.0;
        assert_eq!(Real::mul_add(y, 2.0, 1.0), 7.0);
    }

    #[test]
    fn bad_detection() {
        assert!(f64::NAN.is_bad());
        assert!(f32::INFINITY.is_bad());
        assert!(!1.0f64.is_bad());
    }
}
