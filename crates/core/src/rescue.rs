//! Automatic numerical rescue: transparent per-pattern rescaling.
//!
//! Deep trees and many rate categories underflow single- (and eventually
//! double-) precision partials: the root integration then produces NaN or
//! −∞ and the back-end surfaces [`crate::BeagleError::NumericalFailure`].
//! The classical fix is manual scaling — the client passes
//! `dest_scale_write` on every operation and accumulates log scale factors
//! — but most clients only discover they needed it when the run dies.
//!
//! [`RescueInstance`] wraps any [`BeagleInstance`] and automates the fix:
//! it journals the partials traversal, and when a root/edge integration
//! *without* a cumulative scale buffer fails numerically, it re-runs the
//! recorded operations with per-destination rescaling, accumulates the
//! factors into a reserved cumulative buffer (the last scale index), and
//! integrates again with scaling before surfacing any error. Successful
//! rescues are counted so clients can notice and switch to explicit
//! scaling. Rescue needs one scale buffer per internal destination plus the
//! reserved cumulative slot; configurations built by
//! [`crate::InstanceConfig::for_tree`] satisfy this.

use crate::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use crate::error::{BeagleError, Result};
use crate::journal::StateJournal;
use crate::obs::{self, EventKind, Recorder};
use crate::ops::Operation;

/// A [`BeagleInstance`] wrapper that retries failed integrations with
/// scaling enabled. Created by
/// [`crate::ImplementationManager::create_instance`].
pub struct RescueInstance {
    inner: Box<dyn BeagleInstance>,
    journal: StateJournal,
    rescues: u64,
    recorder: Recorder,
}

impl RescueInstance {
    /// Wrap an instance.
    pub fn new(inner: Box<dyn BeagleInstance>) -> Self {
        // Journal rescue events iff the wrapped instance is recording.
        let recorder = Recorder::new(inner.statistics().is_some());
        Self {
            inner,
            journal: StateJournal::new(),
            rescues: 0,
            recorder,
        }
    }

    /// How many integrations were transparently rescued so far.
    pub fn rescue_count(&self) -> u64 {
        self.rescues
    }

    /// The reserved cumulative scale buffer, if the configuration leaves
    /// room for rescue: every recorded destination needs its own scale
    /// buffer below the reserved one.
    fn rescue_cumulative(&self) -> Option<usize> {
        let scale_count = self.inner.config().scale_buffer_count;
        let reserved = scale_count.checked_sub(1)?;
        if reserved == 0 {
            return None;
        }
        let fits = self
            .journal
            .operations()
            .iter()
            .all(|op| op.destination < reserved);
        (fits && !self.journal.operations().is_empty()).then_some(reserved)
    }

    /// Re-run the recorded traversal with per-destination rescaling and
    /// return the cumulative scale buffer to integrate with.
    fn rescale_traversal(&mut self, cumulative: usize) -> Result<usize> {
        let scaled: Vec<Operation> = self
            .journal
            .operations()
            .iter()
            .map(|op| op.with_scaling(op.destination))
            .collect();
        self.inner.update_partials(&scaled)?;
        let indices: Vec<usize> = scaled.iter().map(|op| op.destination).collect();
        self.inner.reset_scale_factors(cumulative)?;
        self.inner.accumulate_scale_factors(&indices, cumulative)?;
        Ok(cumulative)
    }

    fn numerically_bad(result: &Result<f64>) -> bool {
        match result {
            Ok(v) => !v.is_finite(),
            Err(BeagleError::NumericalFailure(_)) => true,
            Err(_) => false,
        }
    }
}

impl BeagleInstance for RescueInstance {
    fn details(&self) -> &InstanceDetails {
        self.inner.details()
    }

    fn config(&self) -> &InstanceConfig {
        self.inner.config()
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        self.inner.set_tip_states(tip, states)
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        self.inner.set_tip_partials(tip, partials)
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        self.inner.set_partials(buffer, partials)
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        self.inner.get_partials(buffer)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        self.inner.set_pattern_weights(weights)
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.inner.set_state_frequencies(index, frequencies)
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.inner.set_category_rates(rates)
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.inner.set_category_weights(index, weights)
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.inner
            .set_eigen_decomposition(index, vectors, inverse_vectors, values)
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.inner
            .update_transition_matrices(eigen_index, matrix_indices, branch_lengths)
    }

    fn update_transition_derivatives(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        d1_indices: &[usize],
        d2_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.inner.update_transition_derivatives(
            eigen_index,
            matrix_indices,
            d1_indices,
            d2_indices,
            branch_lengths,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn integrate_edge_derivatives(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        d1_matrix: BufferId,
        d2_matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<(f64, f64, f64)> {
        self.inner.integrate_edge_derivatives(
            parent,
            child,
            matrix,
            d1_matrix,
            d2_matrix,
            category_weights,
            frequencies,
            scaling,
        )
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.inner.set_transition_matrix(index, matrix)
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.inner.get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        self.journal.record_operations(operations);
        self.inner.update_partials(operations)
    }

    fn update_partials_by_levels(&mut self, levels: &[Vec<Operation>]) -> Result<()> {
        // Level-batched submissions (from an outer operation queue) carry
        // the same traversal; journal it so rescue can replay it.
        for level in levels {
            self.journal.record_operations(level);
        }
        self.inner.update_partials_by_levels(levels)
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        self.inner.reset_scale_factors(cumulative)
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        self.inner
            .accumulate_scale_factors(scale_indices, cumulative)
    }

    fn integrate_root(
        &mut self,
        root: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let first = self
            .inner
            .integrate_root(root, category_weights, frequencies, scaling);
        if scaling != ScalingMode::None || !Self::numerically_bad(&first) {
            return first;
        }
        let Some(reserved) = self.rescue_cumulative() else {
            return first;
        };
        self.recorder.event(EventKind::RescueTriggered, || {
            format!(
                "root integration at buffer {root} failed numerically; rescaling {} ops",
                self.journal.operations().len()
            )
        });
        let cumulative = self.rescale_traversal(reserved)?;
        let rescued = self.inner.integrate_root(
            root,
            category_weights,
            frequencies,
            ScalingMode::cumulative(cumulative),
        )?;
        if !rescued.is_finite() {
            return Err(BeagleError::NumericalFailure(format!(
                "root log-likelihood {rescued} even after automatic rescaling"
            )));
        }
        self.rescues += 1;
        self.recorder.event(EventKind::RescueSucceeded, || {
            format!("root log-likelihood {rescued} after rescaling")
        });
        Ok(rescued)
    }

    fn integrate_edge(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let first = self.inner.integrate_edge(
            parent,
            child,
            matrix,
            category_weights,
            frequencies,
            scaling,
        );
        if scaling != ScalingMode::None || !Self::numerically_bad(&first) {
            return first;
        }
        let Some(reserved) = self.rescue_cumulative() else {
            return first;
        };
        self.recorder.event(EventKind::RescueTriggered, || {
            format!(
                "edge integration {parent}->{child} failed numerically; rescaling {} ops",
                self.journal.operations().len()
            )
        });
        let cumulative = self.rescale_traversal(reserved)?;
        let rescued = self.inner.integrate_edge(
            parent,
            child,
            matrix,
            category_weights,
            frequencies,
            ScalingMode::cumulative(cumulative),
        )?;
        if !rescued.is_finite() {
            return Err(BeagleError::NumericalFailure(format!(
                "edge log-likelihood {rescued} even after automatic rescaling"
            )));
        }
        self.rescues += 1;
        self.recorder.event(EventKind::RescueSucceeded, || {
            format!("edge log-likelihood {rescued} after rescaling")
        });
        Ok(rescued)
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        self.inner.get_site_log_likelihoods()
    }

    fn wait_for_computation(&mut self) -> Result<()> {
        self.inner.wait_for_computation()
    }

    fn simulated_time(&self) -> Option<std::time::Duration> {
        self.inner.simulated_time()
    }

    fn reset_simulated_time(&mut self) {
        self.inner.reset_simulated_time()
    }

    fn peek_simulated_time(&self) -> Option<std::time::Duration> {
        self.inner.peek_simulated_time()
    }

    fn queue_stats(&self) -> Option<crate::queue::QueueStats> {
        self.inner.queue_stats()
    }

    fn statistics(&self) -> Option<obs::InstanceStats> {
        let mut stats = self.inner.statistics()?;
        if let Some(own) = self.recorder.stats() {
            stats.merge(&own);
        }
        Some(stats)
    }

    fn take_journal(&mut self) -> Vec<obs::Event> {
        obs::merge_journals(self.inner.take_journal(), self.recorder.take_journal())
    }

    fn set_deadline(&mut self, deadline: Option<crate::deadline::Deadline>) {
        self.inner.set_deadline(deadline);
    }

    fn checkpoint(&mut self) -> Option<crate::checkpoint::Checkpoint> {
        self.inner.checkpoint()
    }

    fn set_incremental(&mut self, enabled: bool) {
        self.inner.set_incremental(enabled);
    }

    fn memo_stats(&self) -> Option<crate::memo::MemoStats> {
        self.inner.memo_stats()
    }
}
