//! Concurrent instance-pool scheduler.
//!
//! A long-running service front-end (a BEAST server, a web API, an MC³
//! driver) has many independent likelihood sessions and a small fleet of
//! heterogeneous backend instances. Giving every session its own instance
//! wastes device memory; sharing one instance behind a mutex serializes the
//! fleet. [`Pool`] multiplexes sessions over N worker threads, each owning
//! one instance, with:
//!
//! * a **bounded submission queue** with backpressure ([`PoolHandle::submit`]
//!   blocks when full, [`PoolHandle::try_submit`] fails fast with
//!   [`PoolError::Full`]),
//! * **two priority lanes** ([`Lane::Interactive`] always dequeues before
//!   [`Lane::Batch`]),
//! * **work stealing**: each worker prefers its own deque front and steals
//!   from the back of its neighbours' when idle,
//! * **health supervision**: before taking more work a worker whose
//!   implementation's circuit breaker has opened is rebuilt onto a healthy
//!   implementation ([`WorkerSupervisor`]); a job that kills its worker can
//!   evict it and requeue itself once,
//! * **observability**: wait/service latency histograms, steal and eviction
//!   counters, per-worker utilization ([`PoolStats`]) and journal events
//!   ([`crate::obs::EventKind::PoolWorkerEvicted`] etc.),
//! * **clean shutdown**: [`Pool::shutdown_drain`] finishes queued work under
//!   a [`Deadline`]; [`Pool::shutdown_abort`] drops it (outstanding
//!   [`Ticket`]s resolve to [`PoolError::Lost`]).
//!
//! The pool is generic over the worker type `W` so non-instance fleets (e.g.
//! MC³ likelihood engines) can reuse the scheduler; [`InstancePool`] — built
//! with [`PoolBuilder`] from an [`InstanceSpec`] — is the
//! `Box<dyn BeagleInstance>` specialization, where workers are created from
//! the ranked [`ImplementationManager::benchmark_resources`] output (or
//! pinned to named implementations) and supervised against the manager's
//! [`crate::health::HealthRegistry`].
//!
//! ```no_run
//! use beagle_core::{InstanceSpec, ImplementationManager, Lane, PoolBuilder};
//! use std::sync::Arc;
//! let manager = Arc::new(ImplementationManager::new());
//! let pool = PoolBuilder::from_spec(InstanceSpec::for_tree(16, 1000, 4, 4))
//!     .workers(4)
//!     .build(&manager)
//!     .unwrap();
//! let handle = pool.handle();
//! let ticket = handle
//!     .submit(Lane::Interactive, |inst| inst.details().implementation_name.clone())
//!     .unwrap();
//! let name = ticket.wait().unwrap();
//! # let _ = name;
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::api::{BeagleInstance, BufferId, ScalingMode};
use crate::deadline::Deadline;
use crate::error::Result;
use crate::flags::Flags;
use crate::health::Outcome;
use crate::manager::{outcome_of, ImplementationManager};
use crate::obs::{Event, EventKind, Recorder};
use crate::ops::Operation;
use crate::spec::InstanceSpec;

/// Default bound on the number of queued (not yet running) jobs.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Submission priority. Interactive jobs always dequeue before batch jobs,
/// both on a worker's own deque and when stealing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Latency-sensitive: served first.
    Interactive,
    /// Throughput work: served when no interactive job is waiting.
    Batch,
}

impl Lane {
    fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Batch => 1,
        }
    }
}

/// Why a submission or a [`Ticket`] failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// `try_submit` found the bounded queue full. The job was dropped —
    /// resubmit it (or use the blocking `submit`) to run it.
    Full,
    /// The pool is draining or aborted; no new work is accepted.
    ShuttingDown,
    /// The job was dropped before producing a result (abort shutdown, or a
    /// worker died with no requeue budget left).
    Lost,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Full => write!(f, "pool queue full"),
            PoolError::ShuttingDown => write!(f, "pool is shutting down"),
            PoolError::Lost => write!(f, "job dropped before completion"),
        }
    }
}

impl std::error::Error for PoolError {}

// ---------------------------------------------------------------------------
// Ticket: a one-shot future for a job's result.
// ---------------------------------------------------------------------------

enum Slot<T> {
    Pending,
    Done(T),
    Lost,
}

struct TicketCell<T> {
    slot: Mutex<Slot<T>>,
    ready: Condvar,
}

/// The pool's half of a [`Ticket`]: fulfils it, or — when dropped
/// unfulfilled (job discarded by an abort, worker lost) — resolves it to
/// [`PoolError::Lost`] so waiters never hang.
struct TicketSender<T> {
    cell: Arc<TicketCell<T>>,
}

impl<T> TicketSender<T> {
    fn send(&mut self, value: T) {
        *self.cell.slot.lock() = Slot::Done(value);
        self.cell.ready.notify_all();
    }
}

impl<T> Drop for TicketSender<T> {
    fn drop(&mut self) {
        let mut slot = self.cell.slot.lock();
        if matches!(*slot, Slot::Pending) {
            *slot = Slot::Lost;
            self.cell.ready.notify_all();
        }
    }
}

/// A future-like handle to one submitted job's result.
pub struct Ticket<T> {
    cell: Arc<TicketCell<T>>,
}

impl<T> Ticket<T> {
    fn channel() -> (Self, TicketSender<T>) {
        let cell = Arc::new(TicketCell {
            slot: Mutex::new(Slot::Pending),
            ready: Condvar::new(),
        });
        (
            Self {
                cell: Arc::clone(&cell),
            },
            TicketSender { cell },
        )
    }

    /// Block until the job finishes; [`PoolError::Lost`] if it was dropped.
    pub fn wait(self) -> std::result::Result<T, PoolError> {
        let mut slot = self.cell.slot.lock();
        loop {
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Done(value) => return Ok(value),
                Slot::Lost => return Err(PoolError::Lost),
                Slot::Pending => self.cell.ready.wait(&mut slot),
            }
        }
    }

    /// Has the job finished (successfully or not)?
    pub fn is_ready(&self) -> bool {
        !matches!(*self.cell.slot.lock(), Slot::Pending)
    }
}

// ---------------------------------------------------------------------------
// Supervision.
// ---------------------------------------------------------------------------

/// Health policy for a pool's workers. Implementations are consulted by
/// worker threads: before taking more work ([`Self::healthy`]), after every
/// job ([`Self::record`]), and when a worker must be replaced
/// ([`Self::rebuild`]).
pub trait WorkerSupervisor<W>: Send + Sync {
    /// May the worker labelled `label` keep receiving work?
    fn healthy(&self, _label: &str) -> bool {
        true
    }

    /// Score one job outcome against `label`.
    fn record(&self, _label: &str, _outcome: Outcome) {}

    /// Replace a dead or quarantined worker. `dead` is the old worker (for
    /// checkpoint extraction); returning `None` keeps it in service
    /// (fail-open — a pool with no healthy replacement must still drain).
    fn rebuild(&self, _label: &str, _dead: &mut W) -> Option<(String, W)> {
        None
    }
}

/// No-op supervisor for plain worker fleets (no health tracking).
pub struct NullSupervisor;

impl<W> WorkerSupervisor<W> for NullSupervisor {}

/// Supervisor for [`InstancePool`]: delegates health to the manager's
/// [`crate::health::HealthRegistry`] (so pool evictions and instance-creation
/// failures share one set of circuit breakers) and rebuilds workers by
/// checkpoint journal-replay when possible, ranked fresh creation otherwise.
pub struct ManagerSupervisor {
    manager: Arc<ImplementationManager>,
    /// Unpinned base spec: fresh rebuilds rank the remaining healthy
    /// implementations instead of recreating the worker's original pin.
    spec: InstanceSpec,
}

impl ManagerSupervisor {
    /// Supervisor rebuilding workers on `manager` from `spec` (any
    /// implementation pin is cleared; rebuilds must be free to move).
    pub fn new(manager: Arc<ImplementationManager>, mut spec: InstanceSpec) -> Self {
        spec.implementation = None;
        Self { manager, spec }
    }
}

impl WorkerSupervisor<Box<dyn BeagleInstance>> for ManagerSupervisor {
    fn healthy(&self, label: &str) -> bool {
        self.manager.health().available(label)
    }

    fn record(&self, label: &str, outcome: Outcome) {
        self.manager.health().record(label, outcome);
    }

    fn rebuild(
        &self,
        label: &str,
        dead: &mut Box<dyn BeagleInstance>,
    ) -> Option<(String, Box<dyn BeagleInstance>)> {
        // Journal replay first: a checkpointable worker whose implementation
        // is still admitted restores bit-exactly onto fresh buffers.
        if self.manager.health().available(label) {
            if let Some(ckpt) = dead.checkpoint() {
                if let Ok(inst) = ckpt.restore(&self.manager) {
                    let name = inst.details().implementation_name.clone();
                    return Some((name, Box::new(inst)));
                }
            }
        }
        // Otherwise ranked fresh creation, which skips open breakers.
        let inst = self.manager.create_from_spec(&self.spec).ok()?;
        let name = inst.details().implementation_name.clone();
        Some((name, inst))
    }
}

// ---------------------------------------------------------------------------
// Statistics.
// ---------------------------------------------------------------------------

const HIST_BUCKETS: usize = 26;

/// Log₂-microsecond latency histogram: bucket `b` covers `[2^(b−1), 2^b)` µs
/// (bucket 0 is `< 1 µs`), topping out above ~33 s.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    /// Sample counts per power-of-two microsecond bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples (for means).
    pub total: Duration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            total: Duration::ZERO,
        }
    }
}

impl LatencyHistogram {
    fn record(&mut self, sample: Duration) {
        let micros = sample.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total += sample;
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`); zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_micros(1u64 << b);
            }
        }
        Duration::from_micros(1u64 << (HIST_BUCKETS - 1))
    }
}

/// One worker's share of the pool's work.
#[derive(Clone, Debug)]
pub struct WorkerUtilization {
    /// Implementation name (updated when the worker is rebuilt).
    pub label: String,
    /// Jobs completed by this worker.
    pub jobs: u64,
    /// Total service time spent in jobs.
    pub busy: Duration,
}

/// Snapshot of a pool's counters and latency distributions.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// `try_submit` calls rejected with [`PoolError::Full`].
    pub rejected: u64,
    /// Jobs that ran to completion with [`Outcome::Success`].
    pub completed: u64,
    /// Jobs that finished with a non-success outcome.
    pub failed: u64,
    /// Jobs a worker took from another worker's deque.
    pub stolen: u64,
    /// Jobs requeued after their worker was evicted mid-job.
    pub requeued: u64,
    /// Workers evicted (breaker-open or fatal job verdict).
    pub evictions: u64,
    /// Evicted workers successfully replaced.
    pub rebuilds: u64,
    /// High-water mark of queued (not yet running) jobs.
    pub max_queue_depth: usize,
    /// Time from submission to dequeue.
    pub wait: LatencyHistogram,
    /// Time from dequeue to job completion.
    pub service: LatencyHistogram,
    /// Per-worker utilization, indexed by worker.
    pub workers: Vec<WorkerUtilization>,
}

impl PoolStats {
    /// JSON object (stable key order) for reports and benchmarks.
    pub fn to_json(&self) -> String {
        let worker_json: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"label\":\"{}\",\"jobs\":{},\"busy_us\":{}}}",
                    w.label,
                    w.jobs,
                    w.busy.as_micros()
                )
            })
            .collect();
        format!(
            "{{\"submitted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"stolen\":{},\"requeued\":{},\"evictions\":{},\"rebuilds\":{},\
             \"max_queue_depth\":{},\
             \"wait_us\":{{\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}},\
             \"service_us\":{{\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}},\
             \"workers\":[{}]}}",
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.stolen,
            self.requeued,
            self.evictions,
            self.rebuilds,
            self.max_queue_depth,
            self.wait.mean().as_micros(),
            self.wait.quantile(0.50).as_micros(),
            self.wait.quantile(0.95).as_micros(),
            self.wait.quantile(0.99).as_micros(),
            self.service.mean().as_micros(),
            self.service.quantile(0.50).as_micros(),
            self.service.quantile(0.95).as_micros(),
            self.service.quantile(0.99).as_micros(),
            worker_json.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Internal queue structures.
// ---------------------------------------------------------------------------

/// A job's answer to the scheduler: how did it leave the worker?
enum Verdict {
    /// The job is finished; score `outcome` against the worker.
    Done(Outcome),
    /// The worker is unusable. `requeue` pushes this same job back for
    /// another attempt elsewhere (the closure keeps its own retry budget).
    Evict { requeue: bool, outcome: Outcome },
}

type JobFn<W> = Box<dyn FnMut(&mut W) -> Verdict + Send>;

struct QueuedJob<W> {
    run: JobFn<W>,
    lane: Lane,
    enqueued: Instant,
}

struct WorkerSlot<W> {
    /// `[interactive, batch]` deques. Owner pops the front; thieves pop the
    /// back.
    lanes: [VecDeque<QueuedJob<W>>; 2],
    label: String,
    jobs: u64,
    busy: Duration,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Abort,
}

struct PoolState<W> {
    slots: Vec<WorkerSlot<W>>,
    /// Jobs sitting in deques (excludes running jobs).
    queued: usize,
    /// Round-robin cursor for submissions.
    next: usize,
    phase: Phase,
    /// Worker threads that have not yet exited.
    alive: usize,
    stats: PoolStats,
    recorder: Recorder,
    /// Workers handed back by exiting threads, in no particular order.
    retired: Vec<W>,
}

struct Shared<W> {
    state: Mutex<PoolState<W>>,
    /// Signalled on submission/requeue and on phase changes.
    work_ready: Condvar,
    /// Signalled when a queue slot frees up.
    space_ready: Condvar,
    /// Signalled by each exiting worker thread.
    idle: Condvar,
    capacity: usize,
    supervisor: Arc<dyn WorkerSupervisor<W>>,
}

fn take_job<W>(state: &mut PoolState<W>, me: usize) -> Option<(QueuedJob<W>, bool)> {
    for lane in 0..2 {
        if let Some(job) = state.slots[me].lanes[lane].pop_front() {
            return Some((job, false));
        }
    }
    let n = state.slots.len();
    for lane in 0..2 {
        for k in 1..n {
            let other = (me + k) % n;
            if let Some(job) = state.slots[other].lanes[lane].pop_back() {
                return Some((job, true));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------------

/// A fixed fleet of worker threads, each owning one `W`, executing jobs
/// submitted through [`PoolHandle`]s. See the module docs for the scheduling
/// contract.
pub struct Pool<W: Send + 'static> {
    shared: Arc<Shared<W>>,
    threads: Vec<JoinHandle<()>>,
}

/// Cloneable submission handle for a [`Pool`].
pub struct PoolHandle<W: Send + 'static> {
    shared: Arc<Shared<W>>,
}

impl<W: Send + 'static> Clone for PoolHandle<W> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<W: Send + 'static> Pool<W> {
    /// Pool over `workers` with no health supervision (see
    /// [`NullSupervisor`]) and the default queue capacity. Labels are
    /// `worker-0`, `worker-1`, …
    pub fn with_workers(workers: Vec<W>) -> Self {
        let labeled = workers
            .into_iter()
            .enumerate()
            .map(|(i, w)| (format!("worker-{i}"), w))
            .collect();
        Self::with_supervisor(
            labeled,
            DEFAULT_QUEUE_CAPACITY,
            Arc::new(NullSupervisor),
            false,
        )
    }

    /// Fully configured pool: labelled workers, bounded queue capacity, a
    /// supervisor, and whether scheduler events are journalled.
    pub fn with_supervisor(
        workers: Vec<(String, W)>,
        capacity: usize,
        supervisor: Arc<dyn WorkerSupervisor<W>>,
        journal: bool,
    ) -> Self {
        assert!(!workers.is_empty(), "pool needs at least one worker");
        let n = workers.len();
        let mut slots = Vec::with_capacity(n);
        let mut fleet = Vec::with_capacity(n);
        for (label, worker) in workers {
            slots.push(WorkerSlot {
                lanes: [VecDeque::new(), VecDeque::new()],
                label,
                jobs: 0,
                busy: Duration::ZERO,
            });
            fleet.push(worker);
        }
        let stats = PoolStats {
            workers: slots
                .iter()
                .map(|s| WorkerUtilization {
                    label: s.label.clone(),
                    jobs: 0,
                    busy: Duration::ZERO,
                })
                .collect(),
            ..PoolStats::default()
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                slots,
                queued: 0,
                next: 0,
                phase: Phase::Running,
                alive: n,
                stats,
                recorder: if journal {
                    Recorder::new(true)
                } else {
                    Recorder::disabled()
                },
                retired: Vec::new(),
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            idle: Condvar::new(),
            capacity: capacity.max(1),
            supervisor,
        });
        let threads = fleet
            .into_iter()
            .enumerate()
            .map(|(index, worker)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("beagle-pool-{index}"))
                    .spawn(move || worker_main(shared, index, worker))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, threads }
    }

    /// A new submission handle (cloneable, sendable across threads).
    pub fn handle(&self) -> PoolHandle<W> {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.state.lock().slots.len()
    }

    /// Snapshot of the pool's counters and histograms.
    pub fn stats(&self) -> PoolStats {
        snapshot_stats(&self.shared)
    }

    /// Drain the scheduler journal (worker evictions/rebuilds, shutdown).
    pub fn take_journal(&self) -> Vec<Event> {
        self.shared.state.lock().recorder.take_journal()
    }

    /// Stop accepting work, finish everything already queued, then join the
    /// workers. `deadline` bounds the drain (measured from this call);
    /// exceeding it aborts the remainder, resolving outstanding tickets to
    /// [`PoolError::Lost`]. Returns `(drained_fully, workers)`.
    ///
    /// The fleet is handed back **unconditionally** — a deadline expiring
    /// mid-drain aborts the remaining sessions (every undone ticket/callback
    /// resolves `Lost`, never hangs) but still joins every worker thread and
    /// returns all N instances, so callers can always inspect, checkpoint,
    /// or reuse them. `tests::drain_deadline_mid_drain_returns_full_fleet`
    /// pins this down.
    pub fn shutdown_drain(mut self, deadline: Option<Deadline>) -> (bool, Vec<W>) {
        let start = Instant::now();
        let mut drained = true;
        let mut undone: Vec<QueuedJob<W>> = Vec::new();
        {
            let mut state = self.shared.state.lock();
            state.phase = Phase::Draining;
            self.shared.work_ready.notify_all();
            self.shared.space_ready.notify_all();
            while state.alive > 0 {
                match deadline {
                    Some(d) => {
                        let elapsed = start.elapsed();
                        if d.exceeded_by(elapsed) {
                            state.phase = Phase::Abort;
                            self.shared.work_ready.notify_all();
                            drained = false;
                            while state.alive > 0 {
                                self.shared.idle.wait(&mut state);
                            }
                            break;
                        }
                        self.shared.idle.wait_for(&mut state, d.budget() - elapsed);
                    }
                    None => self.shared.idle.wait(&mut state),
                }
            }
            // A drain that aborted leaves undone jobs in the deques; they
            // are dropped below, *outside* the state lock, because dropping
            // a session job fires its Lost callback (which may do real work,
            // like writing a response frame to a socket).
            for slot in &mut state.slots {
                drained &= slot.lanes[0].is_empty() && slot.lanes[1].is_empty();
                undone.extend(slot.lanes[0].drain(..));
                undone.extend(slot.lanes[1].drain(..));
            }
            state.queued = 0;
            let completed = state.stats.completed;
            state.recorder.event(EventKind::PoolShutdown, || {
                format!("mode=drain complete={drained} jobs_completed={completed}")
            });
        }
        drop(undone);
        let workers = self.join_and_retire();
        (drained, workers)
    }

    /// Abort immediately: queued jobs are dropped (tickets resolve to
    /// [`PoolError::Lost`]); jobs already running finish. Returns the fleet.
    pub fn shutdown_abort(mut self) -> Vec<W> {
        let mut undone: Vec<QueuedJob<W>> = Vec::new();
        {
            let mut state = self.shared.state.lock();
            state.phase = Phase::Abort;
            self.shared.work_ready.notify_all();
            self.shared.space_ready.notify_all();
            while state.alive > 0 {
                self.shared.idle.wait(&mut state);
            }
            for slot in &mut state.slots {
                undone.extend(slot.lanes[0].drain(..));
                undone.extend(slot.lanes[1].drain(..));
            }
            state.queued = 0;
            let completed = state.stats.completed;
            state.recorder.event(EventKind::PoolShutdown, || {
                format!("mode=abort jobs_completed={completed}")
            });
        }
        // Dropped outside the lock: job drops fire Lost callbacks.
        drop(undone);
        self.join_and_retire()
    }

    fn join_and_retire(&mut self) -> Vec<W> {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        std::mem::take(&mut self.shared.state.lock().retired)
    }
}

impl<W: Send + 'static> Drop for Pool<W> {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return; // already shut down
        }
        {
            let mut state = self.shared.state.lock();
            state.phase = Phase::Abort;
            self.shared.work_ready.notify_all();
            self.shared.space_ready.notify_all();
        }
        let _ = self.join_and_retire();
    }
}

fn snapshot_stats<W>(shared: &Shared<W>) -> PoolStats {
    let state = shared.state.lock();
    let mut stats = state.stats.clone();
    stats.workers = state
        .slots
        .iter()
        .map(|s| WorkerUtilization {
            label: s.label.clone(),
            jobs: s.jobs,
            busy: s.busy,
        })
        .collect();
    stats
}

impl<W: Send + 'static> PoolHandle<W> {
    /// Queue depth right now (jobs waiting, not running).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().queued
    }

    /// Snapshot of the pool's counters and histograms.
    pub fn stats(&self) -> PoolStats {
        snapshot_stats(&self.shared)
    }

    /// Submit a closure job, blocking while the queue is full. The closure
    /// runs with exclusive access to one worker; its return value resolves
    /// the [`Ticket`].
    pub fn submit<T, F>(&self, lane: Lane, f: F) -> std::result::Result<Ticket<T>, PoolError>
    where
        T: Send + 'static,
        F: FnOnce(&mut W) -> T + Send + 'static,
    {
        self.submit_inner(lane, f, true)
    }

    /// Non-blocking [`Self::submit`]: a full queue fails with
    /// [`PoolError::Full`] and the closure is dropped.
    pub fn try_submit<T, F>(&self, lane: Lane, f: F) -> std::result::Result<Ticket<T>, PoolError>
    where
        T: Send + 'static,
        F: FnOnce(&mut W) -> T + Send + 'static,
    {
        self.submit_inner(lane, f, false)
    }

    fn submit_inner<T, F>(
        &self,
        lane: Lane,
        f: F,
        block: bool,
    ) -> std::result::Result<Ticket<T>, PoolError>
    where
        T: Send + 'static,
        F: FnOnce(&mut W) -> T + Send + 'static,
    {
        let (ticket, sender) = Ticket::channel();
        let mut f = Some(f);
        let mut sender = Some(sender);
        let run: JobFn<W> = Box::new(move |worker| {
            let f = f.take().expect("closure job runs once");
            let value = f(worker);
            if let Some(mut s) = sender.take() {
                s.send(value);
            }
            Verdict::Done(Outcome::Success)
        });
        self.enqueue(run, lane, block).map_err(|(e, _job)| e)?;
        Ok(ticket)
    }

    /// Queue a raw job. On rejection the job is handed back with the error
    /// so callers with side-effecting drop guards (see
    /// [`Self::submit_session_with`]) can disarm them before the closure is
    /// dropped. A rejected `try_submit` is counted in
    /// [`PoolStats::rejected`], which is part of the stats JSON so server
    /// `Busy` responses stay auditable from a stats snapshot.
    fn enqueue(
        &self,
        run: JobFn<W>,
        lane: Lane,
        block: bool,
    ) -> std::result::Result<(), (PoolError, JobFn<W>)> {
        let shared = &self.shared;
        let mut state = shared.state.lock();
        loop {
            if state.phase != Phase::Running {
                return Err((PoolError::ShuttingDown, run));
            }
            if state.queued < shared.capacity {
                break;
            }
            if !block {
                state.stats.rejected += 1;
                return Err((PoolError::Full, run));
            }
            shared.space_ready.wait(&mut state);
        }
        let slot = state.next % state.slots.len();
        state.next = state.next.wrapping_add(1);
        state.slots[slot].lanes[lane.index()].push_back(QueuedJob {
            run,
            lane,
            enqueued: Instant::now(),
        });
        state.queued += 1;
        state.stats.submitted += 1;
        state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queued);
        drop(state);
        shared.work_ready.notify_one();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Worker loop.
// ---------------------------------------------------------------------------

fn worker_main<W: Send + 'static>(shared: Arc<Shared<W>>, index: usize, mut worker: W) {
    let mut label = shared.state.lock().slots[index].label.clone();
    loop {
        // Take a job (or exit on drain/abort).
        let mut job = {
            let mut state = shared.state.lock();
            loop {
                if state.phase == Phase::Abort {
                    return exit_worker(&shared, state, worker);
                }
                if let Some((job, stolen)) = take_job(&mut state, index) {
                    state.queued -= 1;
                    if stolen {
                        state.stats.stolen += 1;
                    }
                    state.stats.wait.record(job.enqueued.elapsed());
                    shared.space_ready.notify_one();
                    break job;
                }
                if state.phase == Phase::Draining {
                    return exit_worker(&shared, state, worker);
                }
                shared.work_ready.wait(&mut state);
            }
        };

        // Breaker consultation: a quarantined implementation stops receiving
        // work — swap to a healthy one before running the job. Fail-open:
        // if no replacement exists, the old worker keeps serving.
        if !shared.supervisor.healthy(&label) {
            let quarantined = label.clone();
            if let Some((new_label, new_worker)) = shared.supervisor.rebuild(&label, &mut worker) {
                worker = new_worker;
                let mut state = shared.state.lock();
                state.stats.evictions += 1;
                state.stats.rebuilds += 1;
                state.recorder.event(EventKind::PoolWorkerEvicted, || {
                    format!("worker={index} impl={quarantined} reason=breaker_open")
                });
                state.recorder.event(EventKind::PoolWorkerRebuilt, || {
                    format!("worker={index} impl={new_label}")
                });
                state.slots[index].label = new_label.clone();
                label = new_label;
            }
        }

        let started = Instant::now();
        let verdict = (job.run)(&mut worker);
        let service = started.elapsed();

        match verdict {
            Verdict::Done(outcome) => {
                shared.supervisor.record(&label, outcome);
                let mut state = shared.state.lock();
                state.stats.service.record(service);
                if outcome == Outcome::Success {
                    state.stats.completed += 1;
                } else {
                    state.stats.failed += 1;
                }
                let slot = &mut state.slots[index];
                slot.jobs += 1;
                slot.busy += service;
            }
            Verdict::Evict { requeue, outcome } => {
                shared.supervisor.record(&label, outcome);
                let dead = label.clone();
                let rebuilt = shared.supervisor.rebuild(&label, &mut worker);
                let mut state = shared.state.lock();
                state.stats.service.record(service);
                state.stats.evictions += 1;
                state.recorder.event(EventKind::PoolWorkerEvicted, || {
                    format!("worker={index} impl={dead} outcome={outcome:?}")
                });
                if let Some((new_label, new_worker)) = rebuilt {
                    worker = new_worker;
                    state.stats.rebuilds += 1;
                    state.recorder.event(EventKind::PoolWorkerRebuilt, || {
                        format!("worker={index} impl={new_label}")
                    });
                    state.slots[index].label = new_label.clone();
                    label = new_label;
                }
                if requeue {
                    // Hand the job to the next worker's front so the retry
                    // prefers a different instance; its closure keeps its own
                    // retry budget.
                    let n = state.slots.len();
                    let target = (index + 1) % n;
                    job.enqueued = Instant::now();
                    let lane = job.lane.index();
                    state.slots[target].lanes[lane].push_front(job);
                    state.queued += 1;
                    state.stats.requeued += 1;
                    state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queued);
                    drop(state);
                    shared.work_ready.notify_all();
                } else {
                    state.stats.failed += 1;
                }
            }
        }
    }
}

fn exit_worker<W>(
    shared: &Shared<W>,
    mut state: parking_lot::MutexGuard<'_, PoolState<W>>,
    worker: W,
) {
    state.retired.push(worker);
    state.alive -= 1;
    drop(state);
    // Every exit is broadcast: shutdown waits for alive == 0, and fellow
    // workers blocked in work_ready must re-check the phase.
    shared.idle.notify_all();
    shared.work_ready.notify_all();
}

// ---------------------------------------------------------------------------
// The BeagleInstance specialization.
// ---------------------------------------------------------------------------

/// A [`Pool`] whose workers are boxed [`BeagleInstance`]s.
pub type InstancePool = Pool<Box<dyn BeagleInstance>>;

/// A self-contained typed likelihood session: all model inputs plus the
/// operation schedule, evaluable on *any* pool worker sized for it (which is
/// what makes requeue-after-eviction safe — the session carries everything
/// it needs and overwrites whatever the previous session left behind).
#[derive(Clone, Debug, Default)]
pub struct SessionRequest {
    /// Per-tip compact state sequences (`tip_states[t]` loads tip `t`).
    pub tip_states: Vec<Vec<u32>>,
    /// Site pattern weights.
    pub pattern_weights: Vec<f64>,
    /// Rate-category rates.
    pub category_rates: Vec<f64>,
    /// Rate-category weights (loaded into weight buffer 0).
    pub category_weights: Vec<f64>,
    /// Equilibrium state frequencies (loaded into frequency buffer 0).
    pub frequencies: Vec<f64>,
    /// Eigen decomposition `(vectors, inverse_vectors, values)` for eigen
    /// buffer 0; `None` if `matrices` is empty (matrices set elsewhere).
    pub eigen: Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    /// `(matrix buffer, branch length)` pairs derived from eigen buffer 0.
    pub matrices: Vec<(usize, f64)>,
    /// Dependency-ordered partials schedule.
    pub operations: Vec<Operation>,
    /// Root partials buffer to integrate.
    pub root: BufferId,
    /// Rescale partials and integrate with cumulative scaling (the
    /// operations must carry matching `dest_scale_write` indices).
    pub scaled: bool,
    /// Per-request deadline: when set, [`Self::evaluate`] installs it on the
    /// worker for the duration of this session (the watchdog cancels calls
    /// that exceed it with [`crate::error::BeagleError::Timeout`]) and then
    /// resets the worker to its driver-default deadline. Rides the wire in
    /// remote submissions (`core::wire`).
    pub deadline: Option<Deadline>,
}

impl SessionRequest {
    /// Run the full session on `inst` and return the root log-likelihood.
    /// Mirrors the canonical evaluation protocol: load model, update
    /// matrices, update partials, (reset + accumulate scale factors),
    /// integrate the root.
    ///
    /// A session carrying a [`Self::deadline`] installs it before the first
    /// call and — success or failure — resets the worker to the driver
    /// default (`set_deadline(None)`) afterwards, so a tight per-request
    /// budget cannot leak onto later sessions sharing the worker.
    pub fn evaluate(&self, inst: &mut dyn BeagleInstance) -> Result<f64> {
        match self.deadline {
            None => self.evaluate_inner(inst),
            Some(deadline) => {
                inst.set_deadline(Some(deadline));
                let result = self.evaluate_inner(inst);
                inst.set_deadline(None);
                result
            }
        }
    }

    fn evaluate_inner(&self, inst: &mut dyn BeagleInstance) -> Result<f64> {
        if let Some((vectors, inverse, values)) = &self.eigen {
            inst.set_eigen_decomposition(0, vectors, inverse, values)?;
        }
        inst.set_state_frequencies(0, &self.frequencies)?;
        inst.set_category_rates(&self.category_rates)?;
        inst.set_category_weights(0, &self.category_weights)?;
        inst.set_pattern_weights(&self.pattern_weights)?;
        for (tip, states) in self.tip_states.iter().enumerate() {
            inst.set_tip_states(tip, states)?;
        }
        if !self.matrices.is_empty() {
            let (indices, lengths): (Vec<usize>, Vec<f64>) = self.matrices.iter().copied().unzip();
            inst.update_transition_matrices(0, &indices, &lengths)?;
        }
        inst.update_partials(&self.operations)?;
        let scaling = if self.scaled {
            let cumulative = inst.config().scale_buffer_count - 1;
            inst.reset_scale_factors(cumulative)?;
            let buffers: Vec<usize> = self.operations.iter().map(|o| o.destination).collect();
            inst.accumulate_scale_factors(&buffers, cumulative)?;
            ScalingMode::cumulative(cumulative)
        } else {
            ScalingMode::None
        };
        inst.integrate_root(self.root, BufferId(0), BufferId(0), scaling)
    }
}

/// How a session submitted through [`PoolHandle::submit_session_with`]
/// ended: the evaluation's own result, or [`PoolError::Lost`] when the pool
/// dropped the job before completion (abort shutdown, drain deadline, a dead
/// worker with no requeue budget left). Exactly one of these reaches the
/// callback, exactly once.
pub type SessionOutcome = std::result::Result<Result<f64>, PoolError>;

type SessionCallback = Box<dyn FnOnce(SessionOutcome) + Send>;

/// Shared slot for a session's completion callback. The job closure fires it
/// on completion; if the closure is instead *dropped* while the callback is
/// still armed (the job never ran to completion), [`Drop`] fires it with
/// [`PoolError::Lost`] — so a remote client waiting on the session always
/// gets an answer, exactly once.
struct SessionCompletion {
    slot: Arc<Mutex<Option<SessionCallback>>>,
}

impl SessionCompletion {
    fn complete(&self, outcome: SessionOutcome) {
        if let Some(callback) = self.slot.lock().take() {
            callback(outcome);
        }
    }
}

impl Drop for SessionCompletion {
    fn drop(&mut self) {
        if let Some(callback) = self.slot.lock().take() {
            callback(Err(PoolError::Lost));
        }
    }
}

impl PoolHandle<Box<dyn BeagleInstance>> {
    /// Submit a typed likelihood session, blocking while the queue is full.
    /// Unlike closure jobs, session jobs feed real outcomes to the health
    /// registry, and a session whose worker dies (timeout / permanent fault)
    /// is requeued once onto another worker before its ticket fails.
    pub fn submit_session(
        &self,
        lane: Lane,
        session: SessionRequest,
    ) -> std::result::Result<Ticket<Result<f64>>, PoolError> {
        let (ticket, sender) = Ticket::channel();
        self.submit_session_with(lane, session, move |outcome| {
            // Err(Lost) drops the sender unfulfilled, which resolves the
            // ticket to PoolError::Lost — same contract as closure jobs.
            if let Ok(result) = outcome {
                let mut sender = sender;
                sender.send(result);
            }
        })?;
        Ok(ticket)
    }

    /// [`Self::submit_session`] in continuation-passing style: instead of a
    /// [`Ticket`] to wait on, `on_done` runs — on whichever worker thread
    /// finishes the session — with the [`SessionOutcome`]. This is the
    /// server front-end's hook: the callback writes the response frame back
    /// to the client socket, so no thread blocks per in-flight session.
    ///
    /// Delivery is exactly-once: a session the pool accepts either completes
    /// (callback gets its result) or is dropped in a shutdown/abort
    /// (callback gets `Err(PoolError::Lost)`). A session the pool *rejects*
    /// (`Err` return here) never fires the callback.
    pub fn submit_session_with<F>(
        &self,
        lane: Lane,
        session: SessionRequest,
        on_done: F,
    ) -> std::result::Result<(), PoolError>
    where
        F: FnOnce(SessionOutcome) + Send + 'static,
    {
        self.submit_session_inner(lane, session, Box::new(on_done), true)
    }

    /// Non-blocking [`Self::submit_session_with`]: a full queue fails fast
    /// with [`PoolError::Full`] (counted in [`PoolStats::rejected`]) and the
    /// callback is dropped un-fired.
    pub fn try_submit_session_with<F>(
        &self,
        lane: Lane,
        session: SessionRequest,
        on_done: F,
    ) -> std::result::Result<(), PoolError>
    where
        F: FnOnce(SessionOutcome) + Send + 'static,
    {
        self.submit_session_inner(lane, session, Box::new(on_done), false)
    }

    fn submit_session_inner(
        &self,
        lane: Lane,
        session: SessionRequest,
        on_done: SessionCallback,
        block: bool,
    ) -> std::result::Result<(), PoolError> {
        let slot = Arc::new(Mutex::new(Some(on_done)));
        let completion = SessionCompletion {
            slot: Arc::clone(&slot),
        };
        let mut retried = false;
        let run: JobFn<Box<dyn BeagleInstance>> =
            Box::new(move |inst| match session.evaluate(inst.as_mut()) {
                Ok(lnl) => {
                    completion.complete(Ok(Ok(lnl)));
                    Verdict::Done(Outcome::Success)
                }
                Err(e) => {
                    let outcome = outcome_of(&e);
                    let fatal = matches!(outcome, Outcome::Timeout | Outcome::Permanent);
                    if fatal && !retried {
                        retried = true;
                        Verdict::Evict {
                            requeue: true,
                            outcome,
                        }
                    } else {
                        completion.complete(Ok(Err(e)));
                        if fatal {
                            Verdict::Evict {
                                requeue: false,
                                outcome,
                            }
                        } else {
                            Verdict::Done(outcome)
                        }
                    }
                }
            });
        self.enqueue(run, lane, block).map_err(|(error, job)| {
            // Disarm before the rejected closure (and its completion guard)
            // drops: a rejected submission reports its error here and must
            // not also fire the callback with Lost.
            slot.lock().take();
            drop(job);
            error
        })
    }
}

/// Builder for an [`InstancePool`]: the [`InstanceSpec`] idiom extended to a
/// whole fleet. Workers are pinned to named implementations with
/// [`Self::pin`], or placed on the top-ranked implementations from
/// [`ImplementationManager::benchmark_resources`] otherwise. The spec's
/// [`Flags::INSTANCE_STATS`] preference also enables the pool's own
/// scheduler journal.
pub struct PoolBuilder {
    spec: InstanceSpec,
    workers: usize,
    pinned: Vec<String>,
    capacity: usize,
}

impl PoolBuilder {
    /// Start from the spec every worker instance is created from.
    pub fn from_spec(spec: InstanceSpec) -> Self {
        Self {
            spec,
            workers: 2,
            pinned: Vec::new(),
            capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }

    /// Number of worker instances (default 2).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Pin workers to these implementation names instead of benchmark
    /// ranking; cycled when there are more workers than names.
    pub fn pin<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.pinned = names.into_iter().map(Into::into).collect();
        self
    }

    /// Bound on queued (not yet running) jobs (default
    /// [`DEFAULT_QUEUE_CAPACITY`]).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.capacity = n.max(1);
        self
    }

    /// Create the workers and start the pool.
    pub fn build(self, manager: &Arc<ImplementationManager>) -> Result<InstancePool> {
        let names: Vec<String> = if self.pinned.is_empty() {
            manager
                .benchmark_resources(&self.spec.config, self.spec.requirements)
                .into_iter()
                .filter(|b| b.error.is_none())
                .map(|b| b.implementation)
                .collect()
        } else {
            self.pinned.clone()
        };
        if names.is_empty() {
            return Err(crate::error::BeagleError::NoImplementationFound);
        }
        let mut workers = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let name = &names[i % names.len()];
            let inst = self.spec.clone().named(name.clone()).instantiate(manager)?;
            workers.push((inst.details().implementation_name.clone(), inst));
        }
        let journal = self.spec.preferences.contains(Flags::INSTANCE_STATS);
        let supervisor = Arc::new(ManagerSupervisor::new(
            Arc::clone(manager),
            self.spec.clone(),
        ));
        Ok(Pool::with_supervisor(
            workers,
            self.capacity,
            supervisor,
            journal,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_jobs_round_trip() {
        let pool = Pool::with_workers(vec![0u64, 0u64]);
        let handle = pool.handle();
        let tickets: Vec<_> = (0..32)
            .map(|i| {
                handle
                    .submit(Lane::Batch, move |counter: &mut u64| {
                        *counter += 1;
                        i * 2
                    })
                    .unwrap()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap(), (i as u64) * 2);
        }
        // Tickets resolve inside the job closure, slightly before the worker
        // books the completion — counters are exact only after the drain.
        let stats = pool.stats();
        assert_eq!(stats.submitted, 32);
        let (drained, workers) = pool.shutdown_drain(None);
        assert!(drained);
        assert_eq!(workers.iter().sum::<u64>(), 32);
    }

    #[test]
    fn try_submit_full_queue_rejects() {
        // One worker, capacity 1; park the worker on a gate so the queue
        // stays observable.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = Pool::with_supervisor(
            vec![("w0".to_string(), ())],
            1,
            Arc::new(NullSupervisor),
            false,
        );
        let handle = pool.handle();
        let g = Arc::clone(&gate);
        let _blocker = handle
            .submit(Lane::Batch, move |_: &mut ()| {
                let (lock, cv) = &*g;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            })
            .unwrap();
        // Wait for the worker to dequeue the blocker — until then it still
        // occupies the single queue slot and try_submit would reject at once.
        while handle.queue_depth() > 0 {
            std::thread::yield_now();
        }
        // Fill the single queue slot, then overflow it.
        let mut filled = None;
        let mut rejected = false;
        for _ in 0..50 {
            match handle.try_submit(Lane::Batch, |_: &mut ()| 7) {
                Ok(t) if filled.is_none() => filled = Some(t),
                Ok(_) => {}
                Err(PoolError::Full) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected, "bounded queue never reported Full");
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
        assert_eq!(filled.unwrap().wait(), Ok(7));
        assert!(pool.stats().rejected >= 1);
        pool.shutdown_drain(None);
    }

    #[test]
    fn interactive_lane_preempts_batch() {
        // Single worker parked on a gate; batch jobs queued first,
        // interactive after — interactive must still run first.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let order = Arc::new(Mutex::new(Vec::new()));
        let pool = Pool::with_workers(vec![()]);
        let handle = pool.handle();
        let g = Arc::clone(&gate);
        let _blocker = handle
            .submit(Lane::Batch, move |_: &mut ()| {
                let (lock, cv) = &*g;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            })
            .unwrap();
        for i in 0..3 {
            let order = Arc::clone(&order);
            handle
                .submit(Lane::Batch, move |_: &mut ()| {
                    order.lock().push(("batch", i))
                })
                .unwrap();
        }
        for i in 0..3 {
            let order = Arc::clone(&order);
            handle
                .submit(Lane::Interactive, move |_: &mut ()| {
                    order.lock().push(("interactive", i))
                })
                .unwrap();
        }
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
        let (drained, _) = pool.shutdown_drain(None);
        assert!(drained);
        let order = Arc::try_unwrap(order).unwrap().into_inner();
        assert_eq!(
            order,
            vec![
                ("interactive", 0),
                ("interactive", 1),
                ("interactive", 2),
                ("batch", 0),
                ("batch", 1),
                ("batch", 2)
            ]
        );
    }

    #[test]
    fn stealing_balances_idle_workers() {
        // Four workers, many slow-ish jobs; with round-robin placement and
        // stealing, every worker should end up doing some of the work.
        let pool = Pool::with_workers(vec![(), (), (), ()]);
        let handle = pool.handle();
        let tickets: Vec<_> = (0..64)
            .map(|_| {
                handle
                    .submit(Lane::Batch, |_: &mut ()| {
                        std::thread::sleep(Duration::from_micros(200));
                    })
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        pool.shutdown_drain(None);
        let stats = handle.stats();
        assert_eq!(stats.completed, 64);
        assert_eq!(stats.workers.iter().map(|w| w.jobs).sum::<u64>(), 64);
    }

    #[test]
    fn abort_resolves_tickets_lost() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = Pool::with_workers(vec![()]);
        let handle = pool.handle();
        let g = Arc::clone(&gate);
        let blocker = handle
            .submit(Lane::Batch, move |_: &mut ()| {
                let (lock, cv) = &*g;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                1
            })
            .unwrap();
        let queued = handle.submit(Lane::Batch, |_: &mut ()| 2).unwrap();
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
        // The blocker may or may not finish before the abort lands; the
        // queued job must either run or resolve Lost — never hang.
        let pool_workers = pool.shutdown_abort();
        assert_eq!(pool_workers.len(), 1);
        let _ = blocker.wait();
        match queued.wait() {
            Ok(2) | Err(PoolError::Lost) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let pool = Pool::with_workers(vec![()]);
        let handle = pool.handle();
        pool.shutdown_drain(None);
        assert!(matches!(
            handle.submit(Lane::Batch, |_: &mut ()| ()),
            Err(PoolError::ShuttingDown)
        ));
    }

    #[test]
    fn eviction_requeues_and_rebuilds() {
        // Worker type: a flag that says whether the instance is broken.
        struct Flaky {
            broken: bool,
        }
        struct Reviver;
        impl WorkerSupervisor<Flaky> for Reviver {
            fn rebuild(&self, _label: &str, _dead: &mut Flaky) -> Option<(String, Flaky)> {
                Some(("revived".to_string(), Flaky { broken: false }))
            }
        }
        let pool = Pool::with_supervisor(
            vec![("flaky".to_string(), Flaky { broken: true })],
            DEFAULT_QUEUE_CAPACITY,
            Arc::new(Reviver),
            true,
        );
        let handle = pool.handle();
        // A raw verdict job via submit_inner is private; emulate a session's
        // evict-requeue with a closure retry budget instead.
        let attempts = Arc::new(Mutex::new(0u32));
        let a = Arc::clone(&attempts);
        let (ticket, sender) = Ticket::channel();
        let mut sender = Some(sender);
        let run: JobFn<Flaky> = Box::new(move |w| {
            *a.lock() += 1;
            if w.broken {
                Verdict::Evict {
                    requeue: true,
                    outcome: Outcome::Permanent,
                }
            } else {
                if let Some(mut s) = sender.take() {
                    s.send("ok");
                }
                Verdict::Done(Outcome::Success)
            }
        });
        handle
            .enqueue(run, Lane::Interactive, true)
            .map_err(|(e, _job)| e)
            .unwrap();
        assert_eq!(ticket.wait(), Ok("ok"));
        assert_eq!(*attempts.lock(), 2);
        let stats = pool.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.rebuilds, 1);
        assert_eq!(stats.requeued, 1);
        assert_eq!(stats.workers[0].label, "revived");
        let journal = pool.take_journal();
        let kinds: Vec<_> = journal.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::PoolWorkerEvicted));
        assert!(kinds.contains(&EventKind::PoolWorkerRebuilt));
        pool.shutdown_drain(None);
    }

    #[test]
    fn drain_deadline_aborts_stragglers() {
        let pool = Pool::with_workers(vec![()]);
        let handle = pool.handle();
        let _slow = handle
            .submit(Lane::Batch, |_: &mut ()| {
                std::thread::sleep(Duration::from_millis(50));
            })
            .unwrap();
        let queued: Vec<_> = (0..4)
            .map(|_| {
                handle
                    .submit(Lane::Batch, |_: &mut ()| {
                        std::thread::sleep(Duration::from_millis(50));
                    })
                    .unwrap()
            })
            .collect();
        let (drained, _) = pool.shutdown_drain(Some(Deadline::new(Duration::from_millis(5))));
        assert!(!drained, "5ms deadline cannot drain 250ms of work");
        // Undone jobs must resolve, not hang.
        let mut lost = 0;
        for t in queued {
            if t.wait().is_err() {
                lost += 1;
            }
        }
        assert!(lost >= 1);
    }

    #[test]
    fn drain_deadline_mid_drain_returns_full_fleet() {
        // Satellite check for `shutdown_drain`: a deadline expiring while
        // the drain is still working through the queue must (a) abort the
        // remaining sessions — every outstanding ticket resolves, none
        // hang — and (b) still hand back the complete worker fleet.
        let pool = Pool::with_workers(vec![0u64, 0u64]);
        let handle = pool.handle();
        // Enough 30 ms jobs that two workers cannot finish them within the
        // 10 ms drain budget; the first job on each worker is already
        // running when the drain starts, the rest are mid-drain stragglers.
        let tickets: Vec<_> = (0..12)
            .map(|_| {
                handle
                    .submit(Lane::Batch, |counter: &mut u64| {
                        std::thread::sleep(Duration::from_millis(30));
                        *counter += 1;
                    })
                    .unwrap()
            })
            .collect();
        let (drained, fleet) = pool.shutdown_drain(Some(Deadline::new(Duration::from_millis(10))));
        assert!(!drained, "10ms cannot drain ~360ms of queued work");
        assert_eq!(
            fleet.len(),
            2,
            "an aborted drain must still return every worker"
        );
        let mut done = 0;
        let mut lost = 0;
        for t in tickets {
            match t.wait() {
                Ok(()) => done += 1,
                Err(PoolError::Lost) => lost += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(lost >= 1, "the aborted remainder must resolve Lost");
        assert_eq!(
            fleet.iter().sum::<u64>(),
            done,
            "workers' own counters must agree with the completed tickets"
        );
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket 2 → upper bound 4 µs
        }
        h.record(Duration::from_millis(40)); // the tail outlier
        assert_eq!(h.quantile(0.5), Duration::from_micros(4));
        assert_eq!(h.quantile(0.95), Duration::from_micros(4));
        assert!(h.quantile(1.0) >= Duration::from_millis(32));
        assert_eq!(h.count, 100);
    }
}
