//! [`InstanceSpec`]: the builder-style front door for instance creation.
//!
//! Every in-tree client creates instances through a spec:
//!
//! ```
//! use beagle_core::{Flags, InstanceSpec, ImplementationManager};
//! # let manager = ImplementationManager::new();
//! let result = InstanceSpec::for_tree(16, 1000, 4, 4)
//!     .prefer(Flags::PROCESSOR_GPU)
//!     .require(Flags::PRECISION_DOUBLE)
//!     .with_stats()
//!     .instantiate(&manager);
//! # assert!(result.is_err()); // no factories registered in this doctest
//! ```
//!
//! The spec funnels into [`ImplementationManager::create_from_spec`], the
//! single place where the wrapper stack (operation queue, numerical rescue)
//! is assembled — so named creation and ranked creation get byte-identical
//! wrapping. The older `create_instance` / `create_instance_by_name` entry
//! points survive as thin wrappers over the same path.
//!
//! # Knob precedence
//!
//! Every runtime knob has a typed builder method here, and most also have an
//! environment variable so deployments can retune a compiled binary. The
//! rule is uniform — **environment variable > typed builder value >
//! built-in default** — and this table is the one place it is documented:
//!
//! | knob | typed form | environment override |
//! |---|---|---|
//! | incremental memoization | [`InstanceSpec::incremental`] | `BEAGLE_INCREMENTAL_DISABLE` (any value but `0` disables) |
//! | scalar kernel pin | [`InstanceSpec::force_scalar`] ([`Flags::KERNEL_SCALAR`]) | `BEAGLE_FORCE_SCALAR` (`0` releases, anything else pins) |
//! | load-balancer tuning | [`InstanceSpec::with_balancer`] | `BEAGLE_REBALANCE_{ALPHA,SKEW,MIN_BATCHES,STRIDE,DISABLE}` (per-field) |
//!
//! An environment override applies only while the variable is *set*; an
//! unset variable always defers to the typed value. Unparseable or
//! out-of-range environment values fall back to the typed/default value
//! rather than erroring (tuning must never panic a long run).

use crate::api::{BeagleInstance, InstanceConfig};
use crate::balance::BalancerConfig;
use crate::deadline::Deadline;
use crate::error::Result;
use crate::flags::Flags;
use crate::manager::ImplementationManager;
use crate::multi::RetryPolicy;

/// A declarative description of the instance a client wants: problem
/// sizing, capability preferences/requirements, optionally a specific
/// implementation by name, and which wrapper layers to apply.
#[derive(Clone, Debug)]
pub struct InstanceSpec {
    /// Problem sizing (buffer counts, states, patterns, categories).
    pub config: InstanceConfig,
    /// Soft preferences: used to rank eligible implementations.
    pub preferences: Flags,
    /// Hard requirements: implementations missing any of these are skipped.
    pub requirements: Flags,
    /// Pin creation to this exact implementation name instead of ranking.
    pub implementation: Option<String>,
    /// Wrap the instance in the automatic numerical-rescue layer
    /// (default: true).
    pub rescue: bool,
    /// Per-launch watchdog budget; `None` leaves back-ends on the driver
    /// default ([`Deadline::DRIVER_DEFAULT`]).
    pub deadline: Option<Deadline>,
    /// Transient-fault retry policy for failover layers created from this
    /// spec; `None` uses [`RetryPolicy::default`].
    pub retry: Option<RetryPolicy>,
    /// Wrap the instance in a journaling checkpoint layer
    /// ([`crate::checkpoint::CheckpointedInstance`]) so
    /// [`BeagleInstance::checkpoint`] can snapshot it (default: false).
    pub checkpoint: bool,
    /// Split the problem across up to this many benchmark-ranked resources
    /// as an adaptively balanced [`crate::multi::PartitionedInstance`]
    /// (see [`Self::instantiate_partitioned`]); `None` creates a single
    /// instance.
    pub auto_partition: Option<usize>,
    /// Install the epoch-based incremental memoization layer
    /// ([`crate::memo::MemoInstance`])? `None` (the default) installs it
    /// unless `BEAGLE_INCREMENTAL_DISABLE` is set; `Some(false)` never
    /// installs it; `Some(true)` requests it explicitly (the environment
    /// kill switch still wins).
    pub incremental: Option<bool>,
    /// Typed base configuration for the adaptive load balancer used by
    /// partitioned instances created from this spec; `None` uses
    /// [`BalancerConfig::default`]. `BEAGLE_REBALANCE_*` environment
    /// variables are applied on top either way (see the module docs).
    pub balancer: Option<BalancerConfig>,
}

impl InstanceSpec {
    /// Spec from an explicit [`InstanceConfig`].
    pub fn with_config(config: InstanceConfig) -> Self {
        Self {
            config,
            preferences: Flags::NONE,
            requirements: Flags::NONE,
            implementation: None,
            rescue: true,
            deadline: None,
            retry: None,
            checkpoint: false,
            auto_partition: None,
            incremental: None,
            balancer: None,
        }
    }

    /// Spec sized for a standard tree-shaped client:
    /// [`InstanceConfig::for_tree`] with one buffer per node.
    pub fn for_tree(tips: usize, patterns: usize, states: usize, categories: usize) -> Self {
        Self::with_config(InstanceConfig::for_tree(tips, patterns, states, categories))
    }

    /// Add soft preference flags (OR'd with any already set).
    pub fn prefer(mut self, flags: Flags) -> Self {
        self.preferences |= flags;
        self
    }

    /// Add hard requirement flags (OR'd with any already set).
    pub fn require(mut self, flags: Flags) -> Self {
        self.requirements |= flags;
        self
    }

    /// Pin creation to the implementation with this exact name.
    pub fn named(mut self, implementation: impl Into<String>) -> Self {
        self.implementation = Some(implementation.into());
        self
    }

    /// Enable per-kernel statistics and the event journal for this
    /// instance (shorthand for preferring [`Flags::INSTANCE_STATS`]).
    pub fn with_stats(self) -> Self {
        self.prefer(Flags::INSTANCE_STATS)
    }

    /// Defer execution through an operation queue (shorthand for
    /// preferring [`Flags::COMPUTATION_ASYNCH`]).
    pub fn queued(self) -> Self {
        self.prefer(Flags::COMPUTATION_ASYNCH)
    }

    /// Skip the automatic numerical-rescue wrapper. Escape hatch for
    /// harnesses that need raw back-end semantics (e.g. tests asserting
    /// that an unscaled underflow surfaces as a `NumericalFailure`).
    pub fn without_rescue(mut self) -> Self {
        self.rescue = false;
        self
    }

    /// Give every launch this watchdog budget: a launch that stalls past it
    /// is cancelled and reported as [`crate::BeagleError::Timeout`].
    pub fn with_deadline(mut self, budget: std::time::Duration) -> Self {
        self.deadline = Some(Deadline::new(budget));
        self
    }

    /// Use this transient-fault retry policy (max retries, initial backoff,
    /// jitter) in failover layers created from the spec, instead of
    /// [`RetryPolicy::default`].
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Wrap the instance in a journaling checkpoint layer so
    /// [`BeagleInstance::checkpoint`] returns durable snapshots.
    pub fn checkpointed(mut self) -> Self {
        self.checkpoint = true;
        self
    }

    /// Explicitly enable or disable the incremental memoization layer for
    /// this instance, overriding the environment default (though
    /// `BEAGLE_INCREMENTAL_DISABLE` always wins). Partitioned instances
    /// propagate the choice to every child, including children rebuilt
    /// after an eviction or rebalance.
    pub fn incremental(mut self, enabled: bool) -> Self {
        self.incremental = Some(enabled);
        self
    }

    /// Pin instances created from this spec to the scalar kernel path
    /// (shorthand for preferring [`Flags::KERNEL_SCALAR`]). The typed form
    /// of `BEAGLE_FORCE_SCALAR`, which still overrides when set — see the
    /// module docs for the precedence table.
    pub fn force_scalar(self) -> Self {
        self.prefer(Flags::KERNEL_SCALAR)
    }

    /// Use this balancer configuration as the typed base for partitioned
    /// instances created from the spec. `BEAGLE_REBALANCE_*` environment
    /// variables are still applied on top
    /// ([`BalancerConfig::overridden_by_env`]).
    pub fn with_balancer(mut self, config: BalancerConfig) -> Self {
        self.balancer = Some(config);
        self
    }

    /// Split the problem across up to `max_devices` resources, ranked and
    /// weighted by [`ImplementationManager::benchmark_resources`], with
    /// adaptive rebalancing enabled (see
    /// [`ImplementationManager::create_instance_auto_partitioned`]).
    pub fn auto_partitioned(mut self, max_devices: usize) -> Self {
        self.auto_partition = Some(max_devices);
        self
    }

    /// Create the instance on `manager` (see
    /// [`ImplementationManager::create_from_spec`]).
    pub fn instantiate(&self, manager: &ImplementationManager) -> Result<Box<dyn BeagleInstance>> {
        manager.create_from_spec(self)
    }

    /// Create the auto-partitioned multi-resource instance this spec
    /// describes (uses [`Self::auto_partitioned`]'s device count, default
    /// 2). Needs the `Arc` so the partitioned instance can retain the
    /// manager for failover rebuilds and rebalance migrations.
    pub fn instantiate_partitioned(
        &self,
        manager: &std::sync::Arc<ImplementationManager>,
    ) -> Result<crate::multi::PartitionedInstance> {
        manager.create_instance_auto_partitioned(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_flags() {
        let spec = InstanceSpec::for_tree(4, 100, 4, 1)
            .prefer(Flags::PROCESSOR_GPU)
            .prefer(Flags::PRECISION_SINGLE)
            .require(Flags::FRAMEWORK_OPENCL)
            .with_stats()
            .queued();
        assert!(spec
            .preferences
            .contains(Flags::PROCESSOR_GPU | Flags::PRECISION_SINGLE));
        assert!(spec.preferences.contains(Flags::INSTANCE_STATS));
        assert!(spec.preferences.contains(Flags::COMPUTATION_ASYNCH));
        assert_eq!(spec.requirements, Flags::FRAMEWORK_OPENCL);
        assert!(spec.rescue);
        assert!(spec.implementation.is_none());
    }

    #[test]
    fn named_and_without_rescue() {
        let spec = InstanceSpec::for_tree(4, 100, 4, 1)
            .named("CPU-serial")
            .without_rescue();
        assert_eq!(spec.implementation.as_deref(), Some("CPU-serial"));
        assert!(!spec.rescue);
    }

    #[test]
    fn robustness_knobs() {
        use std::time::Duration;
        let spec = InstanceSpec::for_tree(4, 100, 4, 1)
            .with_deadline(Duration::from_millis(50))
            .with_retry_policy(RetryPolicy {
                max_retries: 5,
                base_delay: Duration::from_micros(100),
                jitter: false,
            })
            .checkpointed();
        assert_eq!(spec.deadline.unwrap().budget(), Duration::from_millis(50));
        assert_eq!(spec.retry.unwrap().max_retries, 5);
        assert!(spec.checkpoint);

        let plain = InstanceSpec::for_tree(4, 100, 4, 1);
        assert!(plain.deadline.is_none() && plain.retry.is_none() && !plain.checkpoint);
    }

    #[test]
    fn incremental_knob() {
        assert!(InstanceSpec::for_tree(4, 100, 4, 1).incremental.is_none());
        let on = InstanceSpec::for_tree(4, 100, 4, 1).incremental(true);
        assert_eq!(on.incremental, Some(true));
        let off = InstanceSpec::for_tree(4, 100, 4, 1).incremental(false);
        assert_eq!(off.incremental, Some(false));
    }
}
